//! The sustained-load harness behind `joinopt load`.
//!
//! Replays a mixed chain/star/clique workload through one
//! [`OptimizerService`]: a seeded request stream where each request is,
//! with probability `repeat_rate`, an exact repeat of an earlier query
//! (the warm path the plan cache exists for) and otherwise a fresh
//! query. The run reports throughput (requests/sec), latency quantiles
//! (p50/p99 from the workspace's log-linear
//! [`Histogram`](joinopt_telemetry::Histogram)) and the cache hit rate,
//! and serializes to the same JSON conventions as the perf baseline
//! (schema `joinopt-load-v1`, `cost_bits`-style exactness is not needed
//! here — latency is noise, hit counts are deterministic at one worker).
//!
//! The CI smoke gate runs a small single-worker stream and fails when
//! the hit rate drops below a floor (`joinopt load --min-hit-rate`): a
//! cold cache, a broken fingerprint or a lookup that stopped matching
//! all surface as a hit rate of zero.
//!
//! `joinopt load --chaos` replays the same seeded mix through the
//! server's [`Gateway`] with a fault burst injected mid-run (the
//! `serve-worker-panic` failpoint, so it needs a `--cfg failpoints`
//! build): a warmup third must run error-free, the burst third panics
//! every attempt until the breaker opens, and the recovery third —
//! after the faults clear and the breaker recloses — must return to a
//! healthy hit rate and p99. A seeded sample of answered requests is
//! differentially re-checked against a fresh sequential cold run:
//! chaos may slow requests down or fail them, but it must never change
//! a plan.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use joinopt_cost::workload::family_workload;
use joinopt_qgraph::GraphKind;
use joinopt_relset::XorShift64;
use joinopt_service::{
    BreakerConfig, BreakerState, CacheConfig, Gateway, GatewayConfig, GatewayStats,
    OptimizerService, Priority, QuerySpec, ServiceConfig, ServiceRequest, ShedConfig,
};
use joinopt_telemetry::json::{write_escaped, write_f64, JsonValue};
use joinopt_telemetry::{Histogram, RequestTrace};

/// The families the load mix draws from (the paper's structural
/// extremes, same as the perf matrix).
pub const LOAD_FAMILIES: [GraphKind; 3] = [GraphKind::Chain, GraphKind::Star, GraphKind::Clique];

/// Report schema identifier.
pub const SCHEMA: &str = "joinopt-load-v3";

/// The previous schema, still accepted by [`LoadReport::parse`] (v2
/// reports predate the per-stage latency breakdown, which reads as
/// empty).
pub const SCHEMA_V2: &str = "joinopt-load-v2";

/// The oldest accepted schema (predates both the per-type error
/// breakdown and the stage latencies; both read as empty).
pub const SCHEMA_V1: &str = "joinopt-load-v1";

/// Configuration of one load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadConfig {
    /// Requests in the stream.
    pub requests: usize,
    /// Service worker threads (1 keeps hit accounting deterministic:
    /// every repeat of an already-answered query hits).
    pub threads: usize,
    /// Stream seed; the whole request mix is a pure function of it.
    pub seed: u64,
    /// Probability in `[0, 1]` that a request repeats an earlier query.
    pub repeat_rate: f64,
    /// Largest relation count in the mix (inclusive; fresh queries
    /// cycle n through `4..=max_n`).
    pub max_n: usize,
    /// Plan-cache byte budget.
    pub cache_bytes: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            requests: 200,
            threads: 1,
            seed: 2006,
            repeat_rate: 0.5,
            max_n: 9,
            cache_bytes: 8 << 20,
        }
    }
}

/// Per-type error counts of a run: the same reporting labels the serve
/// protocol uses for `error_type`, rolled up per request stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ErrorBreakdown {
    /// Deadline/time-budget blowouts.
    pub timeout: usize,
    /// Memory-budget blowouts.
    pub memory: usize,
    /// Shed at a load watermark (or refused while draining).
    pub shed: usize,
    /// Worker panics (isolated by `catch_unwind`).
    pub panic: usize,
    /// Rejected by an open circuit breaker.
    pub breaker_open: usize,
    /// Everything else (parse, admission, internal).
    pub other: usize,
}

impl ErrorBreakdown {
    /// Books one error under its reporting label (a
    /// [`Rejection::kind`](joinopt_service::Rejection::kind) or
    /// [`error_kind`](joinopt_service::gateway::error_kind) string).
    pub fn record(&mut self, kind: &str) {
        match kind {
            "timeout" => self.timeout += 1,
            "memory" => self.memory += 1,
            "shed" | "draining" => self.shed += 1,
            "panic" => self.panic += 1,
            "breaker-open" => self.breaker_open += 1,
            _ => self.other += 1,
        }
    }

    /// Total errors across all types.
    pub fn total(&self) -> usize {
        self.timeout + self.memory + self.shed + self.panic + self.breaker_open + self.other
    }

    /// Errors that mean work was admitted and *died* — excludes the
    /// gateway's typed refusals (shed, breaker-open), which a client
    /// simply retries elsewhere.
    pub fn hard(&self) -> usize {
        self.timeout + self.memory + self.panic + self.other
    }

    fn to_json_object(self) -> String {
        format!(
            "{{\"timeout\": {}, \"memory\": {}, \"shed\": {}, \"panic\": {}, \
             \"breaker_open\": {}, \"other\": {}}}",
            self.timeout, self.memory, self.shed, self.panic, self.breaker_open, self.other
        )
    }

    fn from_json(v: Option<&JsonValue>) -> ErrorBreakdown {
        let field = |k: &str| {
            v.and_then(|o| o.get(k))
                .and_then(|f| f.as_u64())
                .and_then(|n| usize::try_from(n).ok())
                .unwrap_or(0)
        };
        ErrorBreakdown {
            timeout: field("timeout"),
            memory: field("memory"),
            shed: field("shed"),
            panic: field("panic"),
            breaker_open: field("breaker_open"),
            other: field("other"),
        }
    }
}

/// Latency quantiles of one request-lifecycle stage across a run —
/// the load report's slice of the serve path's stage spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageLatency {
    /// Stage name (`shed-check`, `breaker`, `cache-lookup`, `optimize`,
    /// `retry-backoff`).
    pub stage: String,
    /// Samples recorded for the stage.
    pub count: u64,
    /// Median stage latency, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile stage latency, nanoseconds.
    pub p99_ns: u64,
}

/// Results of one load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// The configuration that produced the run.
    pub config: LoadConfig,
    /// Requests answered successfully.
    pub completed: usize,
    /// Requests that came back as errors (0 in a healthy run).
    pub errors: usize,
    /// The same errors broken down by reporting label.
    pub errors_by_type: ErrorBreakdown,
    /// Requests answered from the plan cache.
    pub hits: usize,
    /// Cache hit rate over completed requests (0 when none completed).
    pub hit_rate: f64,
    /// Total wall time of the batch, nanoseconds.
    pub wall_ns: u64,
    /// Throughput over the whole stream, requests per second.
    pub rps: f64,
    /// Median per-request latency, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile per-request latency, nanoseconds.
    pub p99_ns: u64,
    /// Per-stage latency breakdown of the gateway lifecycle, sorted by
    /// stage name (empty when parsed from a pre-v3 report).
    pub stages: Vec<StageLatency>,
}

/// Builds the seeded request mix for `config`: fresh queries cycle
/// through family × size, repeats re-issue a uniformly chosen earlier
/// spec. Exposed so the CLI can print the mix and tests can pin it.
pub fn build_stream(config: &LoadConfig) -> Vec<ServiceRequest> {
    let mut rng = XorShift64::seed_from_u64(config.seed ^ 0x4c6f_6164_4d69_7821); // "LoadMix!"
    let sizes = 4..=config.max_n.max(4);
    let mut fresh = 0u64;
    let mut specs: Vec<QuerySpec> = Vec::new();
    let mut stream = Vec::with_capacity(config.requests);
    for _ in 0..config.requests {
        let repeat = !specs.is_empty() && rng.next_f64() < config.repeat_rate;
        let spec = if repeat {
            specs[rng.gen_range(0..specs.len())].clone()
        } else {
            let kind = LOAD_FAMILIES[fresh as usize % LOAD_FAMILIES.len()];
            let n = sizes.clone().nth(fresh as usize % sizes.clone().count());
            let w = family_workload(kind, n.unwrap_or(4), config.seed.wrapping_add(fresh));
            fresh += 1;
            let spec =
                QuerySpec::capture(&w.graph, &w.catalog).expect("family workloads capture cleanly");
            specs.push(spec.clone());
            spec
        };
        stream.push(ServiceRequest::new(spec).with_tenant("load"));
    }
    stream
}

/// Runs the configured load stream and returns the report.
pub fn run_load(config: &LoadConfig) -> LoadReport {
    run_load_observed(config, &joinopt_telemetry::NoopObserver)
}

/// [`run_load`] with telemetry: every optimizer run and cache event of
/// the stream reports to `obs` (e.g. a
/// [`RegistryObserver`](joinopt_telemetry::RegistryObserver), so the
/// `joinopt_cache_*` series cover the whole run).
///
/// Since v3 the stream runs through the server's [`Gateway`] (one
/// driver thread per `config.threads`, watermarks opened wide enough
/// that nothing sheds), each request under a [`RequestTrace`] — so the
/// report carries the same per-stage latency breakdown the serve path's
/// `metrics` verb exposes. At one driver, requests still execute in
/// arrival order and every repeat is a guaranteed cache hit, exactly as
/// before.
pub fn run_load_observed(
    config: &LoadConfig,
    obs: &(dyn joinopt_telemetry::Observer + Sync),
) -> LoadReport {
    let stream = build_stream(config);
    let service = OptimizerService::new(ServiceConfig {
        worker_threads: 1,
        queue_capacity: stream.len().max(1),
        tenant_limit: stream.len().max(1),
        cache: Some(CacheConfig {
            byte_budget: config.cache_bytes,
            ..CacheConfig::default()
        }),
    });
    // Watermarks above the driver count: the load harness measures the
    // optimizer, so the gateway must never shed its own stream.
    let drivers = config.threads.max(1);
    let gateway = Gateway::new(
        service,
        GatewayConfig {
            shed: ShedConfig {
                low_watermark: drivers + stream.len(),
                high_watermark: drivers + stream.len(),
                max_in_flight: drivers + stream.len(),
                ..ShedConfig::default()
            },
            seed: config.seed,
            ..GatewayConfig::default()
        },
    );

    type DriverOutcome = Result<(bool, u64), &'static str>;
    let next = AtomicUsize::new(0);
    let outcomes: Mutex<Vec<DriverOutcome>> = Mutex::new(Vec::with_capacity(stream.len()));
    let stage_hists: Mutex<std::collections::BTreeMap<&'static str, Histogram>> =
        Mutex::new(std::collections::BTreeMap::new());
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..drivers {
            scope.spawn(|| {
                let mut session = None;
                let mut local: std::collections::BTreeMap<&'static str, Histogram> =
                    std::collections::BTreeMap::new();
                let mut local_outcomes = Vec::new();
                let clock = gateway.clock();
                loop {
                    let k = next.fetch_add(1, Ordering::SeqCst);
                    let Some(req) = stream.get(k) else { break };
                    let mut trace =
                        RequestTrace::new(String::new(), &req.tenant, "optimize", clock.now_ns());
                    let r = gateway.handle_traced(req, None, &mut session, obs, Some(&mut trace));
                    trace.finish(if r.is_ok() { "ok" } else { "error" }, clock.now_ns());
                    for span in trace.spans() {
                        local
                            .entry(span.stage)
                            .or_default()
                            .record(span.duration_ns());
                    }
                    local_outcomes.push(match r {
                        Ok(o) => Ok((
                            o.cache_hit,
                            u64::try_from(o.elapsed.as_nanos()).unwrap_or(u64::MAX),
                        )),
                        Err(e) => Err(e.kind()),
                    });
                }
                let mut shared = stage_hists
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                for (stage, hist) in local {
                    shared.entry(stage).or_default().merge(&hist);
                }
                drop(shared);
                outcomes
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .extend(local_outcomes);
            });
        }
    });
    let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let outcomes = outcomes
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let stage_hists = stage_hists
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);

    let mut latencies = Histogram::default();
    let mut completed = 0usize;
    let mut errors_by_type = ErrorBreakdown::default();
    let mut hits = 0usize;
    for r in &outcomes {
        match r {
            Ok((cache_hit, elapsed_ns)) => {
                completed += 1;
                hits += usize::from(*cache_hit);
                latencies.record(*elapsed_ns);
            }
            Err(kind) => errors_by_type.record(kind),
        }
    }
    let stages = stage_hists
        .into_iter()
        .map(|(stage, hist)| StageLatency {
            stage: stage.to_string(),
            count: hist.count(),
            p50_ns: hist.quantile(0.5),
            p99_ns: hist.quantile(0.99),
        })
        .collect();
    LoadReport {
        config: config.clone(),
        completed,
        errors: errors_by_type.total(),
        errors_by_type,
        hits,
        hit_rate: if completed == 0 {
            0.0
        } else {
            hits as f64 / completed as f64
        },
        wall_ns,
        rps: if wall_ns == 0 {
            0.0
        } else {
            completed as f64 / (wall_ns as f64 / 1e9)
        },
        p50_ns: latencies.quantile(0.5),
        p99_ns: latencies.quantile(0.99),
        stages,
    }
}

impl LoadReport {
    /// Serializes the report in the perf-baseline JSON conventions.
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let mut s = String::from("{\n  \"schema\": ");
        write_escaped(&mut s, SCHEMA);
        s.push_str(&format!(
            ",\n  \"config\": {{\"requests\": {}, \"threads\": {}, \"seed\": {}, \
             \"max_n\": {}, \"cache_bytes\": {}, \"repeat_rate\": ",
            c.requests, c.threads, c.seed, c.max_n, c.cache_bytes
        ));
        write_f64(&mut s, c.repeat_rate);
        s.push_str(&format!(
            "}},\n  \"completed\": {}, \"errors\": {}, \"hits\": {}, \"hit_rate\": ",
            self.completed, self.errors, self.hits
        ));
        write_f64(&mut s, self.hit_rate);
        s.push_str(&format!(
            ",\n  \"errors_by_type\": {},\n  \"wall_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"rps\": ",
            self.errors_by_type.to_json_object(),
            self.wall_ns,
            self.p50_ns,
            self.p99_ns
        ));
        write_f64(&mut s, self.rps);
        s.push_str(",\n  \"stages\": [");
        for (i, st) in self.stages.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str("{\"stage\": ");
            write_escaped(&mut s, &st.stage);
            s.push_str(&format!(
                ", \"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}}}",
                st.count, st.p50_ns, st.p99_ns
            ));
        }
        s.push_str("]\n}\n");
        s
    }

    /// A rendered summary for human consumption: the headline table
    /// plus the per-type error breakdown.
    pub fn render(&self) -> String {
        let mut t = crate::Table::new(vec![
            "requests",
            "threads",
            "completed",
            "errors",
            "hits",
            "hit_rate",
            "rps",
            "p50",
            "p99",
        ]);
        t.row(vec![
            self.config.requests.to_string(),
            self.config.threads.to_string(),
            self.completed.to_string(),
            self.errors.to_string(),
            self.hits.to_string(),
            format!("{:.3}", self.hit_rate),
            format!("{:.0}", self.rps),
            crate::format_seconds(self.p50_ns as f64 / 1e9),
            crate::format_seconds(self.p99_ns as f64 / 1e9),
        ]);
        let mut out = t.render();
        out.push_str(&render_breakdown(&self.errors_by_type));
        if !self.stages.is_empty() {
            let mut st = crate::Table::new(vec!["stage", "count", "p50", "p99"]);
            for s in &self.stages {
                st.row(vec![
                    s.stage.clone(),
                    s.count.to_string(),
                    crate::format_seconds(s.p50_ns as f64 / 1e9),
                    crate::format_seconds(s.p99_ns as f64 / 1e9),
                ]);
            }
            out.push_str(&st.render());
        }
        out
    }

    /// Reads a report back from its [`LoadReport::to_json`] form.
    /// Accepts the current [`SCHEMA`] plus the older [`SCHEMA_V2`]
    /// (predates `stages`, which reads as empty) and [`SCHEMA_V1`]
    /// (additionally predates `errors_by_type`, which reads as zero).
    pub fn parse(text: &str) -> Result<LoadReport, String> {
        let v = JsonValue::parse(text).map_err(|e| format!("bad load report JSON: {e:?}"))?;
        let schema = v
            .get("schema")
            .and_then(|s| s.as_str())
            .ok_or("load report missing schema")?;
        if schema != SCHEMA && schema != SCHEMA_V2 && schema != SCHEMA_V1 {
            return Err(format!(
                "unknown load report schema {schema:?} \
                 (expected {SCHEMA:?}, {SCHEMA_V2:?} or {SCHEMA_V1:?})"
            ));
        }
        let uint = |obj: Option<&JsonValue>, k: &str| -> Result<u64, String> {
            obj.and_then(|o| o.get(k))
                .and_then(|f| f.as_u64())
                .ok_or_else(|| format!("load report missing {k:?}"))
        };
        let float = |obj: Option<&JsonValue>, k: &str| -> Result<f64, String> {
            obj.and_then(|o| o.get(k))
                .and_then(|f| f.as_f64())
                .ok_or_else(|| format!("load report missing {k:?}"))
        };
        let cfg = v.get("config");
        let config = LoadConfig {
            requests: uint(cfg, "requests")? as usize,
            threads: uint(cfg, "threads")? as usize,
            seed: uint(cfg, "seed")?,
            repeat_rate: float(cfg, "repeat_rate")?,
            max_n: uint(cfg, "max_n")? as usize,
            cache_bytes: uint(cfg, "cache_bytes")? as usize,
        };
        let stages = v
            .get("stages")
            .and_then(JsonValue::as_array)
            .map(|entries| {
                entries
                    .iter()
                    .filter_map(|e| {
                        Some(StageLatency {
                            stage: e.get("stage")?.as_str()?.to_string(),
                            count: e.get("count")?.as_u64()?,
                            p50_ns: e.get("p50_ns")?.as_u64()?,
                            p99_ns: e.get("p99_ns")?.as_u64()?,
                        })
                    })
                    .collect()
            })
            .unwrap_or_default();
        let top = Some(&v);
        Ok(LoadReport {
            config,
            completed: uint(top, "completed")? as usize,
            errors: uint(top, "errors")? as usize,
            errors_by_type: ErrorBreakdown::from_json(v.get("errors_by_type")),
            hits: uint(top, "hits")? as usize,
            hit_rate: float(top, "hit_rate")?,
            wall_ns: uint(top, "wall_ns")?,
            rps: float(top, "rps")?,
            p50_ns: uint(top, "p50_ns")?,
            p99_ns: uint(top, "p99_ns")?,
            stages,
        })
    }
}

/// Renders the per-type error table shared by the plain and chaos
/// reports.
fn render_breakdown(b: &ErrorBreakdown) -> String {
    let mut t = crate::Table::new(vec![
        "errors",
        "timeout",
        "memory",
        "shed",
        "panic",
        "breaker-open",
        "other",
    ]);
    t.row(vec![
        b.total().to_string(),
        b.timeout.to_string(),
        b.memory.to_string(),
        b.shed.to_string(),
        b.panic.to_string(),
        b.breaker_open.to_string(),
        b.other.to_string(),
    ]);
    t.render()
}

// ---------------------------------------------------------------------------
// Chaos mode
// ---------------------------------------------------------------------------

/// Configuration of a `load --chaos` run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// The underlying stream mix (requests, seed, repeat rate, sizes).
    pub load: LoadConfig,
    /// Concurrent client driver threads.
    pub drivers: usize,
    /// `serve-worker-panic` triggers armed at the start of the burst
    /// third (each failing request consumes one per attempt).
    pub burst_faults: usize,
    /// Answered requests to differentially re-check against a fresh
    /// sequential cold run.
    pub recheck_samples: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            load: LoadConfig::default(),
            drivers: 4,
            burst_faults: 30,
            recheck_samples: 16,
        }
    }
}

/// Outcome counters of one chaos phase (warmup / burst / recovery).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseStats {
    /// Requests issued in the phase.
    pub requests: usize,
    /// Requests answered with a plan.
    pub completed: usize,
    /// Completed requests served from the plan cache.
    pub hits: usize,
    /// Hit rate over completed requests.
    pub hit_rate: f64,
    /// Per-type error counts (typed refusals included).
    pub errors: ErrorBreakdown,
    /// 99th-percentile latency of completed requests, nanoseconds.
    pub p99_ns: u64,
}

/// Results of one chaos run; [`ChaosReport::verify`] applies the gates.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// The configuration that produced the run.
    pub config: ChaosConfig,
    /// The fault-free first third.
    pub warmup: PhaseStats,
    /// The middle third, run with the panic burst armed.
    pub burst: PhaseStats,
    /// The final third, after faults cleared and the breaker reclosed.
    pub recovery: PhaseStats,
    /// Breaker open transitions observed by the gateway.
    pub breaker_opens: u64,
    /// Whether the tenant's breaker was closed again before recovery.
    pub breaker_reclosed: bool,
    /// Sampled answers that diverged from the sequential cold re-run
    /// (must be 0: chaos may fail requests, never change plans).
    pub wrong_plans: usize,
    /// Sampled answers re-checked.
    pub rechecked: usize,
    /// Whether the final drain completed with nothing in flight.
    pub drained: bool,
    /// Final gateway counters.
    pub gateway: GatewayStats,
}

fn arm_panic_burst(times: usize) {
    #[cfg(failpoints)]
    joinopt_core::failpoint::configure_times(
        "serve-worker-panic",
        joinopt_core::failpoint::FailAction::Panic,
        times,
    );
    #[cfg(not(failpoints))]
    let _ = times;
}

fn clear_faults() {
    #[cfg(failpoints)]
    joinopt_core::failpoint::clear("serve-worker-panic");
}

/// Runs the chaos scenario. Requires a `--cfg failpoints` build (the
/// burst has nothing to inject otherwise, so the run refuses to
/// pretend).
pub fn run_chaos(
    config: &ChaosConfig,
    obs: &(dyn joinopt_telemetry::Observer + Sync),
) -> Result<ChaosReport, String> {
    if !cfg!(failpoints) {
        return Err(
            "chaos mode needs fault injection: rebuild with RUSTFLAGS=\"--cfg failpoints\""
                .to_string(),
        );
    }
    // Mixed priorities over the seeded stream: ~10% low (sheds first
    // under the tightened watermark below), ~10% high.
    let mut stream = build_stream(&config.load);
    let mut rng = XorShift64::seed_from_u64(config.load.seed ^ 0x4368_616f_7321); // "Chaos!"
    for req in &mut stream {
        let r = rng.next_f64();
        let priority = if r < 0.1 {
            Priority::Low
        } else if r > 0.9 {
            Priority::High
        } else {
            Priority::Normal
        };
        *req = req.clone().with_priority(priority);
    }

    let service = OptimizerService::new(ServiceConfig {
        worker_threads: 1,
        queue_capacity: stream.len().max(1),
        tenant_limit: stream.len().max(1),
        cache: Some(CacheConfig {
            byte_budget: config.load.cache_bytes,
            ..CacheConfig::default()
        }),
    });
    let gateway = Gateway::new(
        service,
        GatewayConfig {
            shed: ShedConfig {
                low_watermark: 3,
                ..ShedConfig::default()
            },
            breaker: BreakerConfig {
                failure_threshold: 3,
                cooldown: Duration::from_millis(100),
                success_threshold: 1,
            },
            seed: config.load.seed,
            ..GatewayConfig::default()
        },
    );

    let third = stream.len() / 3;
    let (warm_reqs, rest) = stream.split_at(third);
    let (burst_reqs, recovery_reqs) = rest.split_at(third);

    let warmup = run_phase(&gateway, warm_reqs, 0, config.drivers, obs);
    arm_panic_burst(config.burst_faults);
    let burst = run_phase(&gateway, burst_reqs, third, config.drivers, obs);
    clear_faults();

    // Let the tenant's breaker reclose before judging recovery: probe
    // with the (cached) first query until the half-open probe succeeds.
    let mut breaker_reclosed = gateway.breaker_state("load") == BreakerState::Closed;
    if !breaker_reclosed {
        let probe = stream[0].clone();
        let mut session = None;
        for _ in 0..200 {
            std::thread::sleep(Duration::from_millis(10));
            let _ = gateway.handle(&probe, None, &mut session, obs);
            if gateway.breaker_state("load") == BreakerState::Closed {
                breaker_reclosed = true;
                break;
            }
        }
    }

    let recovery = run_phase(&gateway, recovery_reqs, 2 * third, config.drivers, obs);

    let (rechecked, wrong_plans) = recheck(
        &stream,
        &[&warmup.1[..], &burst.1[..], &recovery.1[..]].concat(),
        config.recheck_samples,
        config.load.seed,
    );

    gateway.begin_drain();
    let drained = gateway.await_drained(Duration::from_secs(10), obs).is_ok();
    let stats = gateway.stats();
    Ok(ChaosReport {
        config: config.clone(),
        warmup: warmup.0,
        burst: burst.0,
        recovery: recovery.0,
        breaker_opens: stats.breaker_opens,
        breaker_reclosed,
        wrong_plans,
        rechecked,
        drained,
        gateway: stats,
    })
}

/// Drives one phase's slice of the stream through the gateway with
/// `drivers` concurrent client threads. Returns the phase counters and
/// the `(stream_index, cost_bits)` of every answered request (the
/// re-check pool).
fn run_phase(
    gateway: &Gateway,
    reqs: &[ServiceRequest],
    base_index: usize,
    drivers: usize,
    obs: &(dyn joinopt_telemetry::Observer + Sync),
) -> (PhaseStats, Vec<(usize, u64)>) {
    let next = AtomicUsize::new(0);
    // (request index, outcome): cost bits + cache-hit flag + latency ns
    // on success, the typed error kind on failure.
    type DriverOutcome = (usize, Result<(u64, bool, u64), &'static str>);
    let outcomes: Mutex<Vec<DriverOutcome>> = Mutex::new(Vec::with_capacity(reqs.len()));
    std::thread::scope(|scope| {
        for _ in 0..drivers.max(1) {
            scope.spawn(|| {
                let mut session = None;
                loop {
                    let k = next.fetch_add(1, Ordering::SeqCst);
                    let Some(req) = reqs.get(k) else { break };
                    let r = match gateway.handle(req, None, &mut session, obs) {
                        Ok(o) => Ok((
                            o.result.cost.to_bits(),
                            o.cache_hit,
                            u64::try_from(o.elapsed.as_nanos()).unwrap_or(u64::MAX),
                        )),
                        Err(e) => Err(e.kind()),
                    };
                    let mut guard = outcomes
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    guard.push((base_index + k, r));
                }
            });
        }
    });
    let outcomes = outcomes
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);

    let mut stats = PhaseStats {
        requests: reqs.len(),
        ..PhaseStats::default()
    };
    let mut latencies = Histogram::default();
    let mut answered = Vec::new();
    for (idx, r) in outcomes {
        match r {
            Ok((cost_bits, hit, elapsed_ns)) => {
                stats.completed += 1;
                stats.hits += usize::from(hit);
                latencies.record(elapsed_ns);
                answered.push((idx, cost_bits));
            }
            Err(kind) => stats.errors.record(kind),
        }
    }
    stats.hit_rate = if stats.completed == 0 {
        0.0
    } else {
        stats.hits as f64 / stats.completed as f64
    };
    stats.p99_ns = latencies.quantile(0.99);
    (stats, answered)
}

/// Differential exactness check: re-runs a seeded sample of answered
/// requests on a fresh, cache-less, sequential service and compares
/// cost bits. Returns `(rechecked, wrong)`.
fn recheck(
    stream: &[ServiceRequest],
    answered: &[(usize, u64)],
    samples: usize,
    seed: u64,
) -> (usize, usize) {
    if answered.is_empty() {
        return (0, 0);
    }
    let fresh = OptimizerService::new(ServiceConfig {
        worker_threads: 1,
        queue_capacity: 1,
        tenant_limit: samples.max(1),
        cache: None,
    });
    let mut rng = XorShift64::seed_from_u64(seed ^ 0x5265_6368_6563_6b21); // "Recheck!"
    let mut session = None;
    let mut wrong = 0usize;
    let count = samples.min(answered.len());
    for _ in 0..count {
        let (idx, bits) = answered[rng.gen_range(0..answered.len())];
        let req = ServiceRequest::new(stream[idx].spec.clone());
        match fresh.submit_one(&req, &mut session, &joinopt_telemetry::NoopObserver) {
            Ok(o) if o.result.cost.to_bits() == bits => {}
            // A diverging cost — or a cold run that cannot even
            // complete — is a wrong plan for the gate's purposes.
            _ => wrong += 1,
        }
    }
    (count, wrong)
}

impl ChaosReport {
    /// The chaos gates: bounded errors, zero wrong plans, breaker
    /// opened and reclosed, post-burst hit-rate and p99 recovery, clean
    /// drain. Returns every violation, not just the first.
    pub fn verify(&self) -> Result<(), String> {
        let mut problems = Vec::new();
        if self.warmup.errors.hard() > 0 {
            problems.push(format!(
                "warmup must be error-free, saw {} hard errors",
                self.warmup.errors.hard()
            ));
        }
        if self.burst.errors.total() > self.burst.requests {
            problems.push(format!(
                "burst errors ({}) exceed burst requests ({})",
                self.burst.errors.total(),
                self.burst.requests
            ));
        }
        if self.breaker_opens == 0 {
            problems.push("fault burst never opened the breaker".to_string());
        }
        if !self.breaker_reclosed {
            problems.push("breaker did not reclose after the faults cleared".to_string());
        }
        if self.recovery.errors.hard() > 0 {
            problems.push(format!(
                "recovery must be error-free, saw {} hard errors",
                self.recovery.errors.hard()
            ));
        }
        if self.recovery.hit_rate < 0.2 {
            problems.push(format!(
                "recovery hit rate {:.3} below the 0.2 floor",
                self.recovery.hit_rate
            ));
        }
        let p99_ceiling = (8 * self.warmup.p99_ns).max(20_000_000);
        if self.recovery.p99_ns > p99_ceiling {
            problems.push(format!(
                "recovery p99 {}ns above ceiling {}ns",
                self.recovery.p99_ns, p99_ceiling
            ));
        }
        if self.rechecked == 0 {
            problems.push("differential re-check sampled nothing".to_string());
        }
        if self.wrong_plans > 0 {
            problems.push(format!(
                "{} of {} re-checked answers diverged from the sequential cold run",
                self.wrong_plans, self.rechecked
            ));
        }
        if !self.drained {
            problems.push("drain did not complete".to_string());
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems.join("; "))
        }
    }

    /// Serializes the chaos report (rides the [`SCHEMA`] tag with
    /// `"mode": "chaos"` and a `"chaos"` section).
    pub fn to_json(&self) -> String {
        let phase = |p: &PhaseStats| {
            let mut s = format!(
                "{{\"requests\": {}, \"completed\": {}, \"hits\": {}, \"p99_ns\": {}, \
                 \"errors\": {}, \"hit_rate\": ",
                p.requests,
                p.completed,
                p.hits,
                p.p99_ns,
                p.errors.to_json_object()
            );
            write_f64(&mut s, p.hit_rate);
            s.push('}');
            s
        };
        let mut s = String::from("{\n  \"schema\": ");
        write_escaped(&mut s, SCHEMA);
        s.push_str(",\n  \"mode\": \"chaos\"");
        s.push_str(&format!(
            ",\n  \"config\": {{\"requests\": {}, \"drivers\": {}, \"seed\": {}, \
             \"burst_faults\": {}, \"recheck_samples\": {}}}",
            self.config.load.requests,
            self.config.drivers,
            self.config.load.seed,
            self.config.burst_faults,
            self.config.recheck_samples
        ));
        s.push_str(&format!(
            ",\n  \"chaos\": {{\n    \"warmup\": {},\n    \"burst\": {},\n    \"recovery\": {},\n    \
             \"breaker_opens\": {}, \"breaker_reclosed\": {}, \"wrong_plans\": {}, \
             \"rechecked\": {}, \"drained\": {}\n  }}",
            phase(&self.warmup),
            phase(&self.burst),
            phase(&self.recovery),
            self.breaker_opens,
            self.breaker_reclosed,
            self.wrong_plans,
            self.rechecked,
            self.drained
        ));
        s.push_str(&format!(
            ",\n  \"gateway\": {{\"accepted\": {}, \"shed\": {}, \"breaker_rejected\": {}, \
             \"retried\": {}, \"completed\": {}, \"failed\": {}}}\n}}\n",
            self.gateway.accepted,
            self.gateway.shed,
            self.gateway.breaker_rejected,
            self.gateway.retried,
            self.gateway.completed,
            self.gateway.failed
        ));
        s
    }

    /// A rendered per-phase summary for human consumption.
    pub fn render(&self) -> String {
        let mut t = crate::Table::new(vec![
            "phase",
            "requests",
            "completed",
            "errors",
            "shed",
            "panics",
            "breaker-open",
            "hit_rate",
            "p99",
        ]);
        for (name, p) in [
            ("warmup", &self.warmup),
            ("burst", &self.burst),
            ("recovery", &self.recovery),
        ] {
            t.row(vec![
                name.to_string(),
                p.requests.to_string(),
                p.completed.to_string(),
                p.errors.total().to_string(),
                p.errors.shed.to_string(),
                p.errors.panic.to_string(),
                p.errors.breaker_open.to_string(),
                format!("{:.3}", p.hit_rate),
                crate::format_seconds(p.p99_ns as f64 / 1e9),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "breaker: opened {}x, reclosed: {}; re-checked {} answers, {} wrong; retried {}; drained: {}\n",
            self.breaker_opens,
            self.breaker_reclosed,
            self.rechecked,
            self.wrong_plans,
            self.gateway.retried,
            self.drained
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> LoadConfig {
        LoadConfig {
            requests: 40,
            threads: 1,
            seed: 7,
            repeat_rate: 0.5,
            max_n: 6,
            cache_bytes: 8 << 20,
        }
    }

    #[test]
    fn stream_is_deterministic_and_mixed() {
        let config = small_config();
        let a = build_stream(&config);
        let b = build_stream(&config);
        assert_eq!(a.len(), 40);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.spec, y.spec);
        }
        // Some (but not all) requests repeat an earlier spec.
        let repeats = a
            .iter()
            .enumerate()
            .filter(|(i, r)| a[..*i].iter().any(|p| p.spec == r.spec))
            .count();
        assert!(repeats > 0 && repeats < a.len(), "repeats={repeats}");
    }

    #[test]
    fn single_worker_run_hits_on_every_repeat() {
        let config = small_config();
        let report = run_load(&config);
        assert_eq!(report.completed, 40);
        assert_eq!(report.errors, 0);
        // At one worker, requests execute in arrival order, so every
        // repeated spec is already cached when its repeat arrives.
        let stream = build_stream(&config);
        let repeats = stream
            .iter()
            .enumerate()
            .filter(|(i, r)| stream[..*i].iter().any(|p| p.spec == r.spec))
            .count();
        assert_eq!(report.hits, repeats);
        assert!(report.hit_rate > 0.0);
    }

    #[test]
    fn multi_worker_run_completes_cleanly() {
        let report = run_load(&LoadConfig {
            threads: 4,
            ..small_config()
        });
        assert_eq!(report.completed, 40);
        assert_eq!(report.errors, 0);
    }

    #[test]
    fn report_json_parses_and_carries_the_headline_numbers() {
        let report = run_load(&small_config());
        let v = JsonValue::parse(&report.to_json()).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some(SCHEMA));
        assert_eq!(v.get("completed").unwrap().as_u64(), Some(40));
        assert_eq!(v.get("hits").unwrap().as_u64(), Some(report.hits as u64));
        assert!(v.get("rps").unwrap().as_f64().unwrap() > 0.0);
        assert!(v.get("p99_ns").unwrap().as_u64().is_some());
        let breakdown = v.get("errors_by_type").unwrap();
        assert_eq!(breakdown.get("timeout").unwrap().as_u64(), Some(0));
        assert_eq!(breakdown.get("panic").unwrap().as_u64(), Some(0));
        let rendered = report.render();
        assert!(rendered.contains("hit_rate"));
        assert!(rendered.contains("breaker-open"));
    }

    #[test]
    fn report_round_trips_through_parse() {
        let report = run_load(&small_config());
        let back = LoadReport::parse(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn report_carries_the_stage_breakdown() {
        let report = run_load(&small_config());
        let names: Vec<&str> = report.stages.iter().map(|s| s.stage.as_str()).collect();
        for stage in ["shed-check", "breaker", "cache-lookup", "optimize"] {
            assert!(names.contains(&stage), "missing stage {stage}: {names:?}");
        }
        assert!(
            names.windows(2).all(|w| w[0] < w[1]),
            "stages sorted by name: {names:?}"
        );
        let lookup = report
            .stages
            .iter()
            .find(|s| s.stage == "cache-lookup")
            .unwrap();
        assert_eq!(lookup.count, 40, "every request probes the cache");
        let optimize = report
            .stages
            .iter()
            .find(|s| s.stage == "optimize")
            .unwrap();
        assert_eq!(
            optimize.count as usize,
            40 - report.hits,
            "only misses pay for an optimize span"
        );
        // The stage table reaches both serializations.
        assert!(report.render().contains("cache-lookup"));
        let v = JsonValue::parse(&report.to_json()).unwrap();
        let stages = v.get("stages").and_then(JsonValue::as_array).unwrap();
        assert_eq!(stages.len(), report.stages.len());
    }

    #[test]
    fn v2_reports_parse_with_empty_stages() {
        let v2 = r#"{
  "schema": "joinopt-load-v2",
  "config": {"requests": 10, "threads": 1, "seed": 7, "max_n": 6, "cache_bytes": 1024, "repeat_rate": 0.5},
  "completed": 10, "errors": 0, "hits": 4, "hit_rate": 0.4,
  "errors_by_type": {"timeout": 0, "memory": 0, "shed": 0, "panic": 0, "breaker_open": 0, "other": 0},
  "wall_ns": 1000, "p50_ns": 10, "p99_ns": 20, "rps": 100.0
}"#;
        let report = LoadReport::parse(v2).unwrap();
        assert_eq!(report.completed, 10);
        assert!(report.stages.is_empty());
    }

    #[test]
    fn v1_reports_parse_with_a_zero_breakdown() {
        let v1 = r#"{
  "schema": "joinopt-load-v1",
  "config": {"requests": 10, "threads": 1, "seed": 7, "max_n": 6, "cache_bytes": 1024, "repeat_rate": 0.5},
  "completed": 10, "errors": 2, "hits": 4, "hit_rate": 0.4,
  "wall_ns": 1000, "p50_ns": 10, "p99_ns": 20, "rps": 100.0
}"#;
        let report = LoadReport::parse(v1).unwrap();
        assert_eq!(report.completed, 10);
        assert_eq!(report.errors, 2);
        assert_eq!(report.errors_by_type, ErrorBreakdown::default());
        assert!(LoadReport::parse("{\"schema\": \"joinopt-load-v99\"}").is_err());
    }

    #[test]
    fn error_breakdown_records_by_label() {
        let mut b = ErrorBreakdown::default();
        for kind in [
            "timeout",
            "memory",
            "shed",
            "draining",
            "panic",
            "breaker-open",
            "parse",
        ] {
            b.record(kind);
        }
        assert_eq!(b.timeout, 1);
        assert_eq!(b.memory, 1);
        assert_eq!(b.shed, 2, "draining folds into shed");
        assert_eq!(b.panic, 1);
        assert_eq!(b.breaker_open, 1);
        assert_eq!(b.other, 1);
        assert_eq!(b.total(), 7);
        assert_eq!(b.hard(), 4);
    }

    // The end-to-end chaos gate test lives in `tests/chaos.rs`: it arms
    // process-global failpoints, so it needs its own test process.
}
