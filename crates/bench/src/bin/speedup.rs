//! Speedup curves for the level-synchronous parallel DPsub engine:
//! clique queries n = 10..16 at 1/2/4/8 worker threads, against the
//! sequential `DpSub` implementation as the baseline.
//!
//! Cliques are DPsub's home turf (every subset is connected, so no
//! enumeration effort is filtered away) and the densest per-level work
//! distribution, i.e. the best case for level-synchronous workers.
//! Speedup is only real when the machine has cores to give: the
//! `bench_start` sidecar line records `available_parallelism` so a
//! flat curve on a single-core box is attributable from the artifact
//! alone. Every cell also re-checks bit-identical plan costs against
//! the sequential baseline — a speedup from a different plan would be
//! no speedup at all.
//!
//! Usage:
//!   cargo run --release -p joinopt-bench --bin speedup [--min-n N] [--max-n N]

use std::time::{Duration, Instant};

use joinopt_bench::{format_seconds, write_results, MetaSidecar, Table};
use joinopt_core::{Algorithm, DpSub, JoinOrderer, OptimizeRequest, Session};
use joinopt_cost::{workload::family_workload, Cout};
use joinopt_qgraph::GraphKind;
use joinopt_telemetry::json::write_f64;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const SEED: u64 = 2006;

/// Repeats `f` until ≥ 50 ms accumulates (or 1000 reps), returning the
/// mean seconds per run and the cost of the plan it produced.
fn time_runs(mut f: impl FnMut() -> f64) -> (f64, f64) {
    let mut reps = 0u32;
    let start = Instant::now();
    let (cost, elapsed) = loop {
        let cost = f();
        reps += 1;
        let elapsed = start.elapsed();
        if elapsed >= Duration::from_millis(50) || reps >= 1000 {
            break (cost, elapsed);
        }
    };
    (elapsed.as_secs_f64() / f64::from(reps), cost)
}

fn main() {
    let mut min_n = 10usize;
    let mut max_n = 16usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--min-n" => {
                i += 1;
                min_n = args[i].parse().expect("--min-n takes a size");
            }
            "--max-n" => {
                i += 1;
                max_n = args[i].parse().expect("--max-n takes a size");
            }
            other => panic!("unknown argument: {other}"),
        }
        i += 1;
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "parallel DPsub speedup, clique n = {min_n}..{max_n}, \
         available parallelism: {cores}\n"
    );

    let mut table = Table::new(vec!["n", "seq", "t=1", "t=2", "t=4", "t=8", "speedup@4"]);
    let mut csv = Table::new(vec![
        "n",
        "sequential_s",
        "threads1_s",
        "threads2_s",
        "threads4_s",
        "threads8_s",
        "speedup4",
    ]);
    let mut meta = MetaSidecar::new("speedup", SEED, None);
    {
        let mut line =
            format!("{{\"event\":\"machine\",\"available_parallelism\":{cores},\"threads\":[");
        line.push_str(&THREADS.map(|t| t.to_string()).join(","));
        line.push_str("]}");
        meta.push(line);
    }

    let mut session = Session::new();
    for n in min_n..=max_n {
        let w = family_workload(GraphKind::Clique, n, SEED);

        let (seq_secs, seq_cost) = time_runs(|| {
            DpSub
                .optimize(&w.graph, &w.catalog, &Cout)
                .expect("clique optimizes")
                .cost
        });
        {
            let mut line = format!(
                "{{\"event\":\"cell\",\"graph\":\"clique\",\"n\":{n},\
                 \"mode\":\"sequential\",\"threads\":1,\"seconds\":"
            );
            write_f64(&mut line, seq_secs);
            line.push('}');
            meta.push(line);
        }

        let mut engine_secs = Vec::with_capacity(THREADS.len());
        for threads in THREADS {
            let (secs, cost) = time_runs(|| {
                OptimizeRequest::new(&w.graph, &w.catalog)
                    .with_algorithm(Algorithm::DpSub)
                    .with_threads(threads)
                    .run_in(&mut session)
                    .expect("clique optimizes")
                    .result
                    .cost
            });
            assert_eq!(
                cost.to_bits(),
                seq_cost.to_bits(),
                "engine diverged from sequential at n={n} threads={threads}"
            );
            let mut line = format!(
                "{{\"event\":\"cell\",\"graph\":\"clique\",\"n\":{n},\
                 \"mode\":\"engine\",\"threads\":{threads},\"seconds\":"
            );
            write_f64(&mut line, secs);
            line.push_str(",\"speedup_vs_sequential\":");
            write_f64(&mut line, seq_secs / secs);
            line.push('}');
            meta.push(line);
            engine_secs.push(secs);
        }

        let speedup4 = seq_secs / engine_secs[2];
        table.row(vec![
            n.to_string(),
            format_seconds(seq_secs),
            format_seconds(engine_secs[0]),
            format_seconds(engine_secs[1]),
            format_seconds(engine_secs[2]),
            format_seconds(engine_secs[3]),
            format!("{speedup4:.2}×"),
        ]);
        csv.row(vec![
            n.to_string(),
            format!("{seq_secs}"),
            format!("{}", engine_secs[0]),
            format!("{}", engine_secs[1]),
            format!("{}", engine_secs[2]),
            format!("{}", engine_secs[3]),
            format!("{speedup4}"),
        ]);
    }

    println!("{}", table.render());
    if cores < 2 {
        println!(
            "note: this machine exposes {cores} core(s); level-synchronous \
             workers cannot run concurrently, so the curve shows engine \
             overhead, not speedup."
        );
    }
    match write_results("speedup.csv", &csv.to_csv()) {
        Ok(path) => {
            println!("wrote {}", path.display());
            match meta.write_next_to(&path) {
                Ok(meta_path) => println!("wrote {}", meta_path.display()),
                Err(e) => eprintln!("could not write sidecar: {e}"),
            }
        }
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
