//! Regenerates **Figures 8–11** of the paper: runtime of DPsize and
//! DPsub *relative to DPccp* (DPccp ≡ 1.0) as the number of relations
//! grows from 2 to 20, one figure per graph family:
//!
//! * Figure 8 — chain queries
//! * Figure 9 — cycle queries
//! * Figure 10 — star queries
//! * Figure 11 — clique queries
//!
//! Cells whose predicted runtime exceeds the per-cell budget are
//! extrapolated from calibrated per-iteration costs and marked `~`
//! (the exact counter formulas make the extrapolation principled; see
//! the harness docs). Use `--full` to really run everything — DPsize on
//! star/clique n = 20 needs ~10¹¹ iterations, so expect minutes to hours.
//!
//! Usage:
//!   cargo run --release -p joinopt-bench --bin figures [family…] [--full] [--budget SECS] [--max-n N]

use std::time::Duration;

use joinopt_bench::{
    measure_cell, paper_algorithms, write_results, HarnessConfig, MetaSidecar, Table,
};
use joinopt_qgraph::GraphKind;

fn main() {
    let mut config = HarnessConfig::default();
    let mut kinds: Vec<GraphKind> = Vec::new();
    let mut max_n: usize = 20;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => config.budget = None,
            "--budget" => {
                i += 1;
                let secs: f64 = args[i].parse().expect("--budget takes seconds");
                config.budget = Some(Duration::from_secs_f64(secs));
            }
            "--max-n" => {
                i += 1;
                max_n = args[i].parse().expect("--max-n takes an integer");
            }
            other => {
                kinds.push(
                    GraphKind::parse(other)
                        .unwrap_or_else(|| panic!("unknown graph family: {other}")),
                );
            }
        }
        i += 1;
    }
    if kinds.is_empty() {
        kinds = GraphKind::ALL.to_vec();
    }

    for kind in kinds {
        let figure = match kind {
            GraphKind::Chain => 8,
            GraphKind::Cycle => 9,
            GraphKind::Star => 10,
            GraphKind::Clique => 11,
        };
        println!(
            "Figure {figure}: relative performance for {} queries (DPccp = 1.0)",
            kind.name()
        );
        let mut table = Table::new(vec![
            "n",
            "DPsize/DPccp",
            "DPsub/DPccp",
            "DPccp",
            "DPccp secs",
        ]);
        let mut csv = Table::new(vec!["n", "dpsize_rel", "dpsub_rel", "dpccp_secs"]);
        let mut meta = MetaSidecar::new("figures", config.seed, config.budget);
        for n in 2..=max_n {
            let algs = paper_algorithms();
            let mut secs = [0.0f64; 3];
            let mut extrapolated = [false; 3];
            for (slot, (alg, id)) in algs.iter().enumerate() {
                let m = measure_cell(*alg, *id, kind, n, &config);
                meta.cell(kind, n as u64, alg.name(), &m);
                secs[slot] = m.seconds;
                extrapolated[slot] = m.extrapolated;
            }
            let base = secs[2].max(1e-12);
            let mark = |v: f64, e: bool| {
                if e {
                    format!("~{v:.2}")
                } else {
                    format!("{v:.2}")
                }
            };
            table.row(vec![
                n.to_string(),
                mark(secs[0] / base, extrapolated[0]),
                mark(secs[1] / base, extrapolated[1]),
                "1.00".to_string(),
                format!("{:.3e}", secs[2]),
            ]);
            csv.row(vec![
                n.to_string(),
                format!("{}", secs[0] / base),
                format!("{}", secs[1] / base),
                format!("{}", secs[2]),
            ]);
        }
        println!("{}", table.render());
        let file = format!("figure{figure}_{}.csv", kind.name());
        match write_results(&file, &csv.to_csv()) {
            Ok(path) => {
                println!("wrote {}", path.display());
                match meta.write_next_to(&path) {
                    Ok(meta_path) => println!("wrote {}\n", meta_path.display()),
                    Err(e) => eprintln!("could not write run metadata: {e}\n"),
                }
            }
            Err(e) => eprintln!("could not write CSV: {e}\n"),
        }
    }
    println!("cells marked ~ were extrapolated from calibrated per-iteration cost");
    println!("(exact counter formulas × measured ns/iteration); use --full to run them.");
}
