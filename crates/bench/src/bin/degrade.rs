//! Degradation-ladder experiment (extension beyond the paper's figures):
//! how much plan quality does the graceful-degradation pipeline give up
//! as the memory budget shrinks?
//!
//! For each clique size the bin first measures the exact optimum with no
//! budget, then re-optimizes under a sweep of shrinking memory budgets
//! with `on_budget_exceeded(Degrade)`. Each row reports which rung of
//! the ladder produced the plan (exact / idp / greedy), the bytes the
//! tripped run had consumed, and `cost(plan) / cost(optimal)`.
//!
//! Cliques are the worst case of the paper's analysis (no connectivity
//! filter helps; all `3^n` pairs are valid), so they hit the memory
//! accounting hardest and exercise every rung.
//!
//! Usage: `cargo run --release -p joinopt-bench --bin degrade [--n N]`

use joinopt_core::{Algorithm, BudgetAction, OptimizeRequest};
use joinopt_cost::workload::{random_catalog, StatsRanges};
use joinopt_cost::Cout;
use joinopt_qgraph::generators;
use joinopt_relset::XorShift64;

use joinopt_bench::{write_results, MetaSidecar, Table};

/// Budget sweep, largest first; `None` is the unlimited baseline.
const BUDGETS: [Option<usize>; 6] = [
    None,
    Some(4 << 20),
    Some(1 << 20),
    Some(256 << 10),
    Some(64 << 10),
    Some(16 << 10),
];

fn format_budget(bytes: Option<usize>) -> String {
    match bytes {
        None => "unlimited".to_string(),
        Some(b) if b >= 1 << 20 => format!("{}M", b >> 20),
        Some(b) => format!("{}k", b >> 10),
    }
}

fn main() {
    let mut max_n: usize = 13;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--n" => {
                i += 1;
                max_n = args[i].parse().expect("--n takes an integer");
            }
            other => panic!("unknown argument: {other}"),
        }
        i += 1;
    }

    println!("plan quality under shrinking memory budgets, cliques up to n = {max_n}\n");
    let mut table = Table::new(vec!["n", "budget", "rung", "used-bytes", "cost-ratio"]);
    let mut meta = MetaSidecar::new("degrade", 1, None);
    meta.push(format!("{{\"event\":\"config\",\"max_n\":{max_n}}}"));

    for n in [9, 11, max_n] {
        let g = generators::clique(n).expect("clique size in range");
        let mut rng = XorShift64::seed_from_u64(n as u64 * 31 + 7);
        let catalog = random_catalog(&g, StatsRanges::default(), &mut rng);

        let optimal = OptimizeRequest::new(&g, &catalog)
            .with_algorithm(Algorithm::DpCcp)
            .with_cost_model(&Cout)
            .run()
            .expect("unlimited run succeeds")
            .result
            .cost;

        for budget in BUDGETS {
            let mut request = OptimizeRequest::new(&g, &catalog)
                .with_algorithm(Algorithm::DpCcp)
                .with_cost_model(&Cout)
                .on_budget_exceeded(BudgetAction::Degrade);
            if let Some(bytes) = budget {
                request = request.with_memory_budget(bytes);
            }
            let outcome = request.run().expect("degrading run always yields a plan");
            let (rung, used) = match &outcome.degradation {
                Some(info) => (info.rung.as_str(), info.memory_used),
                None => ("exact", 0),
            };
            let ratio = outcome.result.cost / optimal;
            meta.push(format!(
                "{{\"event\":\"row\",\"n\":{n},\"budget\":\"{}\",\"rung\":\"{rung}\",\
                 \"used_bytes\":{used},\"cost_ratio\":{ratio}}}",
                format_budget(budget)
            ));
            table.row(vec![
                n.to_string(),
                format_budget(budget),
                rung.to_string(),
                used.to_string(),
                format!("{ratio:.3}"),
            ]);
        }
    }
    println!("{}", table.render());
    match write_results("degrade.csv", &table.to_csv()) {
        Ok(path) => {
            println!("wrote {}", path.display());
            match meta.write_next_to(&path) {
                Ok(meta_path) => println!("wrote {}", meta_path.display()),
                Err(e) => eprintln!("could not write run metadata: {e}"),
            }
        }
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
    println!("(ratio 1.000 = the degraded plan matched the exact bushy optimum)");
}
