//! Regenerates **Figure 12** of the paper: sample absolute running
//! times (seconds) of DPsize, DPsub and DPccp for chain, cycle, star and
//! clique queries with n ∈ {5, 10, 15, 20}.
//!
//! Absolute numbers will differ from the paper's 2006 hardware, but the
//! *shape* must match: DPsize ≈ DPccp ≪ DPsub on chains/cycles;
//! DPccp ≪ DPsub ≪ DPsize on stars; DPsub ≲ DPccp ≪ DPsize on cliques.
//! Cells predicted to exceed the budget are extrapolated and marked `~`
//! (in 2006 the two worst cells took 4 791 s and 21 294 s).
//!
//! Usage:
//!   cargo run --release -p joinopt-bench --bin figure12 [--full] [--budget SECS]

use std::time::Duration;

use joinopt_bench::{
    format_seconds, measure_cell, paper_algorithms, write_results, HarnessConfig, MetaSidecar,
    Table,
};
use joinopt_qgraph::GraphKind;

const SIZES: [usize; 4] = [5, 10, 15, 20];

fn main() {
    let mut config = HarnessConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => config.budget = None,
            "--budget" => {
                i += 1;
                let secs: f64 = args[i].parse().expect("--budget takes seconds");
                config.budget = Some(Duration::from_secs_f64(secs));
            }
            other => panic!("unknown argument: {other}"),
        }
        i += 1;
    }

    println!("Figure 12: sample absolute running times (s)\n");
    let mut csv = Table::new(vec!["graph", "n", "dpsize_s", "dpsub_s", "dpccp_s"]);
    let mut meta = MetaSidecar::new("figure12", config.seed, config.budget);
    for kind in GraphKind::ALL {
        println!("{} queries", kind.name());
        let mut table = Table::new(vec!["n", "DPsize", "DPsub", "DPccp"]);
        for n in SIZES {
            let mut cells = Vec::with_capacity(3);
            let mut raw = Vec::with_capacity(3);
            for (alg, id) in paper_algorithms() {
                let m = measure_cell(alg, id, kind, n, &config);
                meta.cell(kind, n as u64, alg.name(), &m);
                let text = if m.extrapolated {
                    format!("~{}", format_seconds(m.seconds))
                } else {
                    format_seconds(m.seconds)
                };
                cells.push(text);
                raw.push(m.seconds);
            }
            table.row(vec![
                n.to_string(),
                cells[0].clone(),
                cells[1].clone(),
                cells[2].clone(),
            ]);
            csv.row(vec![
                kind.name().to_string(),
                n.to_string(),
                format!("{}", raw[0]),
                format!("{}", raw[1]),
                format!("{}", raw[2]),
            ]);
        }
        println!("{}", table.render());
    }
    match write_results("figure12.csv", &csv.to_csv()) {
        Ok(path) => {
            println!("wrote {}", path.display());
            match meta.write_next_to(&path) {
                Ok(meta_path) => println!("wrote {}", meta_path.display()),
                Err(e) => eprintln!("could not write run metadata: {e}"),
            }
        }
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
    println!("cells marked ~ were extrapolated (counter formula × calibrated ns/iter).");
}
