//! Regenerates **Figure 3** of the paper: "Size of the search space for
//! different graph structures" — `#ccp`, and the `InnerCounter` values
//! of DPsub and DPsize, for chain/cycle/star/clique queries with
//! n ∈ {2, 5, 10, 15, 20}.
//!
//! The table is computed from the exact closed forms (Sections 2.1, 2.2
//! and 2.3.2, with the published typos corrected — see DESIGN.md §5) and
//! verified against instrumented algorithm runs for every cell that is
//! cheap enough to execute (`--verify-budget` iterations, default 10⁷).
//!
//! Usage: `cargo run --release -p joinopt-bench --bin figure3 [--no-verify]`

use joinopt_bench::{write_results, MetaSidecar, Table};
use joinopt_core::formulas::{dpsize_inner, dpsub_inner};
use joinopt_core::{DpSize, DpSub, JoinOrderer};
use joinopt_cost::{workload::family_workload, Cout};
use joinopt_qgraph::formulas::ccp_distinct;
use joinopt_qgraph::GraphKind;

const SIZES: [u64; 5] = [2, 5, 10, 15, 20];
const VERIFY_BUDGET: u128 = 10_000_000;

fn main() {
    let verify = !std::env::args().any(|a| a == "--no-verify");
    let mut csv = Table::new(vec!["graph", "n", "ccp", "dpsub_inner", "dpsize_inner"]);
    // Counter formulas are seed- and budget-free; the sidecar records
    // which cells were additionally verified by instrumented runs.
    let mut meta = MetaSidecar::new("figure3", 0, None);

    println!("Figure 3: size of the search space for different graph structures");
    println!("(#ccp = csg-cmp-pairs, symmetric pairs excluded — the Ono/Lohman count)\n");

    for kind in GraphKind::ALL {
        let mut table = Table::new(vec!["n", "#ccp", "DPsub", "DPsize"]);
        for n in SIZES {
            let ccp = ccp_distinct(kind, n);
            let sub = dpsub_inner(kind, n);
            let size = dpsize_inner(kind, n);
            table.row(vec![
                n.to_string(),
                ccp.to_string(),
                sub.to_string(),
                size.to_string(),
            ]);
            csv.row(vec![
                kind.name().to_string(),
                n.to_string(),
                ccp.to_string(),
                sub.to_string(),
                size.to_string(),
            ]);
            let verified = verify && (size <= VERIFY_BUDGET || sub <= VERIFY_BUDGET);
            meta.push(format!(
                "{{\"event\":\"cell\",\"graph\":\"{}\",\"n\":{n},\"ccp\":{ccp},\
                 \"dpsub_inner\":{sub},\"dpsize_inner\":{size},\"verified\":{verified}}}",
                kind.name()
            ));
            if verify {
                verify_cell(kind, n, ccp, sub, size);
            }
        }
        println!("{}\n{}", kind.name(), table.render());
    }

    match write_results("figure3.csv", &csv.to_csv()) {
        Ok(path) => {
            println!("wrote {}", path.display());
            match meta.write_next_to(&path) {
                Ok(meta_path) => println!("wrote {}", meta_path.display()),
                Err(e) => eprintln!("could not write run metadata: {e}"),
            }
        }
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
    if verify {
        println!("all cells under {VERIFY_BUDGET} iterations verified against instrumented runs ✓");
    }
}

/// Runs the instrumented algorithms where feasible and asserts the
/// measured counters equal the closed forms.
fn verify_cell(kind: GraphKind, n: u64, ccp: u128, sub: u128, size: u128) {
    let w = family_workload(kind, n as usize, 0);
    if size <= VERIFY_BUDGET {
        let r = DpSize.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        assert_eq!(u128::from(r.counters.inner), size, "DPsize {kind} n={n}");
        assert_eq!(u128::from(r.counters.ono_lohman), ccp, "#ccp {kind} n={n}");
    }
    if sub <= VERIFY_BUDGET {
        let r = DpSub.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        assert_eq!(u128::from(r.counters.inner), sub, "DPsub {kind} n={n}");
        assert_eq!(u128::from(r.counters.ono_lohman), ccp, "#ccp {kind} n={n}");
    }
}
