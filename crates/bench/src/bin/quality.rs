//! Plan-quality experiment (extension beyond the paper's figures):
//! how far do restricted or heuristic strategies fall from the optimal
//! bushy plan that DPccp guarantees?
//!
//! Sweeps random workloads across query-graph densities and reports, for
//! each strategy, the distribution of `cost(strategy) / cost(optimal)`:
//!
//! * optimal left-deep (Selinger space, exact DP);
//! * IKKBZ (polynomial; falls back to left-deep DP on cyclic graphs —
//!   reported only where the graph is a tree);
//! * IDP with small block sizes;
//! * seeded simulated annealing;
//! * GOO greedy.
//!
//! Usage: `cargo run --release -p joinopt-bench --bin quality [--trials T] [--n N]`

use joinopt_core::greedy::Goo;
use joinopt_core::{DpCcp, DpSizeLeftDeep, Idp, IkkBz, JoinOrderer, SimulatedAnnealing};
use joinopt_cost::{workload, Cout};

use joinopt_bench::{write_results, MetaSidecar, Table};

struct Stats {
    ratios: Vec<f64>,
}

impl Stats {
    fn new() -> Stats {
        Stats { ratios: Vec::new() }
    }

    fn push(&mut self, ratio: f64) {
        self.ratios.push(ratio);
    }

    fn row(&mut self, label: &str, density: f64) -> Vec<String> {
        self.ratios
            .sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let q = |p: f64| -> f64 {
            if self.ratios.is_empty() {
                f64::NAN
            } else {
                self.ratios[((self.ratios.len() - 1) as f64 * p) as usize]
            }
        };
        vec![
            label.to_string(),
            format!("{density:.1}"),
            self.ratios.len().to_string(),
            format!("{:.3}", q(0.5)),
            format!("{:.3}", q(0.9)),
            format!("{:.3}", q(1.0)),
        ]
    }
}

fn main() {
    let mut trials: u64 = 100;
    let mut n: usize = 10;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trials" => {
                i += 1;
                trials = args[i].parse().expect("--trials takes an integer");
            }
            "--n" => {
                i += 1;
                n = args[i].parse().expect("--n takes an integer");
            }
            other => panic!("unknown argument: {other}"),
        }
        i += 1;
    }

    println!(
        "plan quality vs optimal bushy (DPccp), {trials} random workloads per density, n = {n}\n"
    );
    let mut table = Table::new(vec!["strategy", "density", "cases", "median", "p90", "max"]);
    // Workload seeds are derived as `seed * 7 + 1`; the sidecar records
    // the sweep configuration so the ratios are reproducible.
    let mut meta = MetaSidecar::new("quality", 1, None);
    meta.push(format!(
        "{{\"event\":\"config\",\"trials\":{trials},\"n\":{n}}}"
    ));
    for density in [0.0, 0.3, 0.6] {
        let mut leftdeep = Stats::new();
        let mut ikkbz = Stats::new();
        let mut idp3 = Stats::new();
        let mut idp6 = Stats::new();
        let mut sa = Stats::new();
        let mut goo = Stats::new();
        for seed in 0..trials {
            let w = workload::random_workload(n, density, seed * 7 + 1);
            let optimal = DpCcp
                .optimize(&w.graph, &w.catalog, &Cout)
                .expect("valid workload")
                .cost;
            let record = |stats: &mut Stats, cost: f64| {
                stats.push(cost / optimal);
            };
            record(
                &mut leftdeep,
                DpSizeLeftDeep
                    .optimize(&w.graph, &w.catalog, &Cout)
                    .expect("valid")
                    .cost,
            );
            if let Ok(r) = IkkBz.optimize(&w.graph, &w.catalog) {
                record(&mut ikkbz, r.cost);
            }
            record(
                &mut idp3,
                Idp::with_block_size(3)
                    .optimize(&w.graph, &w.catalog, &Cout)
                    .expect("valid")
                    .cost,
            );
            record(
                &mut idp6,
                Idp::with_block_size(6)
                    .optimize(&w.graph, &w.catalog, &Cout)
                    .expect("valid")
                    .cost,
            );
            record(
                &mut sa,
                SimulatedAnnealing::with_seed(seed)
                    .optimize(&w.graph, &w.catalog, &Cout)
                    .expect("valid")
                    .cost,
            );
            record(
                &mut goo,
                Goo.optimize(&w.graph, &w.catalog, &Cout)
                    .expect("valid")
                    .cost,
            );
        }
        for (label, stats) in [
            ("left-deep (exact)", &mut leftdeep),
            ("IKKBZ (trees only)", &mut ikkbz),
            ("IDP k=3", &mut idp3),
            ("IDP k=6", &mut idp6),
            ("sim. annealing", &mut sa),
            ("GOO greedy", &mut goo),
        ] {
            let row = stats.row(label, density);
            // Empty distributions (e.g. IKKBZ with no tree-shaped
            // graphs) quantize to NaN, which JSON cannot carry.
            fn json_num(s: &str) -> &str {
                if s == "NaN" {
                    "null"
                } else {
                    s
                }
            }
            meta.push(format!(
                "{{\"event\":\"row\",\"strategy\":\"{}\",\"density\":{},\"cases\":{},\
                 \"median\":{},\"p90\":{},\"max\":{}}}",
                row[0],
                row[1],
                row[2],
                json_num(&row[3]),
                json_num(&row[4]),
                json_num(&row[5])
            ));
            table.row(row);
        }
    }
    println!("{}", table.render());
    match write_results("quality.csv", &table.to_csv()) {
        Ok(path) => {
            println!("wrote {}", path.display());
            match meta.write_next_to(&path) {
                Ok(meta_path) => println!("wrote {}", meta_path.display()),
                Err(e) => eprintln!("could not write run metadata: {e}"),
            }
        }
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
    println!(
        "(ratios: 1.000 = matched the bushy optimum; IKKBZ rows cover tree-shaped graphs only)"
    );
}
