//! Measurement harness shared by the figure-regenerating binaries.
//!
//! The paper's experiments time three algorithms over four graph
//! families for `n` up to 20. Two of the 48 cells of Figure 12 need
//! ~10¹¹ innermost iterations (DPsize on star/clique at n = 20 took
//! 4 791 s and 21 294 s in 2006); to keep the default harness runs
//! tractable, any cell whose *predicted* runtime exceeds a budget is
//! extrapolated from the per-iteration cost measured at the largest
//! feasible size — the counter formulas are exact, so only the
//! nanoseconds-per-iteration factor is estimated. Extrapolated cells are
//! marked `~`; `--full` runs everything honestly.

pub mod load;
pub mod microbench;
pub mod perf;

use std::time::{Duration, Instant};

use joinopt_core::formulas;
use joinopt_core::{Counters, DpCcp, DpSize, DpSub, JoinOrderer};
use joinopt_cost::{workload::family_workload, Cout};
use joinopt_qgraph::GraphKind;
use joinopt_telemetry::json::{write_escaped, write_f64};

/// The three algorithms of the paper's evaluation, in figure order.
pub fn paper_algorithms() -> [(&'static dyn JoinOrderer, AlgId); 3] {
    [
        (&DpSize, AlgId::DpSize),
        (&DpSub, AlgId::DpSub),
        (&DpCcp, AlgId::DpCcp),
    ]
}

/// Identifies an algorithm for counter prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgId {
    /// Size-driven enumeration.
    DpSize,
    /// Subset-driven enumeration.
    DpSub,
    /// csg-cmp-pair enumeration.
    DpCcp,
}

impl AlgId {
    /// Predicted `InnerCounter` for a family/size (exact closed forms).
    pub fn predicted_inner(self, kind: GraphKind, n: u64) -> u128 {
        match self {
            AlgId::DpSize => formulas::dpsize_inner(kind, n),
            AlgId::DpSub => formulas::dpsub_inner(kind, n),
            AlgId::DpCcp => formulas::dpccp_inner(kind, n),
        }
    }
}

/// One timed (or extrapolated) cell.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Wall-clock seconds (measured or extrapolated).
    pub seconds: f64,
    /// Counters from the run (predicted values when extrapolated).
    pub counters: Counters,
    /// `true` when `seconds` was extrapolated rather than measured.
    pub extrapolated: bool,
}

/// Harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Per-cell time budget; cells predicted to exceed it are
    /// extrapolated. `None` = run everything (`--full`).
    pub budget: Option<Duration>,
    /// Workload seed (statistics only; counters are stats-independent).
    pub seed: u64,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            budget: Some(Duration::from_secs(5)),
            seed: 2006,
        }
    }
}

/// Times one `(algorithm, family, n)` cell.
///
/// Small cells are repeated until ≥ 20 ms of total runtime accumulates,
/// so sub-microsecond measurements are still meaningful. When the
/// predicted runtime (from the exact counter formulas and a
/// per-iteration cost calibrated at the largest feasible size) exceeds
/// the budget, the cell is extrapolated instead of run.
pub fn measure_cell(
    alg: &dyn JoinOrderer,
    id: AlgId,
    kind: GraphKind,
    n: usize,
    config: &HarnessConfig,
) -> Measurement {
    let predicted = id.predicted_inner(kind, n as u64);
    if let Some(budget) = config.budget {
        let ns_per_iter = calibrate(alg, id, kind, n, config);
        let predicted_secs = predicted as f64 * ns_per_iter / 1e9;
        if predicted_secs > budget.as_secs_f64() {
            return Measurement {
                seconds: predicted_secs,
                counters: Counters {
                    inner: predicted.min(u128::from(u64::MAX)) as u64,
                    csg_cmp_pairs: 0,
                    ono_lohman: 0,
                },
                extrapolated: true,
            };
        }
    }
    run_timed(alg, kind, n, config.seed)
}

/// Runs one cell, repeating until enough time accumulates.
pub fn run_timed(alg: &dyn JoinOrderer, kind: GraphKind, n: usize, seed: u64) -> Measurement {
    let w = family_workload(kind, n, seed);
    let mut reps = 0u32;
    let start = Instant::now();
    let (counters, elapsed) = loop {
        let r = alg
            .optimize(&w.graph, &w.catalog, &Cout)
            .expect("family workloads are valid");
        reps += 1;
        let elapsed = start.elapsed();
        if elapsed >= Duration::from_millis(20) || reps >= 10_000 {
            break (r.counters, elapsed);
        }
    };
    Measurement {
        seconds: elapsed.as_secs_f64() / f64::from(reps),
        counters,
        extrapolated: false,
    }
}

/// Estimates nanoseconds per innermost iteration by running the largest
/// size of the same family whose predicted counter stays under ~2·10⁷.
fn calibrate(
    alg: &dyn JoinOrderer,
    id: AlgId,
    kind: GraphKind,
    n: usize,
    config: &HarnessConfig,
) -> f64 {
    const CALIBRATION_ITERS: u128 = 20_000_000;
    let mut probe = n;
    while probe > 2 && id.predicted_inner(kind, probe as u64) > CALIBRATION_ITERS {
        probe -= 1;
    }
    let m = run_timed(alg, kind, probe, config.seed);
    let iters = id.predicted_inner(kind, probe as u64).max(1);
    (m.seconds * 1e9 / iters as f64).max(0.05)
}

/// Formats a duration in the paper's Figure 12 style (seconds with
/// magnitude-appropriate precision, e.g. `7.7e-6`, `0.048`, `4791`).
pub fn format_seconds(secs: f64) -> String {
    if secs < 0.01 {
        format!("{secs:.1e}")
    } else if secs < 100.0 {
        format!("{secs:.2}")
    } else {
        format!("{secs:.0}")
    }
}

/// Simple aligned-table printer for the figure binaries.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders with right-aligned columns (first column left-aligned).
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i == 0 {
                    line.push_str(&format!("{:<w$}", cells[i], w = widths[i]));
                } else {
                    line.push_str(&format!("  {:>w$}", cells[i], w = widths[i]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Renders as CSV (no alignment, comma-separated).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Writes `content` under `bench_results/` (created on demand) and
/// returns the path written.
pub fn write_results(file: &str, content: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("bench_results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(file);
    std::fs::write(&path, content)?;
    Ok(path)
}

/// JSONL run-metadata sidecar written next to each `bench_results/*.csv`.
///
/// Every figure CSV gets a `<name>.meta.jsonl` companion: a header line
/// recording the producing binary and harness configuration, then one
/// line per measured cell — so a plotted figure can always be traced back
/// to what was actually run (seed, budget, which cells were
/// extrapolated). Each line is a JSON object that parses with
/// [`joinopt_telemetry::json::JsonValue`]; the schema is documented in
/// `docs/observability.md`.
pub struct MetaSidecar {
    lines: Vec<String>,
}

impl MetaSidecar {
    /// Starts a sidecar for `bin`, recording the harness seed and
    /// per-cell budget in the `bench_start` header line.
    pub fn new(bin: &str, seed: u64, budget: Option<Duration>) -> MetaSidecar {
        let mut line = String::from("{\"event\":\"bench_start\",\"bin\":");
        write_escaped(&mut line, bin);
        line.push_str(&format!(",\"seed\":{seed},\"budget_secs\":"));
        match budget {
            Some(b) => write_f64(&mut line, b.as_secs_f64()),
            None => line.push_str("null"),
        }
        line.push('}');
        MetaSidecar { lines: vec![line] }
    }

    /// Records one measured (or extrapolated) figure cell.
    pub fn cell(&mut self, kind: GraphKind, n: u64, algorithm: &str, m: &Measurement) {
        let mut line = String::from("{\"event\":\"cell\",\"graph\":");
        write_escaped(&mut line, kind.name());
        line.push_str(&format!(",\"n\":{n},\"algorithm\":"));
        write_escaped(&mut line, algorithm);
        line.push_str(",\"seconds\":");
        write_f64(&mut line, m.seconds);
        line.push_str(&format!(
            ",\"inner\":{},\"csg_cmp_pairs\":{},\"ono_lohman\":{},\"extrapolated\":{}}}",
            m.counters.inner, m.counters.csg_cmp_pairs, m.counters.ono_lohman, m.extrapolated
        ));
        self.lines.push(line);
    }

    /// Appends a pre-rendered single-line JSON object (for binaries whose
    /// rows are not [`Measurement`] cells).
    pub fn push(&mut self, line: String) {
        debug_assert!(
            !line.contains('\n'),
            "sidecar lines must be single-line JSON"
        );
        self.lines.push(line);
    }

    /// Writes the sidecar next to `csv_path` as `<name>.meta.jsonl` and
    /// returns the path written.
    pub fn write_next_to(&self, csv_path: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        let path = csv_path.with_extension("meta.jsonl");
        let mut content = String::with_capacity(self.lines.iter().map(|l| l.len() + 1).sum());
        for line in &self.lines {
            content.push_str(line);
            content.push('\n');
        }
        std::fs::write(&path, content)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicted_inner_dispatch() {
        assert_eq!(AlgId::DpSize.predicted_inner(GraphKind::Chain, 5), 73);
        assert_eq!(AlgId::DpSub.predicted_inner(GraphKind::Chain, 5), 84);
        assert_eq!(AlgId::DpCcp.predicted_inner(GraphKind::Chain, 5), 20);
    }

    #[test]
    fn measurement_of_tiny_cell() {
        let m = run_timed(&DpCcp, GraphKind::Chain, 5, 1);
        assert!(!m.extrapolated);
        assert!(m.seconds > 0.0 && m.seconds < 1.0);
        assert_eq!(m.counters.inner, 20);
    }

    #[test]
    fn huge_cells_are_extrapolated_under_budget() {
        let config = HarnessConfig {
            budget: Some(Duration::from_millis(50)),
            seed: 1,
        };
        let m = measure_cell(&DpSize, AlgId::DpSize, GraphKind::Clique, 20, &config);
        assert!(m.extrapolated);
        assert!(m.seconds > 0.05);
    }

    #[test]
    fn small_cells_are_measured_under_budget() {
        let config = HarnessConfig::default();
        let m = measure_cell(&DpCcp, AlgId::DpCcp, GraphKind::Chain, 10, &config);
        assert!(!m.extrapolated);
        assert_eq!(m.counters.inner, 165);
    }

    #[test]
    fn format_seconds_styles() {
        assert_eq!(format_seconds(7.7e-6), "7.7e-6");
        assert_eq!(format_seconds(0.0048), "4.8e-3");
        assert_eq!(format_seconds(0.048), "0.05");
        assert_eq!(format_seconds(4791.0), "4791");
    }

    #[test]
    fn table_rendering() {
        let mut t = Table::new(vec!["n", "a", "b"]);
        t.row(vec!["2", "10", "1"]);
        t.row(vec!["20", "1", "1000"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('n'));
        assert!(lines[3].ends_with("1000"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().nth(1).unwrap(), "2,10,1");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_bad_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn sidecar_lines_parse_as_json() {
        use joinopt_telemetry::json::JsonValue;

        let mut meta = MetaSidecar::new("figure12", 2006, Some(Duration::from_secs(5)));
        let m = run_timed(&DpCcp, GraphKind::Chain, 5, 2006);
        meta.cell(GraphKind::Chain, 5, "DPccp", &m);
        meta.push("{\"event\":\"config\",\"trials\":3}".to_string());

        assert_eq!(meta.lines.len(), 3);
        for line in &meta.lines {
            JsonValue::parse(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
        }
        let header = JsonValue::parse(&meta.lines[0]).unwrap();
        assert_eq!(header.get("event").unwrap().as_str(), Some("bench_start"));
        assert_eq!(header.get("bin").unwrap().as_str(), Some("figure12"));
        assert_eq!(header.get("seed").unwrap().as_u64(), Some(2006));
        let cell = JsonValue::parse(&meta.lines[1]).unwrap();
        assert_eq!(cell.get("graph").unwrap().as_str(), Some("chain"));
        assert_eq!(cell.get("inner").unwrap().as_u64(), Some(20));
        assert_eq!(cell.get("extrapolated").unwrap().as_bool(), Some(false));
        assert!(cell.get("seconds").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn sidecar_path_replaces_csv_extension() {
        let dir = std::env::temp_dir().join(format!("joinopt-meta-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("figure3.csv");
        std::fs::write(&csv, "a,b\n").unwrap();
        let meta = MetaSidecar::new("figure3", 0, None);
        let path = meta.write_next_to(&csv).unwrap();
        assert!(path.ends_with("figure3.meta.jsonl"), "{}", path.display());
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"budget_secs\":null"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
