//! The performance-baseline subsystem behind `joinopt perf`.
//!
//! Runs a pinned workload matrix — chain/star/clique × DPsize, DPccp,
//! DPconv and DPsub at each configured thread count — and records, per
//! cell,
//! the paper's counters, the DP-table and arena footprint, the optimal
//! cost's exact bit pattern, the median-of-k wall time and the parallel
//! engine's worker utilization. The result serializes to
//! `BENCH_joinopt.json` (schema `joinopt-perf-v1`, documented in
//! `docs/observability.md`) and [`PerfBaseline::check`] diffs a fresh
//! run against a committed baseline:
//!
//! * **counters, table entries and cost bits are exact** — they are
//!   deterministic functions of the workload, so *any* drift is a
//!   regression (or an intended change that must re-pin the baseline);
//! * **arena bytes are exact in full mode** — deterministic too, but
//!   only meaningful when both sides ran the same engine path;
//! * **wall time is noise-gated in full mode** — a cell fails only when
//!   it is slower than `baseline × (1 + noise)`;
//! * **counters-only mode skips both time and bytes**, making the check
//!   hardware-independent — this is the CI smoke gate.

use joinopt_core::{Algorithm, OptimizeRequest};
use joinopt_cost::workload::family_workload;
use joinopt_qgraph::GraphKind;
use joinopt_telemetry::json::{write_escaped, write_f64, JsonValue};
use joinopt_telemetry::{Fanout, MetricsCollector, NoopObserver, Observer};

/// The pinned graph families of the matrix (the paper's structural
/// extremes: sparsest, star-shaped, densest).
pub const PERF_FAMILIES: [GraphKind; 3] = [GraphKind::Chain, GraphKind::Star, GraphKind::Clique];

/// Current baseline schema identifier.
pub const SCHEMA: &str = "joinopt-perf-v1";

/// Configuration of a perf-baseline run — embedded in the baseline
/// file, so `--check` replays exactly what was pinned.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfConfig {
    /// Relations per query (one fixed size keeps the run fast).
    pub n: usize,
    /// Repetitions per cell; the recorded wall time is the median and
    /// the counters must be identical across all of them.
    pub reps: usize,
    /// Workload seed.
    pub seed: u64,
    /// Thread counts the DPsub engine cells run at.
    pub threads: Vec<usize>,
    /// Allowed relative wall-time regression in full-mode checks
    /// (0.5 = 50% slower still passes).
    pub noise: f64,
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig {
            n: 10,
            reps: 5,
            seed: 2006,
            threads: vec![1, 2, 4],
            noise: 0.5,
        }
    }
}

/// One measured cell of the matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfCell {
    /// Graph family name (`"chain"`, `"star"`, `"clique"`).
    pub family: String,
    /// Algorithm name (`"DPsize"`, `"DPsub"`, `"DPccp"`).
    pub algorithm: String,
    /// Worker threads the cell ran with.
    pub threads: usize,
    /// `InnerCounter`.
    pub inner: u64,
    /// `CsgCmpPairCounter`.
    pub csg_cmp_pairs: u64,
    /// `OnoLohmanCounter`.
    pub ono_lohman: u64,
    /// Final DP-table size.
    pub table_entries: u64,
    /// Plan-arena bytes.
    pub arena_bytes: u64,
    /// Exact IEEE-754 bit pattern of the optimal plan's cost.
    pub cost_bits: u64,
    /// Median wall time across the configured repetitions.
    pub wall_ns: u64,
    /// Run-wide worker utilization of the median rep. `None` for
    /// sequential algorithms, which synchronize no worker levels —
    /// utilization is not a property of those runs (omitted from the
    /// JSON, rendered as `-` in the table).
    pub utilization: Option<f64>,
}

impl PerfCell {
    fn key(&self) -> (String, String, usize) {
        (self.family.clone(), self.algorithm.clone(), self.threads)
    }
}

/// A complete baseline: the config that produced it plus every cell.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfBaseline {
    /// The matrix configuration (replayed by `--check`).
    pub config: PerfConfig,
    /// Cells in matrix order: family-major, then algorithm/threads.
    pub cells: Vec<PerfCell>,
}

/// The cells of the matrix for `config`, in deterministic order.
fn matrix(config: &PerfConfig) -> Vec<(GraphKind, Algorithm, &'static str, usize)> {
    let mut cells = Vec::new();
    for kind in PERF_FAMILIES {
        cells.push((kind, Algorithm::DpSize, "DPsize", 1));
        cells.push((kind, Algorithm::DpCcp, "DPccp", 1));
        // DPconv rides the same workloads (the default model is C_out,
        // the only one it accepts); the clique cell against DPccp's is
        // the committed crossover evidence for `select_auto`.
        cells.push((kind, Algorithm::DpConv, "DPconv", 1));
        for &t in &config.threads {
            cells.push((kind, Algorithm::DpSub, "DPsub", t.max(1)));
        }
    }
    cells
}

/// Runs the full matrix and returns the measured baseline.
///
/// # Errors
///
/// Returns a message when a cell's optimizer run fails or its counters
/// are not bit-stable across the configured repetitions (which would
/// mean the determinism contract is broken — a real bug).
pub fn run_matrix(config: &PerfConfig) -> Result<PerfBaseline, String> {
    run_matrix_observed(config, &NoopObserver)
}

/// [`run_matrix`] with telemetry: every cell's run additionally reports
/// to `obs` (the internal metrics collector that measures the cells is
/// unaffected), so `joinopt perf --trace-json/--prom` can stream or
/// aggregate a whole matrix run.
///
/// # Errors
///
/// Same as [`run_matrix`].
pub fn run_matrix_observed(
    config: &PerfConfig,
    obs: &dyn Observer,
) -> Result<PerfBaseline, String> {
    let reps = config.reps.max(1);
    let mut cells = Vec::new();
    for (kind, alg, alg_name, threads) in matrix(config) {
        let w = family_workload(kind, config.n, config.seed);
        let mut walls: Vec<u64> = Vec::with_capacity(reps);
        let mut pinned: Option<PerfCell> = None;
        for rep in 0..reps {
            let collector = MetricsCollector::new();
            let fanout = Fanout::new(vec![&collector as &dyn Observer, obs]);
            let outcome = OptimizeRequest::new(&w.graph, &w.catalog)
                .with_algorithm(alg)
                .with_threads(threads)
                .with_observer(&fanout)
                .run()
                .map_err(|e| format!("{} {alg_name} t={threads}: {e}", kind.name()))?;
            let report = collector.report();
            let result = outcome.into_result();
            let cell = PerfCell {
                family: kind.name().to_string(),
                algorithm: alg_name.to_string(),
                threads,
                inner: result.counters.inner,
                csg_cmp_pairs: result.counters.csg_cmp_pairs,
                ono_lohman: result.counters.ono_lohman,
                table_entries: result.table_size as u64,
                arena_bytes: report.arena_bytes as u64,
                cost_bits: result.cost.to_bits(),
                wall_ns: report.total_ns,
                utilization: report.worker_utilization(),
            };
            walls.push(report.total_ns);
            match &pinned {
                None => pinned = Some(cell),
                Some(first) => {
                    // Everything but the timing-derived fields must be
                    // bit-stable across repetitions.
                    let same = first.inner == cell.inner
                        && first.csg_cmp_pairs == cell.csg_cmp_pairs
                        && first.ono_lohman == cell.ono_lohman
                        && first.table_entries == cell.table_entries
                        && first.arena_bytes == cell.arena_bytes
                        && first.cost_bits == cell.cost_bits;
                    if !same {
                        return Err(format!(
                            "{} {alg_name} t={threads}: counters unstable at rep {rep} \
                             (determinism contract broken)",
                            kind.name()
                        ));
                    }
                }
            }
        }
        let mut cell = pinned.unwrap_or_default();
        walls.sort_unstable();
        cell.wall_ns = walls[walls.len() / 2];
        cells.push(cell);
    }
    Ok(PerfBaseline {
        config: config.clone(),
        cells,
    })
}

impl Default for PerfCell {
    fn default() -> Self {
        PerfCell {
            family: String::new(),
            algorithm: String::new(),
            threads: 1,
            inner: 0,
            csg_cmp_pairs: 0,
            ono_lohman: 0,
            table_entries: 0,
            arena_bytes: 0,
            cost_bits: 0,
            wall_ns: 0,
            utilization: None,
        }
    }
}

impl PerfBaseline {
    /// Serializes the baseline as pretty-stable JSON (one cell per
    /// line). `cost_bits` is written as a hex *string* because the
    /// dependency-free JSON parser goes through `f64` and would corrupt
    /// bit patterns above 2⁵³.
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let mut s = String::from("{\n  \"schema\": ");
        write_escaped(&mut s, SCHEMA);
        s.push_str(&format!(
            ",\n  \"config\": {{\"n\": {}, \"reps\": {}, \"seed\": {}, \"threads\": [{}], \"noise\": ",
            c.n,
            c.reps,
            c.seed,
            c.threads
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        ));
        write_f64(&mut s, c.noise);
        s.push_str("},\n  \"cells\": [\n");
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                s.push_str(",\n");
            }
            s.push_str("    {\"family\": ");
            write_escaped(&mut s, &cell.family);
            s.push_str(", \"algorithm\": ");
            write_escaped(&mut s, &cell.algorithm);
            s.push_str(&format!(
                ", \"threads\": {}, \"inner\": {}, \"csg_cmp_pairs\": {}, \"ono_lohman\": {}, \
                 \"table_entries\": {}, \"arena_bytes\": {}, \"cost_bits\": \"{:016x}\", \
                 \"wall_ns\": {}",
                cell.threads,
                cell.inner,
                cell.csg_cmp_pairs,
                cell.ono_lohman,
                cell.table_entries,
                cell.arena_bytes,
                cell.cost_bits,
                cell.wall_ns
            ));
            if let Some(utilization) = cell.utilization {
                s.push_str(", \"utilization\": ");
                write_f64(&mut s, utilization);
            }
            s.push('}');
        }
        s.push_str("\n  ]\n}\n");
        s
    }

    /// Parses a baseline file produced by [`PerfBaseline::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON, a wrong schema tag, or a
    /// missing/mistyped field.
    pub fn parse(text: &str) -> Result<PerfBaseline, String> {
        let v = JsonValue::parse(text).map_err(|e| format!("baseline: {e}"))?;
        let schema = v
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or("baseline: missing \"schema\"")?;
        if schema != SCHEMA {
            return Err(format!("baseline: schema {schema:?}, expected {SCHEMA:?}"));
        }
        let cfg = v.get("config").ok_or("baseline: missing \"config\"")?;
        let field_u64 = |obj: &JsonValue, name: &str| -> Result<u64, String> {
            obj.get(name)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("baseline: missing field {name:?}"))
        };
        let config = PerfConfig {
            n: field_u64(cfg, "n")? as usize,
            reps: field_u64(cfg, "reps")? as usize,
            seed: field_u64(cfg, "seed")?,
            threads: cfg
                .get("threads")
                .and_then(JsonValue::as_array)
                .ok_or("baseline: missing \"threads\"")?
                .iter()
                .map(|t| t.as_u64().map(|t| t as usize))
                .collect::<Option<Vec<_>>>()
                .ok_or("baseline: non-integer thread count")?,
            noise: cfg
                .get("noise")
                .and_then(JsonValue::as_f64)
                .ok_or("baseline: missing \"noise\"")?,
        };
        let mut cells = Vec::new();
        for cell in v
            .get("cells")
            .and_then(JsonValue::as_array)
            .ok_or("baseline: missing \"cells\"")?
        {
            let text_field = |name: &str| -> Result<String, String> {
                cell.get(name)
                    .and_then(JsonValue::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("baseline: missing field {name:?}"))
            };
            let bits_hex = text_field("cost_bits")?;
            cells.push(PerfCell {
                family: text_field("family")?,
                algorithm: text_field("algorithm")?,
                threads: field_u64(cell, "threads")? as usize,
                inner: field_u64(cell, "inner")?,
                csg_cmp_pairs: field_u64(cell, "csg_cmp_pairs")?,
                ono_lohman: field_u64(cell, "ono_lohman")?,
                table_entries: field_u64(cell, "table_entries")?,
                arena_bytes: field_u64(cell, "arena_bytes")?,
                cost_bits: u64::from_str_radix(bits_hex.trim_start_matches("0x"), 16)
                    .map_err(|e| format!("baseline: bad cost_bits {bits_hex:?}: {e}"))?,
                wall_ns: field_u64(cell, "wall_ns")?,
                // Optional: sequential cells have no utilization.
                utilization: cell.get("utilization").and_then(JsonValue::as_f64),
            });
        }
        Ok(PerfBaseline { config, cells })
    }

    /// Diffs `self` (a fresh run) against `baseline`.
    ///
    /// Counters, table entries and cost bits must match exactly. In
    /// full mode (`counters_only == false`) arena bytes must match too
    /// and each cell's wall time may exceed the baseline's by at most
    /// the baseline's configured noise factor. Missing or extra cells
    /// are failures in both modes.
    ///
    /// # Errors
    ///
    /// Returns one human-readable line per failed comparison.
    pub fn check(&self, baseline: &PerfBaseline, counters_only: bool) -> Result<(), Vec<String>> {
        let mut diffs = Vec::new();
        for base in &baseline.cells {
            let Some(cur) = self.cells.iter().find(|c| c.key() == base.key()) else {
                diffs.push(format!(
                    "{}/{} t={}: cell missing from this run",
                    base.family, base.algorithm, base.threads
                ));
                continue;
            };
            let label = format!("{}/{} t={}", base.family, base.algorithm, base.threads);
            let exact: [(&str, u64, u64); 5] = [
                ("inner", cur.inner, base.inner),
                ("csg_cmp_pairs", cur.csg_cmp_pairs, base.csg_cmp_pairs),
                ("ono_lohman", cur.ono_lohman, base.ono_lohman),
                ("table_entries", cur.table_entries, base.table_entries),
                ("cost_bits", cur.cost_bits, base.cost_bits),
            ];
            for (name, got, want) in exact {
                if got != want {
                    diffs.push(format!(
                        "{label}: {name} regressed: {got} != baseline {want}"
                    ));
                }
            }
            if !counters_only {
                if cur.arena_bytes != base.arena_bytes {
                    diffs.push(format!(
                        "{label}: arena_bytes changed: {} != baseline {}",
                        cur.arena_bytes, base.arena_bytes
                    ));
                }
                let limit = base.wall_ns as f64 * (1.0 + baseline.config.noise);
                if cur.wall_ns as f64 > limit {
                    diffs.push(format!(
                        "{label}: wall time regressed: {} ns > {:.0} ns \
                         (baseline {} ns + {:.0}% noise)",
                        cur.wall_ns,
                        limit,
                        base.wall_ns,
                        100.0 * baseline.config.noise
                    ));
                }
            }
        }
        for cur in &self.cells {
            if !baseline.cells.iter().any(|b| b.key() == cur.key()) {
                diffs.push(format!(
                    "{}/{} t={}: cell not present in the baseline",
                    cur.family, cur.algorithm, cur.threads
                ));
            }
        }
        if diffs.is_empty() {
            Ok(())
        } else {
            Err(diffs)
        }
    }

    /// A rendered summary table (family, algorithm, threads, counters,
    /// wall time, utilization), for human consumption.
    pub fn render_table(&self) -> String {
        let mut t = crate::Table::new(vec![
            "family",
            "algorithm",
            "threads",
            "inner",
            "ccp",
            "table",
            "arena_bytes",
            "wall",
            "util",
        ]);
        for c in &self.cells {
            t.row(vec![
                c.family.clone(),
                c.algorithm.clone(),
                c.threads.to_string(),
                c.inner.to_string(),
                c.csg_cmp_pairs.to_string(),
                c.table_entries.to_string(),
                c.arena_bytes.to_string(),
                crate::format_seconds(c.wall_ns as f64 / 1e9),
                match c.utilization {
                    Some(u) => format!("{u:.2}"),
                    None => "-".to_string(),
                },
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> PerfConfig {
        PerfConfig {
            n: 7,
            reps: 2,
            seed: 2006,
            threads: vec![1, 2],
            noise: 0.5,
        }
    }

    #[test]
    fn matrix_shape_is_family_major() {
        let cells = matrix(&small_config());
        // 3 families × (DPsize + DPccp + DPconv + 2 DPsub threads).
        assert_eq!(cells.len(), 15);
        assert_eq!(cells[0].2, "DPsize");
        assert_eq!(cells[1].2, "DPccp");
        assert_eq!(cells[2].2, "DPconv");
        assert_eq!((cells[3].2, cells[3].3), ("DPsub", 1));
        assert_eq!((cells[4].2, cells[4].3), ("DPsub", 2));
    }

    #[test]
    fn counters_are_bit_stable_across_runs_and_threads() {
        let config = small_config();
        let a = run_matrix(&config).unwrap();
        let b = run_matrix(&config).unwrap();
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.key(), y.key());
            assert_eq!(x.inner, y.inner, "{:?}", x.key());
            assert_eq!(x.cost_bits, y.cost_bits, "{:?}", x.key());
            assert_eq!(x.arena_bytes, y.arena_bytes, "{:?}", x.key());
        }
        // DPsub cells agree across thread counts on everything
        // deterministic (the engine's bit-identity contract).
        for family in ["chain", "star", "clique"] {
            let dpsub: Vec<&PerfCell> = a
                .cells
                .iter()
                .filter(|c| c.family == family && c.algorithm == "DPsub")
                .collect();
            assert_eq!(dpsub.len(), 2);
            assert_eq!(dpsub[0].inner, dpsub[1].inner);
            assert_eq!(dpsub[0].cost_bits, dpsub[1].cost_bits);
            assert_eq!(dpsub[0].table_entries, dpsub[1].table_entries);
            assert_eq!(dpsub[0].arena_bytes, dpsub[1].arena_bytes);
        }
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let baseline = run_matrix(&small_config()).unwrap();
        let text = baseline.to_json();
        let parsed = PerfBaseline::parse(&text).unwrap();
        assert_eq!(parsed, baseline);
        // And a check against itself passes in both modes.
        baseline.check(&baseline, true).unwrap();
        baseline.check(&baseline, false).unwrap();
    }

    #[test]
    fn check_catches_counter_regressions_and_shape_drift() {
        let baseline = run_matrix(&small_config()).unwrap();
        let mut bad = baseline.clone();
        bad.cells[0].inner += 1;
        let diffs = bad.check(&baseline, true).unwrap_err();
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].contains("inner regressed"), "{}", diffs[0]);

        let mut missing = baseline.clone();
        let dropped = missing.cells.pop().unwrap();
        let diffs = missing.check(&baseline, true).unwrap_err();
        assert!(diffs[0].contains("missing from this run"));
        assert!(diffs[0].contains(&dropped.family));

        // Wall-time regressions only matter in full mode.
        let mut slow = baseline.clone();
        slow.cells[0].wall_ns = baseline.cells[0].wall_ns * 1000 + 1_000_000_000;
        slow.check(&baseline, true).unwrap();
        let diffs = slow.check(&baseline, false).unwrap_err();
        assert!(diffs[0].contains("wall time regressed"), "{}", diffs[0]);
    }

    #[test]
    fn sequential_cells_omit_utilization() {
        // Regression: sequential algorithms synchronize no worker
        // levels, so their cells must carry *no* utilization figure —
        // not a fabricated 1.0 — and the JSON must omit the key while
        // still round-tripping.
        let baseline = run_matrix(&PerfConfig {
            n: 6,
            reps: 1,
            seed: 2006,
            threads: vec![2],
            noise: 0.5,
        })
        .unwrap();
        for cell in &baseline.cells {
            if cell.algorithm == "DPsub" {
                assert!(cell.utilization.is_some(), "{:?}", cell.key());
            } else {
                assert_eq!(cell.utilization, None, "{:?}", cell.key());
            }
        }
        let parsed = PerfBaseline::parse(&baseline.to_json()).unwrap();
        assert_eq!(parsed, baseline);
        // The table renders `-` in the util column of sequential rows.
        let table = baseline.render_table();
        for line in table.lines().filter(|l| l.contains("DPsize")) {
            assert_eq!(line.trim_end().rsplit(' ').next(), Some("-"), "{line}");
        }
    }

    #[test]
    fn observed_matrix_reports_runs_without_changing_cells() {
        use joinopt_telemetry::{MetricsRegistry, RegistryObserver};
        let config = PerfConfig {
            n: 6,
            reps: 1,
            seed: 2006,
            threads: vec![1],
            noise: 0.5,
        };
        let registry = MetricsRegistry::new();
        let obs = RegistryObserver::new(&registry);
        let observed = run_matrix_observed(&config, &obs).unwrap();
        let plain = run_matrix(&config).unwrap();
        // The external observer sees every cell run...
        let snap = registry.snapshot();
        let runs: u64 = ["DPsize", "DPccp", "DPconv", "DPsub"]
            .iter()
            .filter_map(|alg| snap.counter("joinopt_runs_total", &[("algorithm", alg)]))
            .sum();
        assert_eq!(runs as usize, observed.cells.len());
        // ...and the measured cells are identical to an unobserved run
        // on everything deterministic.
        for (a, b) in observed.cells.iter().zip(&plain.cells) {
            assert_eq!(a.key(), b.key());
            assert_eq!(a.inner, b.inner);
            assert_eq!(a.cost_bits, b.cost_bits);
            assert_eq!(a.arena_bytes, b.arena_bytes);
        }
    }

    #[test]
    fn parse_rejects_wrong_schema_and_garbage() {
        assert!(PerfBaseline::parse("not json").is_err());
        let err = PerfBaseline::parse("{\"schema\": \"other-v9\", \"config\": {}, \"cells\": []}")
            .unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn render_table_mentions_every_cell() {
        let baseline = run_matrix(&PerfConfig {
            n: 6,
            reps: 1,
            seed: 2006,
            threads: vec![1],
            noise: 0.5,
        })
        .unwrap();
        let table = baseline.render_table();
        assert!(table.contains("chain"));
        assert!(table.contains("clique"));
        assert!(table.contains("DPsub"));
    }
}
