//! A minimal, dependency-free microbenchmark runner for the
//! `[[bench]]` targets (`harness = false`).
//!
//! Each benchmark is a closure timed over batches: a short warm-up,
//! then batches of iterations sized so one batch takes roughly a
//! millisecond, repeated until the measurement budget is spent. The
//! median batch gives ns/iter; min and max batches bound the spread.
//!
//! Filters work like the standard harness: `cargo bench -- substring`
//! runs only benchmarks whose full name contains `substring`.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Re-exported so bench targets don't need their own `std::hint` import.
pub use std::hint::black_box as bb;

/// One timed benchmark result.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Full benchmark name (`group/function`).
    pub name: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest batch, ns/iter.
    pub min_ns: f64,
    /// Slowest batch, ns/iter.
    pub max_ns: f64,
    /// Total iterations executed during measurement.
    pub iters: u64,
}

/// Collects benchmarks, applies CLI filters, prints a report.
pub struct Runner {
    filters: Vec<String>,
    budget: Duration,
    samples: Vec<Sample>,
}

impl Default for Runner {
    fn default() -> Self {
        Runner::from_args(std::env::args().skip(1))
    }
}

impl Runner {
    /// Builds a runner from CLI-style arguments (filters; `--quick`
    /// shrinks the per-benchmark budget).
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Runner {
        let mut filters = Vec::new();
        let mut budget = Duration::from_millis(300);
        for a in args {
            match a.as_str() {
                "--quick" => budget = Duration::from_millis(50),
                "--bench" | "--test" => {} // flags cargo may pass through
                _ if a.starts_with("--") => {}
                _ => filters.push(a),
            }
        }
        Runner {
            filters,
            budget,
            samples: Vec::new(),
        }
    }

    fn selected(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f))
    }

    /// Times `f`, labeled `group/func`, unless filtered out.
    pub fn bench<R, F: FnMut() -> R>(&mut self, group: &str, func: &str, mut f: F) {
        let name = format!("{group}/{func}");
        if !self.selected(&name) {
            return;
        }
        // Warm up and size a batch to ~1 ms.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let t = start.elapsed();
            if t >= Duration::from_millis(1) || batch >= 1 << 30 {
                break;
            }
            // Grow geometrically, aiming just past the millisecond.
            let grow = (Duration::from_millis(1).as_nanos() as u64)
                .checked_div(t.as_nanos().max(1) as u64)
                .unwrap_or(2)
                .clamp(2, 1024);
            batch = batch.saturating_mul(grow);
        }
        let mut batches: Vec<f64> = Vec::new();
        let mut iters = 0u64;
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline || batches.len() < 3 {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let t = start.elapsed();
            batches.push(t.as_nanos() as f64 / batch as f64);
            iters += batch;
            if batches.len() >= 10_000 {
                break;
            }
        }
        batches.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let sample = Sample {
            name,
            median_ns: batches[batches.len() / 2],
            min_ns: batches[0],
            max_ns: batches[batches.len() - 1],
            iters,
        };
        println!(
            "{:<55} {:>12}/iter  (min {}, max {})",
            sample.name,
            fmt_ns(sample.median_ns),
            fmt_ns(sample.min_ns),
            fmt_ns(sample.max_ns),
        );
        self.samples.push(sample);
    }

    /// Finishes the run, printing a footer; returns all samples.
    pub fn finish(self) -> Vec<Sample> {
        println!("\n{} benchmarks run", self.samples.len());
        self.samples
    }
}

/// Formats nanoseconds with a magnitude-appropriate unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filters_select_by_substring() {
        let r = Runner::from_args(vec!["chain".to_string()]);
        assert!(r.selected("figure8_chain/DPsize"));
        assert!(!r.selected("figure10_star/DPsize"));
        let all = Runner::from_args(Vec::new());
        assert!(all.selected("anything"));
    }

    #[test]
    fn bench_produces_a_sample() {
        let mut r = Runner::from_args(vec!["--quick".to_string()]);
        let mut x = 0u64;
        r.bench("g", "f", || {
            x = x.wrapping_add(1);
            x
        });
        let samples = r.finish();
        assert_eq!(samples.len(), 1);
        assert!(samples[0].median_ns > 0.0);
        assert!(samples[0].min_ns <= samples[0].median_ns);
        assert!(samples[0].median_ns <= samples[0].max_ns);
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(12.3), "12.3 ns");
        assert_eq!(fmt_ns(4_500.0), "4.50 µs");
        assert_eq!(fmt_ns(7_800_000.0), "7.80 ms");
        assert_eq!(fmt_ns(2.5e9), "2.500 s");
    }
}
