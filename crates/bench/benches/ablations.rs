//! Ablation benchmarks for the design choices called out in DESIGN.md
//! (in-repo harness — no external benchmark framework):
//!
//! * DPsize optimized vs literal Fig. 1 pseudocode (`s₁ = s₂` dedup);
//! * DPsub with vs without the `*` connectedness pre-check;
//! * cross-product search space (Vance/Maier) vs connected-only;
//! * greedy (GOO) vs exact DP;
//! * cost-model overhead (C_out vs min-over-physical-operators).

use joinopt_bench::microbench::Runner;
use joinopt_core::greedy::Goo;
use joinopt_core::{
    DpCcp, DpHyp, DpSize, DpSizeLeftDeep, DpSizeNaive, DpSub, DpSubCrossProducts, DpSubUnfiltered,
    JoinOrderer, TopDown,
};
use joinopt_cost::{workload::family_workload, Cout, MinOverPhysical};
use joinopt_qgraph::hypergraph::Hypergraph;
use joinopt_qgraph::GraphKind;
use std::hint::black_box;

fn bench_pair(
    r: &mut Runner,
    group_name: &str,
    kind: GraphKind,
    n: usize,
    algs: &[&dyn JoinOrderer],
) {
    let w = family_workload(kind, n, 7);
    for alg in algs {
        r.bench(group_name, &format!("{}/{n}", alg.name()), || {
            let res = alg
                .optimize(black_box(&w.graph), &w.catalog, &Cout)
                .expect("valid workload");
            black_box(res.cost)
        });
    }
}

fn dpsize_pair_dedup(r: &mut Runner) {
    // The s₁ = s₂ optimization halves equal-size pair probes.
    bench_pair(
        r,
        "ablation_dpsize_dedup_chain",
        GraphKind::Chain,
        14,
        &[&DpSize, &DpSizeNaive],
    );
    bench_pair(
        r,
        "ablation_dpsize_dedup_clique",
        GraphKind::Clique,
        10,
        &[&DpSize, &DpSizeNaive],
    );
}

fn dpsub_connectedness_filter(r: &mut Runner) {
    // The `*` check skips the inner loop for disconnected outer sets —
    // a large win on chains, a no-op on cliques.
    bench_pair(
        r,
        "ablation_dpsub_filter_chain",
        GraphKind::Chain,
        14,
        &[&DpSub, &DpSubUnfiltered],
    );
    bench_pair(
        r,
        "ablation_dpsub_filter_clique",
        GraphKind::Clique,
        10,
        &[&DpSub, &DpSubUnfiltered],
    );
}

fn cross_products_search_space(r: &mut Runner) {
    // Excluding cross products shrinks the chain search space from 3ⁿ to
    // O(n³)-ish pairs (the paper's Section 1 motivation).
    bench_pair(
        r,
        "ablation_cross_products_chain",
        GraphKind::Chain,
        12,
        &[&DpCcp, &DpSubCrossProducts],
    );
}

fn greedy_vs_exact(r: &mut Runner) {
    bench_pair(
        r,
        "ablation_greedy_vs_exact_star",
        GraphKind::Star,
        12,
        &[&Goo, &DpCcp],
    );
}

fn cost_model_overhead(r: &mut Runner) {
    let w = family_workload(GraphKind::Star, 12, 7);
    r.bench("ablation_cost_model", "DPccp/Cout", || {
        black_box(
            DpCcp
                .optimize(black_box(&w.graph), &w.catalog, &Cout)
                .unwrap()
                .cost,
        )
    });
    r.bench("ablation_cost_model", "DPccp/MinOverPhysical", || {
        black_box(
            DpCcp
                .optimize(black_box(&w.graph), &w.catalog, &MinOverPhysical)
                .unwrap()
                .cost,
        )
    });
}

fn leftdeep_vs_bushy(r: &mut Runner) {
    bench_pair(
        r,
        "ablation_leftdeep_vs_bushy_cycle",
        GraphKind::Cycle,
        14,
        &[&DpSizeLeftDeep, &DpCcp],
    );
}

fn dphyp_generality_overhead(r: &mut Runner) {
    // DPhyp run on a lifted simple graph enumerates exactly the same
    // pairs as DPccp; the delta is the price of hypergraph generality.
    for kind in [GraphKind::Chain, GraphKind::Star] {
        let n = 13;
        let w = family_workload(kind, n, 7);
        let h = Hypergraph::from_query_graph(&w.graph);
        r.bench(
            "ablation_dphyp_overhead",
            &format!("DPccp/{}{n}", kind.name()),
            || {
                black_box(
                    DpCcp
                        .optimize(black_box(&w.graph), &w.catalog, &Cout)
                        .unwrap()
                        .cost,
                )
            },
        );
        r.bench(
            "ablation_dphyp_overhead",
            &format!("DPhyp/{}{n}", kind.name()),
            || {
                black_box(
                    DpHyp
                        .optimize(black_box(&h), &w.catalog, &Cout)
                        .unwrap()
                        .cost,
                )
            },
        );
    }
}

fn topdown_pruning(r: &mut Runner) {
    // Branch-and-bound pruning vs exhaustive memoized top-down, and both
    // vs DPccp (the bottom-up reference over the same pair space).
    static WITH: TopDown = TopDown { pruning: true };
    static WITHOUT: TopDown = TopDown { pruning: false };
    bench_pair(
        r,
        "ablation_topdown_pruning_chain",
        GraphKind::Chain,
        14,
        &[&WITH, &WITHOUT, &DpCcp],
    );
    bench_pair(
        r,
        "ablation_topdown_pruning_star",
        GraphKind::Star,
        12,
        &[&WITH, &WITHOUT, &DpCcp],
    );
}

fn main() {
    let mut r = Runner::default();
    dpsize_pair_dedup(&mut r);
    dpsub_connectedness_filter(&mut r);
    cross_products_search_space(&mut r);
    greedy_vs_exact(&mut r);
    cost_model_overhead(&mut r);
    leftdeep_vs_bushy(&mut r);
    dphyp_generality_overhead(&mut r);
    topdown_pruning(&mut r);
    r.finish();
}
