//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * DPsize optimized vs literal Fig. 1 pseudocode (`s₁ = s₂` dedup);
//! * DPsub with vs without the `*` connectedness pre-check;
//! * cross-product search space (Vance/Maier) vs connected-only;
//! * greedy (GOO) vs exact DP;
//! * cost-model overhead (C_out vs min-over-physical-operators).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use joinopt_core::greedy::Goo;
use joinopt_core::{
    DpCcp, DpHyp, DpSize, DpSizeLeftDeep, DpSizeNaive, DpSub, DpSubCrossProducts,
    DpSubUnfiltered, JoinOrderer, TopDown,
};
use joinopt_qgraph::hypergraph::Hypergraph;
use joinopt_cost::{workload::family_workload, Cout, MinOverPhysical};
use joinopt_qgraph::GraphKind;
use std::hint::black_box;

fn bench_pair(
    c: &mut Criterion,
    group_name: &str,
    kind: GraphKind,
    n: usize,
    algs: &[&dyn JoinOrderer],
) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    let w = family_workload(kind, n, 7);
    for alg in algs {
        group.bench_with_input(BenchmarkId::new(alg.name(), n), &n, |b, _| {
            b.iter(|| {
                let r = alg
                    .optimize(black_box(&w.graph), &w.catalog, &Cout)
                    .expect("valid workload");
                black_box(r.cost)
            })
        });
    }
    group.finish();
}

fn dpsize_pair_dedup(c: &mut Criterion) {
    // The s₁ = s₂ optimization halves equal-size pair probes.
    bench_pair(
        c,
        "ablation_dpsize_dedup_chain",
        GraphKind::Chain,
        14,
        &[&DpSize, &DpSizeNaive],
    );
    bench_pair(
        c,
        "ablation_dpsize_dedup_clique",
        GraphKind::Clique,
        10,
        &[&DpSize, &DpSizeNaive],
    );
}

fn dpsub_connectedness_filter(c: &mut Criterion) {
    // The `*` check skips the inner loop for disconnected outer sets —
    // a large win on chains, a no-op on cliques.
    bench_pair(
        c,
        "ablation_dpsub_filter_chain",
        GraphKind::Chain,
        14,
        &[&DpSub, &DpSubUnfiltered],
    );
    bench_pair(
        c,
        "ablation_dpsub_filter_clique",
        GraphKind::Clique,
        10,
        &[&DpSub, &DpSubUnfiltered],
    );
}

fn cross_products_search_space(c: &mut Criterion) {
    // Excluding cross products shrinks the chain search space from 3ⁿ to
    // O(n³)-ish pairs (the paper's Section 1 motivation).
    bench_pair(
        c,
        "ablation_cross_products_chain",
        GraphKind::Chain,
        12,
        &[&DpCcp, &DpSubCrossProducts],
    );
}

fn greedy_vs_exact(c: &mut Criterion) {
    bench_pair(
        c,
        "ablation_greedy_vs_exact_star",
        GraphKind::Star,
        12,
        &[&Goo, &DpCcp],
    );
}

fn cost_model_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_cost_model");
    group.sample_size(10);
    let w = family_workload(GraphKind::Star, 12, 7);
    group.bench_function("DPccp/Cout", |b| {
        b.iter(|| {
            black_box(DpCcp.optimize(black_box(&w.graph), &w.catalog, &Cout).unwrap().cost)
        })
    });
    group.bench_function("DPccp/MinOverPhysical", |b| {
        b.iter(|| {
            black_box(
                DpCcp
                    .optimize(black_box(&w.graph), &w.catalog, &MinOverPhysical)
                    .unwrap()
                    .cost,
            )
        })
    });
    group.finish();
}

fn leftdeep_vs_bushy(c: &mut Criterion) {
    bench_pair(
        c,
        "ablation_leftdeep_vs_bushy_cycle",
        GraphKind::Cycle,
        14,
        &[&DpSizeLeftDeep, &DpCcp],
    );
}

fn dphyp_generality_overhead(c: &mut Criterion) {
    // DPhyp run on a lifted simple graph enumerates exactly the same
    // pairs as DPccp; the delta is the price of hypergraph generality.
    let mut group = c.benchmark_group("ablation_dphyp_overhead");
    group.sample_size(10);
    for kind in [GraphKind::Chain, GraphKind::Star] {
        let n = 13;
        let w = family_workload(kind, n, 7);
        let h = Hypergraph::from_query_graph(&w.graph);
        group.bench_function(format!("DPccp/{}{n}", kind.name()), |b| {
            b.iter(|| {
                black_box(DpCcp.optimize(black_box(&w.graph), &w.catalog, &Cout).unwrap().cost)
            })
        });
        group.bench_function(format!("DPhyp/{}{n}", kind.name()), |b| {
            b.iter(|| {
                black_box(DpHyp.optimize(black_box(&h), &w.catalog, &Cout).unwrap().cost)
            })
        });
    }
    group.finish();
}

fn topdown_pruning(c: &mut Criterion) {
    // Branch-and-bound pruning vs exhaustive memoized top-down, and both
    // vs DPccp (the bottom-up reference over the same pair space).
    static WITH: TopDown = TopDown { pruning: true };
    static WITHOUT: TopDown = TopDown { pruning: false };
    bench_pair(
        c,
        "ablation_topdown_pruning_chain",
        GraphKind::Chain,
        14,
        &[&WITH, &WITHOUT, &DpCcp],
    );
    bench_pair(
        c,
        "ablation_topdown_pruning_star",
        GraphKind::Star,
        12,
        &[&WITH, &WITHOUT, &DpCcp],
    );
}

criterion_group!(
    benches,
    dpsize_pair_dedup,
    dpsub_connectedness_filter,
    cross_products_search_space,
    greedy_vs_exact,
    cost_model_overhead,
    leftdeep_vs_bushy,
    dphyp_generality_overhead,
    topdown_pruning
);
criterion_main!(benches);
