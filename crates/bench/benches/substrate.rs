//! Microbenchmarks of the substrate the algorithms are built on:
//! subset stepping, connected-subgraph enumeration, set connectivity
//! tests and cardinality estimation. These are the constant factors
//! behind every DP iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use joinopt_cost::{workload::family_workload, CardinalityEstimator};
use joinopt_qgraph::{csg, generators, GraphKind};
use joinopt_relset::RelSet;
use std::hint::black_box;

fn subset_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_subsets");
    let set = RelSet::full(16);
    group.bench_function("vance_maier_2^16", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for s in black_box(set).subsets() {
                acc ^= s.bits();
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn csg_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_csg");
    group.sample_size(10);
    for kind in GraphKind::ALL {
        let n = if kind == GraphKind::Clique { 14 } else { 16 };
        let g = generators::generate(kind, n);
        group.bench_function(format!("enumerate_csg_{}_{n}", kind.name()), |b| {
            b.iter(|| black_box(csg::count_csg(black_box(&g))))
        });
        group.bench_function(format!("enumerate_ccp_{}_{n}", kind.name()), |b| {
            b.iter(|| black_box(csg::count_ccp_distinct(black_box(&g))))
        });
    }
    group.finish();
}

fn connectivity_tests(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_connectivity");
    let g = generators::generate(GraphKind::Cycle, 20);
    let connected = RelSet::from_indices(5..=14);
    let disconnected = RelSet::from_indices([0, 2, 4, 6, 8, 10]);
    group.bench_function("is_connected_set/connected_arc", |b| {
        b.iter(|| black_box(g.is_connected_set(black_box(connected))))
    });
    group.bench_function("is_connected_set/scattered", |b| {
        b.iter(|| black_box(g.is_connected_set(black_box(disconnected))))
    });
    let left = RelSet::from_indices(0..=9);
    let right = RelSet::from_indices(10..=19);
    group.bench_function("sets_connected/cut", |b| {
        b.iter(|| black_box(g.sets_connected(black_box(left), black_box(right))))
    });
    group.finish();
}

fn cardinality_estimation(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_estimator");
    let w = family_workload(GraphKind::Clique, 20, 3);
    let est = CardinalityEstimator::new(&w.graph, &w.catalog).unwrap();
    let s1 = RelSet::from_indices(0..=9);
    let s2 = RelSet::from_indices(10..=19);
    group.bench_function("join_cardinality/clique20_cut", |b| {
        b.iter(|| {
            black_box(est.join_cardinality(1e6, 1e6, black_box(s1), black_box(s2)))
        })
    });
    group.bench_function("set_cardinality/clique20_full", |b| {
        b.iter(|| black_box(est.set_cardinality(black_box(w.graph.all_relations()))))
    });
    group.finish();
}

criterion_group!(
    benches,
    subset_enumeration,
    csg_enumeration,
    connectivity_tests,
    cardinality_estimation
);
criterion_main!(benches);
