//! Microbenchmarks of the substrate the algorithms are built on:
//! subset stepping, connected-subgraph enumeration, set connectivity
//! tests and cardinality estimation. These are the constant factors
//! behind every DP iteration (in-repo harness — no external benchmark
//! framework).

use joinopt_bench::microbench::Runner;
use joinopt_cost::{workload::family_workload, CardinalityEstimator};
use joinopt_qgraph::{csg, generators, GraphKind};
use joinopt_relset::RelSet;
use std::hint::black_box;

fn subset_enumeration(r: &mut Runner) {
    let set = RelSet::full(16);
    r.bench("substrate_subsets", "vance_maier_2^16", || {
        let mut acc = 0u64;
        for s in black_box(set).subsets() {
            acc ^= s.bits();
        }
        black_box(acc)
    });
}

fn csg_enumeration(r: &mut Runner) {
    for kind in GraphKind::ALL {
        let n = if kind == GraphKind::Clique { 14 } else { 16 };
        let g = generators::generate(kind, n);
        r.bench(
            "substrate_csg",
            &format!("enumerate_csg_{}_{n}", kind.name()),
            || black_box(csg::count_csg(black_box(&g))),
        );
        r.bench(
            "substrate_csg",
            &format!("enumerate_ccp_{}_{n}", kind.name()),
            || black_box(csg::count_ccp_distinct(black_box(&g))),
        );
    }
}

fn connectivity_tests(r: &mut Runner) {
    let g = generators::generate(GraphKind::Cycle, 20);
    let connected = RelSet::from_indices(5..=14);
    let disconnected = RelSet::from_indices([0, 2, 4, 6, 8, 10]);
    r.bench(
        "substrate_connectivity",
        "is_connected_set/connected_arc",
        || black_box(g.is_connected_set(black_box(connected))),
    );
    r.bench(
        "substrate_connectivity",
        "is_connected_set/scattered",
        || black_box(g.is_connected_set(black_box(disconnected))),
    );
    let left = RelSet::from_indices(0..=9);
    let right = RelSet::from_indices(10..=19);
    r.bench("substrate_connectivity", "sets_connected/cut", || {
        black_box(g.sets_connected(black_box(left), black_box(right)))
    });
}

fn cardinality_estimation(r: &mut Runner) {
    let w = family_workload(GraphKind::Clique, 20, 3);
    let est = CardinalityEstimator::new(&w.graph, &w.catalog).unwrap();
    let s1 = RelSet::from_indices(0..=9);
    let s2 = RelSet::from_indices(10..=19);
    r.bench(
        "substrate_estimator",
        "join_cardinality/clique20_cut",
        || black_box(est.join_cardinality(1e6, 1e6, black_box(s1), black_box(s2))),
    );
    r.bench(
        "substrate_estimator",
        "set_cardinality/clique20_full",
        || black_box(est.set_cardinality(black_box(w.graph.all_relations()))),
    );
}

fn main() {
    let mut r = Runner::default();
    subset_enumeration(&mut r);
    csg_enumeration(&mut r);
    connectivity_tests(&mut r);
    cardinality_estimation(&mut r);
    r.finish();
}
