//! Benchmarks behind Figures 8–11: timings of DPsize, DPsub and DPccp
//! per graph family at representative sizes (in-repo harness — no
//! external benchmark framework).
//!
//! Sizes are chosen so a full `cargo bench` stays in the minutes range
//! while still showing each algorithm's asymptotic separation; the
//! `figures` binary sweeps the full n = 2..=20 range of the paper.

use joinopt_bench::microbench::Runner;
use joinopt_core::{DpCcp, DpSize, DpSub, JoinOrderer};
use joinopt_cost::{workload::family_workload, Cout};
use joinopt_qgraph::GraphKind;
use std::hint::black_box;

/// Per-family sizes: large enough to show separation, small enough for CI.
fn sizes(kind: GraphKind) -> &'static [usize] {
    match kind {
        GraphKind::Chain | GraphKind::Cycle => &[5, 10, 15],
        GraphKind::Star => &[5, 10, 13],
        GraphKind::Clique => &[5, 8, 11],
    }
}

fn bench_family(r: &mut Runner, kind: GraphKind, figure: u32) {
    let group = format!("figure{figure}_{}", kind.name());
    for &n in sizes(kind) {
        let w = family_workload(kind, n, 2006);
        let algorithms: [&dyn JoinOrderer; 3] = [&DpSize, &DpSub, &DpCcp];
        for alg in algorithms {
            r.bench(&group, &format!("{}/{n}", alg.name()), || {
                let res = alg
                    .optimize(black_box(&w.graph), &w.catalog, &Cout)
                    .expect("valid workload");
                black_box(res.cost)
            });
        }
    }
}

fn main() {
    let mut r = Runner::default();
    bench_family(&mut r, GraphKind::Chain, 8);
    bench_family(&mut r, GraphKind::Cycle, 9);
    bench_family(&mut r, GraphKind::Star, 10);
    bench_family(&mut r, GraphKind::Clique, 11);
    r.finish();
}
