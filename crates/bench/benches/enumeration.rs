//! Criterion benchmarks behind Figures 8–11: statistical timings of
//! DPsize, DPsub and DPccp per graph family at representative sizes.
//!
//! Sizes are chosen so a full `cargo bench` stays in the minutes range
//! while still showing each algorithm's asymptotic separation; the
//! `figures` binary sweeps the full n = 2..=20 range of the paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use joinopt_core::{DpCcp, DpSize, DpSub, JoinOrderer};
use joinopt_cost::{workload::family_workload, Cout};
use joinopt_qgraph::GraphKind;
use std::hint::black_box;

/// Per-family sizes: large enough to show separation, small enough for CI.
fn sizes(kind: GraphKind) -> &'static [usize] {
    match kind {
        GraphKind::Chain | GraphKind::Cycle => &[5, 10, 15],
        GraphKind::Star => &[5, 10, 13],
        GraphKind::Clique => &[5, 8, 11],
    }
}

fn bench_family(c: &mut Criterion, kind: GraphKind, figure: u32) {
    let mut group = c.benchmark_group(format!("figure{figure}_{}", kind.name()));
    group.sample_size(10);
    for &n in sizes(kind) {
        let w = family_workload(kind, n, 2006);
        let algorithms: [&dyn JoinOrderer; 3] = [&DpSize, &DpSub, &DpCcp];
        for alg in algorithms {
            group.bench_with_input(
                BenchmarkId::new(alg.name(), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let r = alg
                            .optimize(black_box(&w.graph), &w.catalog, &Cout)
                            .expect("valid workload");
                        black_box(r.cost)
                    })
                },
            );
        }
    }
    group.finish();
}

fn chain(c: &mut Criterion) {
    bench_family(c, GraphKind::Chain, 8);
}

fn cycle(c: &mut Criterion) {
    bench_family(c, GraphKind::Cycle, 9);
}

fn star(c: &mut Criterion) {
    bench_family(c, GraphKind::Star, 10);
}

fn clique(c: &mut Criterion) {
    bench_family(c, GraphKind::Clique, 11);
}

criterion_group!(benches, chain, cycle, star, clique);
criterion_main!(benches);
