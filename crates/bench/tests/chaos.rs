//! End-to-end gate for `joinopt load --chaos`.
//!
//! Runs in its own test binary (= its own process) because the chaos
//! harness arms the process-global `serve-worker-panic` failpoint: in
//! the library's shared test process the burst would leak panics into
//! unrelated concurrently-running tests.
//!
//! Only meaningful under `--cfg failpoints`; the plain-cfg variant
//! checks that chaos mode refuses to run without fault injection.

use joinopt_bench::load::{run_chaos, ChaosConfig};
use joinopt_telemetry::NoopObserver;

#[cfg(not(failpoints))]
#[test]
fn chaos_refuses_without_failpoints_build() {
    let err = run_chaos(&ChaosConfig::default(), &NoopObserver).unwrap_err();
    assert!(err.contains("failpoints"), "{err}");
}

#[cfg(failpoints)]
#[test]
fn chaos_run_passes_its_gates() {
    use joinopt_bench::load::LoadConfig;
    use joinopt_telemetry::json::JsonValue;

    let report = run_chaos(
        &ChaosConfig {
            load: LoadConfig {
                requests: 120,
                max_n: 7,
                ..LoadConfig::default()
            },
            ..ChaosConfig::default()
        },
        &NoopObserver,
    )
    .unwrap();
    report.verify().unwrap();
    assert!(
        report.burst.errors.panic > 0,
        "burst must see injected panics: {report:?}"
    );
    assert!(report.breaker_opens >= 1);
    assert_eq!(report.wrong_plans, 0);
    assert!(report.rechecked > 0);
    assert!(report.drained);

    let v = JsonValue::parse(&report.to_json()).unwrap();
    assert_eq!(v.get("mode").unwrap().as_str(), Some("chaos"));
    assert_eq!(
        v.get("chaos").unwrap().get("wrong_plans").unwrap().as_u64(),
        Some(0)
    );
    assert!(report.render().contains("recovery"));
}
