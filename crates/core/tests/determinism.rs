//! Thread-count determinism matrix for the parallel DPsub engine.
//!
//! Contract under test: for every algorithm with a parallel path
//! (the DPsub family), an [`OptimizeRequest`] must produce **the same
//! plan, bit for bit** — cost, cardinality, serialized tree shape,
//! counters and table size — at every thread count, and that plan must
//! be identical to the sequential [`JoinOrderer`] implementation's.
//! `plans_built` is deliberately excluded: the engine materializes one
//! node per DP entry, the sequential driver one per improvement (see
//! `joinopt_core::parallel`).

use joinopt_core::{Algorithm, OptimizeRequest, Session};
use joinopt_cost::{workload, Cout, HashJoin};
use joinopt_plan::JoinTree;
use joinopt_qgraph::{GraphKind, QueryGraph};

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// The algorithms that gained a parallel path in the request API.
const PARALLEL: [Algorithm; 3] = [
    Algorithm::DpSub,
    Algorithm::DpSubUnfiltered,
    Algorithm::DpSubCrossProducts,
];

/// Serializes a join tree to a canonical string so shape differences
/// (operand order, bushiness) cannot hide behind equal costs.
fn shape(t: &JoinTree) -> String {
    match t {
        JoinTree::Scan { relation, .. } => format!("R{relation}"),
        JoinTree::Join { left, right, .. } => format!("({} {})", shape(left), shape(right)),
    }
}

#[test]
fn parallel_paths_are_bit_identical_across_thread_counts() {
    for kind in GraphKind::ALL {
        for n in [6, 9, 10] {
            let w = workload::family_workload(kind, n, n as u64);
            for alg in PARALLEL {
                let seq = alg
                    .orderer(&w.graph)
                    .optimize(&w.graph, &w.catalog, &Cout)
                    .unwrap();
                for threads in THREADS {
                    let ctx = format!("{kind} n={n} {alg:?} t={threads}");
                    let par = OptimizeRequest::new(&w.graph, &w.catalog)
                        .with_algorithm(alg)
                        .with_threads(threads)
                        .run()
                        .unwrap()
                        .result;
                    assert_eq!(seq.cost.to_bits(), par.cost.to_bits(), "cost {ctx}");
                    assert_eq!(
                        seq.cardinality.to_bits(),
                        par.cardinality.to_bits(),
                        "cardinality {ctx}"
                    );
                    assert_eq!(shape(&seq.tree), shape(&par.tree), "tree shape {ctx}");
                    assert_eq!(seq.tree, par.tree, "tree {ctx}");
                    assert_eq!(seq.counters, par.counters, "counters {ctx}");
                    assert_eq!(seq.table_size, par.table_size, "table size {ctx}");
                }
            }
        }
    }
}

#[test]
fn determinism_holds_under_asymmetric_cost_models() {
    // HashJoin breaks cost-tie symmetry between operand orders, which is
    // exactly where a nondeterministic merge would betray itself.
    for kind in [GraphKind::Star, GraphKind::Clique] {
        let w = workload::family_workload(kind, 10, 77);
        let baseline = OptimizeRequest::new(&w.graph, &w.catalog)
            .with_algorithm(Algorithm::DpSub)
            .with_cost_model(&HashJoin)
            .with_threads(1)
            .run()
            .unwrap()
            .result;
        for threads in THREADS {
            let par = OptimizeRequest::new(&w.graph, &w.catalog)
                .with_algorithm(Algorithm::DpSub)
                .with_cost_model(&HashJoin)
                .with_threads(threads)
                .run()
                .unwrap()
                .result;
            assert_eq!(baseline.cost.to_bits(), par.cost.to_bits(), "{kind}");
            assert_eq!(shape(&baseline.tree), shape(&par.tree), "{kind}");
        }
    }
}

#[test]
fn pooled_sessions_do_not_leak_state_between_queries() {
    // Interleave different graphs through one session at varying thread
    // counts; every answer must match a fresh one-shot run.
    let mut session = Session::new();
    for round in 0..3 {
        for kind in GraphKind::ALL {
            let n = 5 + round;
            let w = workload::family_workload(kind, n, round as u64);
            for threads in [2, 1, 4] {
                let pooled = OptimizeRequest::new(&w.graph, &w.catalog)
                    .with_algorithm(Algorithm::DpSub)
                    .with_threads(threads)
                    .run_in(&mut session)
                    .unwrap()
                    .result;
                let fresh = OptimizeRequest::new(&w.graph, &w.catalog)
                    .with_algorithm(Algorithm::DpSub)
                    .with_threads(threads)
                    .run()
                    .unwrap()
                    .result;
                assert_eq!(pooled.cost.to_bits(), fresh.cost.to_bits());
                assert_eq!(pooled.tree, fresh.tree);
                assert_eq!(pooled.counters, fresh.counters);
            }
        }
    }
}

#[test]
fn cross_products_handle_disconnected_graphs_at_any_thread_count() {
    // Only the Vance/Maier variant accepts disconnected graphs; its
    // parallel path must too, identically.
    // Two components: the 0-1-2-3 chain and the 4-5-6-7 chain.
    let mut g = QueryGraph::new(8).unwrap();
    for (a, b) in [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)] {
        g.add_edge(a, b).unwrap();
    }
    let cat = joinopt_cost::Catalog::new(&g);
    let seq = Algorithm::DpSubCrossProducts
        .orderer(&g)
        .optimize(&g, &cat, &Cout)
        .unwrap();
    for threads in THREADS {
        let par = OptimizeRequest::new(&g, &cat)
            .with_algorithm(Algorithm::DpSubCrossProducts)
            .with_threads(threads)
            .run()
            .unwrap()
            .result;
        assert_eq!(seq.cost.to_bits(), par.cost.to_bits(), "t={threads}");
        assert_eq!(seq.tree, par.tree, "t={threads}");
        assert_eq!(seq.table_size, par.table_size, "t={threads}");
    }
    // The connectivity-requiring variants still reject it, at any
    // thread count.
    for threads in [1, 4] {
        assert!(OptimizeRequest::new(&g, &cat)
            .with_algorithm(Algorithm::DpSub)
            .with_threads(threads)
            .run()
            .is_err());
    }
}

#[test]
fn boundary_sizes_are_bit_identical_at_full_thread_fanout() {
    // n = 1 (no joins at all) and n = 2 (a single join) leave most
    // worker threads with empty chunks; the merge must still reproduce
    // the sequential answer bit for bit.
    for n in [1usize, 2] {
        let mut g = QueryGraph::new(n).unwrap();
        if n == 2 {
            g.add_edge(0, 1).unwrap();
        }
        let cat = joinopt_cost::Catalog::new(&g);
        for alg in PARALLEL {
            let ctx = format!("n={n} {alg:?}");
            let seq = alg.orderer(&g).optimize(&g, &cat, &Cout).unwrap();
            let par = OptimizeRequest::new(&g, &cat)
                .with_algorithm(alg)
                .with_threads(8)
                .run()
                .unwrap()
                .result;
            assert_eq!(seq.cost.to_bits(), par.cost.to_bits(), "cost {ctx}");
            assert_eq!(seq.tree, par.tree, "tree {ctx}");
            assert_eq!(seq.counters, par.counters, "counters {ctx}");
            assert_eq!(seq.table_size, par.table_size, "table size {ctx}");
        }
    }
}

#[test]
fn oversubscribed_thread_counts_stay_bit_identical() {
    // Requesting far more threads than the machine has cores must not
    // change the result — chunking is by requested thread count, so
    // this exercises many tiny chunks and heavy scheduler interleaving.
    let requested = std::thread::available_parallelism()
        .map(|p| p.get() * 4)
        .unwrap_or(64)
        .max(32);
    for kind in GraphKind::ALL {
        let w = workload::family_workload(kind, 9, 13);
        let seq = Algorithm::DpSub
            .orderer(&w.graph)
            .optimize(&w.graph, &w.catalog, &Cout)
            .unwrap();
        let par = OptimizeRequest::new(&w.graph, &w.catalog)
            .with_algorithm(Algorithm::DpSub)
            .with_threads(requested)
            .run()
            .unwrap()
            .result;
        let ctx = format!("{kind} t={requested}");
        assert_eq!(seq.cost.to_bits(), par.cost.to_bits(), "cost {ctx}");
        assert_eq!(seq.tree, par.tree, "tree {ctx}");
        assert_eq!(seq.counters, par.counters, "counters {ctx}");
        assert_eq!(seq.table_size, par.table_size, "table size {ctx}");
    }
}
