//! The graceful-degradation matrix: budgets, cancellation, panic
//! isolation and (under `--cfg failpoints`) injected faults.
//!
//! Every test asserts the pipeline's core promise: a tripped budget or
//! an isolated fault either degrades to a *valid connected plan* tagged
//! with [`DegradationInfo`], or fails with a typed error for the
//! affected query alone — it never panics the caller and never returns
//! a malformed plan.

use std::time::Duration;

use joinopt_core::{
    Algorithm, BudgetAction, CancelFlag, DegradationRung, OptimizeError, OptimizeOutcome,
    OptimizeRequest, Optimizer, TripKind,
};
use joinopt_cost::workload::{self, Workload};
use joinopt_cost::Catalog;
use joinopt_qgraph::{GraphKind, QueryGraph};

fn assert_complete_plan(outcome: &OptimizeOutcome, w: &Workload) {
    assert_eq!(outcome.result.tree.relations(), w.graph.all_relations());
    assert_eq!(outcome.result.tree.num_joins(), w.graph.num_relations() - 1);
    assert!(outcome.result.cost.is_finite() && outcome.result.cost > 0.0);
}

#[test]
fn every_algorithm_honours_a_zero_time_budget() {
    let w = workload::family_workload(GraphKind::Clique, 10, 0);
    for alg in Algorithm::CONCRETE {
        let err = OptimizeRequest::new(&w.graph, &w.catalog)
            .with_algorithm(alg)
            .with_time_budget(Duration::ZERO)
            .run()
            .unwrap_err();
        assert!(
            matches!(err, OptimizeError::TimeBudgetExceeded { .. }),
            "{alg:?}: {err}"
        );
    }
}

#[test]
fn every_algorithm_honours_a_preset_cancel_flag() {
    let w = workload::family_workload(GraphKind::Clique, 10, 0);
    for alg in Algorithm::CONCRETE {
        let flag = CancelFlag::new();
        flag.cancel();
        let err = OptimizeRequest::new(&w.graph, &w.catalog)
            .with_algorithm(alg)
            .with_cancel_flag(flag)
            .run()
            .unwrap_err();
        assert!(matches!(err, OptimizeError::Cancelled), "{alg:?}: {err}");
    }
}

#[test]
fn memory_accounted_algorithms_honour_a_tiny_budget() {
    // SimulatedAnnealing's working state is O(n) and unaccounted; every
    // algorithm that builds DP tables or grows an arena charges the
    // shared token and must trip.
    let w = workload::family_workload(GraphKind::Clique, 12, 0);
    for alg in [
        Algorithm::DpSize,
        Algorithm::DpSizeNaive,
        Algorithm::DpSub,
        Algorithm::DpSubUnfiltered,
        Algorithm::DpSubCrossProducts,
        Algorithm::DpCcp,
        Algorithm::DpSizeLeftDeep,
        Algorithm::Idp,
        Algorithm::TopDown,
        Algorithm::Goo,
    ] {
        let err = OptimizeRequest::new(&w.graph, &w.catalog)
            .with_algorithm(alg)
            .with_memory_budget(16)
            .run()
            .unwrap_err();
        assert!(
            matches!(err, OptimizeError::MemoryBudgetExceeded { .. }),
            "{alg:?}: {err}"
        );
    }
}

#[test]
fn time_trip_degrades_to_a_valid_plan_on_every_graph_kind() {
    for kind in GraphKind::ALL {
        let w = workload::family_workload(kind, 9, 7);
        let outcome = OptimizeRequest::new(&w.graph, &w.catalog)
            .with_algorithm(Algorithm::DpCcp)
            .with_time_budget(Duration::ZERO)
            .on_budget_exceeded(BudgetAction::Degrade)
            .run()
            .unwrap();
        let info = outcome.degradation.as_ref().expect("ladder taken");
        assert_eq!(info.trigger, TripKind::Time, "{kind}");
        assert!(
            matches!(info.rung, DegradationRung::Idp { .. }),
            "{kind}: first rung should succeed"
        );
        assert_complete_plan(&outcome, &w);
    }
}

#[test]
fn memory_trip_degrades_through_the_engine_path() {
    // Clique 13 needs ~2^13 pooled table slots: far beyond 64 KiB, while
    // the IDP rung's bounded per-round tables fit comfortably.
    let w = workload::family_workload(GraphKind::Clique, 13, 0);
    for threads in [1, 4] {
        let outcome = OptimizeRequest::new(&w.graph, &w.catalog)
            .with_algorithm(Algorithm::DpSub)
            .with_threads(threads)
            .with_memory_budget(64 * 1024)
            .on_budget_exceeded(BudgetAction::Degrade)
            .run()
            .unwrap();
        let info = outcome.degradation.as_ref().expect("ladder taken");
        assert_eq!(info.trigger, TripKind::Memory);
        assert!(info.memory_used > 64 * 1024);
        assert_complete_plan(&outcome, &w);
    }
}

#[test]
fn degradation_info_records_the_original_failure() {
    let w = workload::family_workload(GraphKind::Clique, 11, 0);
    let outcome = OptimizeRequest::new(&w.graph, &w.catalog)
        .with_algorithm(Algorithm::DpSub)
        .with_time_budget(Duration::ZERO)
        .on_budget_exceeded(BudgetAction::Degrade)
        .run()
        .unwrap();
    let info = outcome.degradation.expect("ladder taken");
    assert_eq!(info.time_budget, Some(Duration::ZERO));
    assert_eq!(info.memory_budget, None);
    assert!(
        info.detail.contains("time budget"),
        "detail should render the original error: {}",
        info.detail
    );
}

#[test]
fn degraded_plans_cost_no_less_than_the_optimum() {
    // The ladder trades optimality for survival — never correctness.
    let w = workload::family_workload(GraphKind::Cycle, 9, 3);
    let exact = OptimizeRequest::new(&w.graph, &w.catalog)
        .with_algorithm(Algorithm::DpCcp)
        .run()
        .unwrap();
    let degraded = OptimizeRequest::new(&w.graph, &w.catalog)
        .with_algorithm(Algorithm::DpCcp)
        .with_time_budget(Duration::ZERO)
        .on_budget_exceeded(BudgetAction::Degrade)
        .run()
        .unwrap();
    assert!(degraded.degradation.is_some());
    assert!(degraded.result.cost >= exact.result.cost * (1.0 - 1e-9));
}

#[test]
fn ladder_exhausted_when_even_goo_trips() {
    // A 16-byte budget is below even GOO's small accounted footprint,
    // so the ladder runs out of rungs: exact trips, IDP trips, GOO
    // trips — and the caller gets the typed error of the *last* rung
    // instead of a plan. Degradation trades optimality for survival,
    // but it never fabricates a plan it could not build.
    let w = workload::family_workload(GraphKind::Clique, 10, 0);
    let err = OptimizeRequest::new(&w.graph, &w.catalog)
        .with_algorithm(Algorithm::DpSub)
        .with_memory_budget(16)
        .on_budget_exceeded(BudgetAction::Degrade)
        .run()
        .unwrap_err();
    assert!(
        matches!(err, OptimizeError::MemoryBudgetExceeded { .. }),
        "exhausted ladder must surface the budget error, got: {err}"
    );
}

#[test]
fn batch_isolates_invalid_queries_between_valid_ones() {
    let good: Vec<_> = (0..4)
        .map(|seed| workload::family_workload(GraphKind::ALL[seed % 4], 6, seed as u64))
        .collect();
    let disconnected = QueryGraph::new(3).unwrap();
    let disc_cat = Catalog::new(&disconnected);
    let empty = QueryGraph::new(0).unwrap();
    let empty_cat = Catalog::new(&empty);
    let mut queries: Vec<(&QueryGraph, &Catalog)> =
        good.iter().map(|w| (&w.graph, &w.catalog)).collect();
    queries.insert(1, (&disconnected, &disc_cat));
    queries.insert(3, (&empty, &empty_cat));
    // Twice on the same optimizer: worker count is automatic now, and
    // isolation must hold on a fresh pool and on a reused one alike.
    for _ in 0..2 {
        let results = Optimizer::new().optimize_batch(&queries);
        assert_eq!(results.len(), 6);
        assert!(results[1].is_err() && results[3].is_err());
        for i in [0, 2, 4, 5] {
            assert!(results[i].is_ok(), "query {i} must survive its neighbours");
        }
    }
}

#[test]
fn cancel_flag_shared_across_requests_stops_each() {
    let w = workload::family_workload(GraphKind::Clique, 9, 0);
    let flag = CancelFlag::new();
    // Not yet cancelled: runs complete.
    let ok = OptimizeRequest::new(&w.graph, &w.catalog)
        .with_cancel_flag(flag.clone())
        .run();
    assert!(ok.is_ok());
    flag.cancel();
    for alg in [Algorithm::DpSub, Algorithm::DpCcp, Algorithm::Goo] {
        let err = OptimizeRequest::new(&w.graph, &w.catalog)
            .with_algorithm(alg)
            .with_cancel_flag(flag.clone())
            .run()
            .unwrap_err();
        assert!(matches!(err, OptimizeError::Cancelled), "{alg:?}");
    }
}

/// Injected-fault matrix: only meaningful when the crate is compiled
/// with `RUSTFLAGS="--cfg failpoints"` (see `ci.sh`).
#[cfg(failpoints)]
mod failpoints {
    use super::*;
    use joinopt_core::failpoint::{self, FailAction};
    use std::sync::{Mutex, MutexGuard, PoisonError};

    /// The failpoint registry is process-global; tests that arm sites
    /// serialize on this lock and clear the registry on both sides.
    static FP_LOCK: Mutex<()> = Mutex::new(());

    fn armed() -> MutexGuard<'static, ()> {
        let guard = FP_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        failpoint::clear_all();
        guard
    }

    /// Sites reachable from a sequential exact attempt, paired with the
    /// algorithm that exercises them.
    const SEQUENTIAL_SITES: [(&str, Algorithm); 3] = [
        ("table-insert", Algorithm::DpCcp),
        ("arena-alloc", Algorithm::DpSize),
        ("estimator", Algorithm::DpSub),
    ];

    #[test]
    fn injected_errors_fail_typed_without_degradation() {
        let _guard = armed();
        let w = workload::family_workload(GraphKind::Cycle, 7, 1);
        for (site, alg) in SEQUENTIAL_SITES {
            failpoint::configure_times(site, FailAction::Error, 1);
            let err = OptimizeRequest::new(&w.graph, &w.catalog)
                .with_algorithm(alg)
                .run()
                .unwrap_err();
            assert!(
                matches!(err, OptimizeError::Internal(ref m) if m.contains(site)),
                "{site}: {err}"
            );
            failpoint::clear_all();
        }
    }

    #[test]
    fn injected_errors_degrade_to_a_valid_plan() {
        let _guard = armed();
        let w = workload::family_workload(GraphKind::Cycle, 8, 2);
        for (site, alg) in SEQUENTIAL_SITES {
            // One shot: the exact attempt absorbs the fault, the ladder
            // runs clean and the first rung wins.
            failpoint::configure_times(site, FailAction::Error, 1);
            let outcome = OptimizeRequest::new(&w.graph, &w.catalog)
                .with_algorithm(alg)
                .on_budget_exceeded(BudgetAction::Degrade)
                .run()
                .unwrap();
            let info = outcome.degradation.as_ref().expect("ladder taken");
            assert_eq!(info.trigger, TripKind::Internal, "{site}");
            assert!(matches!(info.rung, DegradationRung::Idp { .. }), "{site}");
            assert!(info.detail.contains(site), "{site}: {}", info.detail);
            assert_complete_plan(&outcome, &w);
            failpoint::clear_all();
        }
    }

    #[test]
    fn persistent_faults_walk_the_whole_ladder() {
        let _guard = armed();
        // "table-insert" armed for every hit kills the exact DP *and*
        // the IDP rung (both insert into DP tables); GOO never touches a
        // table and survives as the last rung.
        let w = workload::family_workload(GraphKind::Chain, 7, 4);
        failpoint::configure("table-insert", FailAction::Error);
        let outcome = OptimizeRequest::new(&w.graph, &w.catalog)
            .with_algorithm(Algorithm::DpCcp)
            .on_budget_exceeded(BudgetAction::Degrade)
            .run()
            .unwrap();
        failpoint::clear_all();
        let info = outcome.degradation.as_ref().expect("ladder taken");
        assert_eq!(info.rung, DegradationRung::Greedy);
        assert_eq!(info.trigger, TripKind::Internal);
        assert_complete_plan(&outcome, &w);
    }

    #[test]
    fn faults_in_every_rung_surface_the_original_error() {
        let _guard = armed();
        // estimator fails everywhere: exact, IDP and GOO all need it.
        let w = workload::family_workload(GraphKind::Star, 6, 5);
        failpoint::configure("estimator", FailAction::Error);
        let err = OptimizeRequest::new(&w.graph, &w.catalog)
            .with_algorithm(Algorithm::DpSub)
            .on_budget_exceeded(BudgetAction::Degrade)
            .run()
            .unwrap_err();
        failpoint::clear_all();
        assert!(
            matches!(err, OptimizeError::Internal(ref m) if m.contains("estimator")),
            "{err}"
        );
    }

    #[test]
    fn worker_spawn_fault_degrades_the_parallel_engine() {
        let _guard = armed();
        // Clique 13 at 4 threads passes the engine's spawn threshold.
        let w = workload::family_workload(GraphKind::Clique, 13, 0);
        failpoint::configure_times("worker-spawn", FailAction::Error, 1);
        let outcome = OptimizeRequest::new(&w.graph, &w.catalog)
            .with_algorithm(Algorithm::DpSub)
            .with_threads(4)
            .on_budget_exceeded(BudgetAction::Degrade)
            .run()
            .unwrap();
        failpoint::clear_all();
        let info = outcome.degradation.as_ref().expect("ladder taken");
        assert_eq!(info.trigger, TripKind::Internal);
        assert_complete_plan(&outcome, &w);
    }

    #[test]
    fn injected_panic_is_isolated_to_one_batch_query() {
        let _guard = armed();
        let workloads: Vec<_> = (0..3)
            .map(|seed| workload::family_workload(GraphKind::Cycle, 7, seed))
            .collect();
        let queries: Vec<(&QueryGraph, &Catalog)> =
            workloads.iter().map(|w| (&w.graph, &w.catalog)).collect();
        // One panic: exactly one query blows up (worker count is
        // automatic now, so whichever worker reaches a table insert
        // first consumes the trigger) and the rest must complete on
        // fresh sessions.
        failpoint::configure_times("table-insert", FailAction::Panic, 1);
        let results = Optimizer::new()
            .with_algorithm(Algorithm::DpCcp)
            .optimize_batch(&queries);
        failpoint::clear_all();
        assert_eq!(results.len(), 3);
        let mut panicked = 0;
        for (i, r) in results.iter().enumerate() {
            match r {
                Err(e) => {
                    assert!(
                        matches!(e, OptimizeError::Internal(m) if m.contains("panic")),
                        "query {i}: {e}"
                    );
                    panicked += 1;
                }
                Ok(ok) => {
                    assert_eq!(ok.tree.relations(), workloads[i].graph.all_relations());
                }
            }
        }
        assert_eq!(panicked, 1, "exactly one query consumes the trigger");
    }

    #[test]
    fn batch_survives_every_query_panicking() {
        let _guard = armed();
        // Unlimited panics: every query in the batch blows up its
        // worker session. Each slot must come back as a typed error —
        // never a silent drop, a wrong-index shift, or a poisoned pool
        // corrupting a neighbour — and a follow-up batch on the same
        // optimizer must work again once the fault is cleared (the pool
        // discards every panicked session instead of reusing it).
        let workloads: Vec<_> = (0..4)
            .map(|seed| workload::family_workload(GraphKind::Chain, 6, seed))
            .collect();
        let queries: Vec<(&QueryGraph, &Catalog)> =
            workloads.iter().map(|w| (&w.graph, &w.catalog)).collect();
        failpoint::configure("table-insert", FailAction::Panic);
        let optimizer = Optimizer::new().with_algorithm(Algorithm::DpCcp);
        let results = optimizer.optimize_batch(&queries);
        failpoint::clear_all();
        assert_eq!(results.len(), 4);
        for (i, r) in results.iter().enumerate() {
            let err = r.as_ref().expect_err("every query must fail");
            assert!(
                matches!(err, OptimizeError::Internal(m) if m.contains("panic")),
                "query {i}: {err}"
            );
        }
        // Same optimizer, fault cleared: the pool must be clean.
        let recovered = optimizer.optimize_batch(&queries);
        for (i, r) in recovered.iter().enumerate() {
            let ok = r
                .as_ref()
                .unwrap_or_else(|e| panic!("query {i} after recovery: {e}"));
            assert_eq!(ok.tree.relations(), workloads[i].graph.all_relations());
        }
    }

    #[test]
    fn injected_panic_in_a_request_is_catchable_by_the_caller() {
        let _guard = armed();
        // Outside optimize_batch no isolation is promised — but the
        // panic must stay an unwind (caller-catchable), not an abort.
        let w = workload::family_workload(GraphKind::Chain, 6, 6);
        failpoint::configure_times("arena-alloc", FailAction::Panic, 1);
        let caught = std::panic::catch_unwind(|| {
            OptimizeRequest::new(&w.graph, &w.catalog)
                .with_algorithm(Algorithm::DpSize)
                .run()
        });
        failpoint::clear_all();
        assert!(caught.is_err(), "the injected panic must propagate");
    }
}
