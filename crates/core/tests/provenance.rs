//! Acceptance tests for plan provenance: the candidate stream is
//! strictly opt-in ([`Observer::wants_provenance`]), costs nothing when
//! not requested, and — when requested — reconstructs exactly the
//! decisions the optimizer made.

use std::cell::Cell;

use joinopt_core::parallel::engine_provenance_candidates;
use joinopt_core::{Algorithm, OptimizeRequest};
use joinopt_cost::{workload, Cout};
use joinopt_plan::JoinTree;
use joinopt_qgraph::GraphKind;
use joinopt_telemetry::{Event, MetricsCollector, NoopObserver, Observer, ProvenanceCollector};

/// Enabled for the regular event stream, but does *not* override
/// [`Observer::wants_provenance`] — so receiving a provenance event is
/// a contract violation, not a surprise.
#[derive(Default)]
struct NoProvenancePlease {
    events: Cell<u64>,
}

impl Observer for NoProvenancePlease {
    fn on_event(&self, event: Event) {
        if matches!(
            event,
            Event::PlanCandidate { .. } | Event::SearchPruned { .. }
        ) {
            panic!(
                "observer without wants_provenance received {:?}",
                event.name()
            );
        }
        self.events.set(self.events.get() + 1);
    }
}

/// Collects every join node's (union, left, right) relation-set split.
fn tree_splits(tree: &JoinTree, out: &mut Vec<(u64, u64, u64)>) {
    if let JoinTree::Join { left, right, .. } = tree {
        let l = left.relations().bits();
        let r = right.relations().bits();
        out.push((l | r, l, r));
        tree_splits(left, out);
        tree_splits(right, out);
    }
}

#[test]
fn enabled_observers_without_the_opt_in_see_no_provenance_events() {
    let w = workload::random_workload(7, 0.5, 11);
    for alg in Algorithm::CONCRETE {
        let baseline = alg
            .orderer(&w.graph)
            .optimize(&w.graph, &w.catalog, &Cout)
            .unwrap();
        let sink = NoProvenancePlease::default();
        let observed = alg
            .orderer(&w.graph)
            .optimize_observed(&w.graph, &w.catalog, &Cout, &sink)
            .unwrap();
        // The regular stream still flows, and nothing observed changes
        // what is computed.
        assert!(sink.events.get() > 0, "{alg:?} emitted no events");
        assert_eq!(
            baseline.cost.to_bits(),
            observed.cost.to_bits(),
            "{alg:?} cost"
        );
        assert_eq!(baseline.tree, observed.tree, "{alg:?} plan");
        assert_eq!(baseline.counters, observed.counters, "{alg:?} counters");
    }
}

#[test]
fn collector_reconstructs_every_decision_the_winning_plan_made() {
    for (kind, alg) in [
        (GraphKind::Star, Algorithm::DpSize),
        (GraphKind::Chain, Algorithm::DpSub),
        (GraphKind::Cycle, Algorithm::DpCcp),
        (GraphKind::Star, Algorithm::TopDown),
    ] {
        let w = workload::family_workload(kind, 8, 0);
        let prov = ProvenanceCollector::new();
        let result = alg
            .orderer(&w.graph)
            .optimize_observed(&w.graph, &w.catalog, &Cout, &prov)
            .unwrap();

        assert_eq!(prov.relations(), 8);
        assert!(prov.total_candidates() > 0, "{alg:?}");

        // Every join in the winning tree must be the recorded winner
        // for its relation set, with the same operand orientation.
        let mut splits = Vec::new();
        tree_splits(&result.tree, &mut splits);
        assert_eq!(splits.len(), 7, "{alg:?}");
        for (set, left, right) in splits {
            let rec = prov
                .record(set)
                .unwrap_or_else(|| panic!("{alg:?}: no record for set {set:#b}"));
            let winner = rec.winner.expect("winner");
            assert_eq!(
                (winner.left, winner.right),
                (left, right),
                "{alg:?} {set:#b}"
            );
            assert!(winner.cost.is_finite());
            // The runner-up never beats the winner.
            if let Some(delta) = rec.cost_delta() {
                assert!(delta >= 0.0, "{alg:?} {set:#b}: negative delta {delta}");
            }
            assert!(rec.candidates >= 1);
        }
    }
}

#[test]
fn engine_buffers_candidates_only_on_request_and_replays_them_exactly() {
    let w = workload::family_workload(GraphKind::Star, 12, 0);
    let run = |obs: &dyn Observer| {
        OptimizeRequest::new(&w.graph, &w.catalog)
            .with_algorithm(Algorithm::DpSub)
            .with_threads(4)
            .with_observer(obs)
            .run()
            .unwrap()
            .into_result()
    };

    // Neither an unobserved run nor a metrics-only run may buffer a
    // single provenance candidate: every buffered candidate funnels
    // through one counter precisely so this test can pin both paths
    // to zero.
    let before = engine_provenance_candidates();
    let plain = run(&NoopObserver);
    let metrics = MetricsCollector::new();
    let observed = run(&metrics);
    assert_eq!(
        engine_provenance_candidates() - before,
        0,
        "engine buffered provenance without a provenance-wanting observer"
    );

    // A provenance run buffers, replays deterministically, and changes
    // nothing about the result.
    let prov = ProvenanceCollector::new();
    let traced = run(&prov);
    assert!(
        engine_provenance_candidates() - before > 0,
        "provenance run buffered nothing"
    );
    assert_eq!(plain.cost.to_bits(), observed.cost.to_bits());
    assert_eq!(plain.cost.to_bits(), traced.cost.to_bits());
    assert_eq!(plain.tree, observed.tree);
    assert_eq!(plain.tree, traced.tree);
    assert_eq!(plain.counters, traced.counters);

    // The replayed stream reconstructs the engine's decisions: every
    // join of the winning tree is its set's recorded winner, and the
    // candidate count per set equals the per-set pair count.
    let mut splits = Vec::new();
    tree_splits(&traced.tree, &mut splits);
    for (set, left, right) in splits {
        let rec = prov.record(set).expect("record for tree split");
        let winner = rec.winner.expect("winner");
        assert_eq!((winner.left, winner.right), (left, right), "{set:#b}");
    }
    assert_eq!(
        prov.total_candidates(),
        traced.counters.csg_cmp_pairs,
        "engine candidates must equal csg-cmp-pairs considered"
    );

    // Thread-count invariance: the replayed provenance stream is
    // bit-identical at any worker count.
    let prov1 = ProvenanceCollector::new();
    let single = OptimizeRequest::new(&w.graph, &w.catalog)
        .with_algorithm(Algorithm::DpSub)
        .with_threads(1)
        .with_observer(&prov1)
        .run()
        .unwrap()
        .into_result();
    assert_eq!(single.tree, traced.tree);
    assert_eq!(prov1.records(), prov.records());
}
