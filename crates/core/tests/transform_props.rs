//! Seeded property tests for the subset-lattice transform core behind
//! DPconv (`joinopt_core::transform`).
//!
//! Dependency-free: randomness comes from an inline SplitMix64, so
//! every run replays the identical lattices. Three properties:
//!
//! 1. fast zeta and Möbius are exact inverses over random `i64`
//!    lattices (both compositions, in wrapping arithmetic);
//! 2. the `O(2^n · n²)` ranked subset convolution equals the direct
//!    `Σ_{T ⊆ S} f(T)·g(S\T)` definition;
//! 3. min-plus subset convolution agrees with the structurally
//!    independent all-pairs reference for every `n ≤ 12`.

use joinopt_core::transform::{
    min_plus_subset_convolution, min_plus_subset_convolution_naive, mobius_in_place,
    ranked_subset_convolution, zeta_in_place,
};

/// SplitMix64 (Steele et al.): tiny, seedable, good enough to fill
/// lattices with adversarially unstructured values.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn lattice_i64(&mut self, n: usize, magnitude: i64) -> Vec<i64> {
        (0..1usize << n)
            .map(|_| (self.next() as i64) % magnitude)
            .collect()
    }

    fn lattice_f64(&mut self, n: usize) -> Vec<f64> {
        // Mix of scales plus exact ties to stress min-plus comparisons.
        (0..1usize << n)
            .map(|_| (self.next() % 1_000_000) as f64 / 8.0)
            .collect()
    }
}

#[test]
fn zeta_and_mobius_are_exact_inverses_on_random_lattices() {
    let mut rng = SplitMix64(0x5eed_0001);
    for n in 0..=12 {
        for _ in 0..4 {
            let original = rng.lattice_i64(n, i64::MAX / 4);
            let mut f = original.clone();
            zeta_in_place(&mut f);
            mobius_in_place(&mut f);
            assert_eq!(f, original, "möbius ∘ zeta ≠ id at n={n}");
            let mut g = original.clone();
            mobius_in_place(&mut g);
            zeta_in_place(&mut g);
            assert_eq!(g, original, "zeta ∘ möbius ≠ id at n={n}");
        }
    }
}

#[test]
fn zeta_matches_its_quadratic_definition() {
    let mut rng = SplitMix64(0x5eed_0002);
    for n in 0..=8 {
        let original = rng.lattice_i64(n, 1 << 40);
        let mut fast = original.clone();
        zeta_in_place(&mut fast);
        for (s, &got) in fast.iter().enumerate() {
            let mut want = original[0]; // T = ∅
            let mut t = s;
            while t != 0 {
                want = want.wrapping_add(original[t]);
                t = (t - 1) & s;
            }
            assert_eq!(got, want, "n={n} S={s:#b}");
        }
    }
}

#[test]
fn ranked_convolution_matches_the_definition_on_random_lattices() {
    let mut rng = SplitMix64(0x5eed_0003);
    for n in 0..=8 {
        // Bounded magnitude keeps the exact (non-wrapping) reference
        // sum inside i64: 2^8 terms of 2^20 · 2^20 products.
        let f = rng.lattice_i64(n, 1 << 20);
        let g = rng.lattice_i64(n, 1 << 20);
        let h = ranked_subset_convolution(&f, &g);
        for s in 0..f.len() {
            let mut want = f[0] * g[s];
            let mut t = s;
            while t != 0 {
                want += f[t] * g[s ^ t];
                t = (t - 1) & s;
            }
            assert_eq!(h[s], want, "n={n} S={s:#b}");
        }
    }
}

#[test]
fn ranked_convolution_of_indicators_counts_disjoint_covers() {
    // f = g = indicator of non-empty sets: h[S] counts ordered pairs of
    // disjoint non-empty sets covering S, which is 2^|S| − 2 for
    // |S| ≥ 1 (every proper non-empty T pairs with its complement).
    for n in 0..=10 {
        let size = 1usize << n;
        let mut ind = vec![1i64; size];
        ind[0] = 0;
        let h = ranked_subset_convolution(&ind, &ind);
        for (s, &v) in h.iter().enumerate() {
            let k = (s as u64).count_ones();
            let want = if k == 0 { 0 } else { (1i64 << k) - 2 };
            assert_eq!(v, want, "n={n} S={s:#b}");
        }
    }
}

#[test]
fn min_plus_convolution_agrees_with_naive_up_to_n_12() {
    let mut rng = SplitMix64(0x5eed_0004);
    for n in 0..=12 {
        let f = rng.lattice_f64(n);
        let g = rng.lattice_f64(n);
        let fast = min_plus_subset_convolution(&f, &g);
        let naive = min_plus_subset_convolution_naive(&f, &g);
        // Both pick minima of exact two-term sums of the same values:
        // results must be bit-identical, not merely close.
        for s in 0..f.len() {
            assert_eq!(
                fast[s].to_bits(),
                naive[s].to_bits(),
                "n={n} S={s:#b}: {} vs {}",
                fast[s],
                naive[s]
            );
        }
    }
}

#[test]
fn min_plus_convolution_handles_infinities_like_the_naive_reference() {
    // ∞ marks "no plan" entries in DP usage; the two traversals must
    // treat them identically (never produce NaN via ∞ − ∞ tricks).
    let mut rng = SplitMix64(0x5eed_0005);
    for n in 2..=8 {
        let mut f = rng.lattice_f64(n);
        let mut g = rng.lattice_f64(n);
        for s in 0..f.len() {
            if rng.next().is_multiple_of(3) {
                f[s] = f64::INFINITY;
            }
            if rng.next().is_multiple_of(3) {
                g[s] = f64::INFINITY;
            }
        }
        let fast = min_plus_subset_convolution(&f, &g);
        let naive = min_plus_subset_convolution_naive(&f, &g);
        for s in 0..f.len() {
            assert!(!fast[s].is_nan(), "n={n} S={s:#b}");
            assert_eq!(fast[s].to_bits(), naive[s].to_bits(), "n={n} S={s:#b}");
        }
    }
}

#[test]
fn convolution_is_commutative_and_has_the_delta_identity() {
    let mut rng = SplitMix64(0x5eed_0006);
    let n = 7;
    let f = rng.lattice_i64(n, 1 << 20);
    let g = rng.lattice_i64(n, 1 << 20);
    assert_eq!(
        ranked_subset_convolution(&f, &g),
        ranked_subset_convolution(&g, &f)
    );
    // δ (1 at ∅, 0 elsewhere) is the ring identity.
    let mut delta = vec![0i64; 1 << n];
    delta[0] = 1;
    assert_eq!(ranked_subset_convolution(&f, &delta), f);
    // 0.0 at ∅, ∞ elsewhere is the min-plus identity.
    let fh = rng.lattice_f64(n);
    let mut tropical_delta = vec![f64::INFINITY; 1 << n];
    tropical_delta[0] = 0.0;
    let id = min_plus_subset_convolution(&fh, &tropical_delta);
    for s in 0..fh.len() {
        assert_eq!(id[s].to_bits(), fh[s].to_bits(), "S={s:#b}");
    }
}
