//! Acceptance tests for the telemetry layer: disabled observers must
//! not change optimizer behavior (or allocate), enabled observers must
//! see a well-formed event stream, and [`MetricsCollector`] /
//! [`TraceWriter`] must report real runs accurately.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::{Cell, RefCell};

use joinopt_core::{Algorithm, DpCcp, JoinOrderer};
use joinopt_cost::{workload, Cout};
use joinopt_qgraph::GraphKind;
use joinopt_telemetry::json::JsonValue;
use joinopt_telemetry::{Event, MetricsCollector, NoopObserver, Observer, TraceWriter};

// ---------------------------------------------------------------------
// Counting allocator (per-thread, so parallel tests don't interfere).
// ---------------------------------------------------------------------

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn allocs() -> u64 {
    ALLOCS.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // try_with: the TLS slot may already be torn down at thread exit.
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

// ---------------------------------------------------------------------
// Test observers.
// ---------------------------------------------------------------------

/// Reports itself disabled and panics if an event reaches it anyway —
/// proves the disabled path emits nothing.
struct DisabledObserver;

impl Observer for DisabledObserver {
    fn enabled(&self) -> bool {
        false
    }

    fn on_event(&self, event: Event) {
        panic!("disabled observer received {:?}", event.name());
    }
}

/// Records every event's wire name, in order.
#[derive(Default)]
struct Sink {
    names: RefCell<Vec<&'static str>>,
}

impl Observer for Sink {
    fn on_event(&self, event: Event) {
        self.names.borrow_mut().push(event.name());
    }
}

// ---------------------------------------------------------------------
// Bit-identity: observers must never change what the optimizer computes.
// ---------------------------------------------------------------------

/// The acceptance matrix: chain/cycle/star/clique at n ∈ {5, 10, 15}.
/// At n ≤ 10 all three paper algorithms run; at n = 15 one exact
/// algorithm per family keeps the debug-build runtime sane (DPsub's
/// trivial inner loop on the clique, DPccp elsewhere).
fn acceptance_matrix() -> Vec<(GraphKind, usize, Algorithm)> {
    let mut configs = Vec::new();
    for kind in GraphKind::ALL {
        for n in [5, 10] {
            for alg in [Algorithm::DpSize, Algorithm::DpSub, Algorithm::DpCcp] {
                configs.push((kind, n, alg));
            }
        }
        let alg15 = if kind == GraphKind::Clique {
            Algorithm::DpSub
        } else {
            Algorithm::DpCcp
        };
        configs.push((kind, 15, alg15));
    }
    configs
}

#[test]
fn noop_observer_is_bit_identical() {
    for (kind, n, alg) in acceptance_matrix() {
        let w = workload::family_workload(kind, n, 0);
        let orderer = alg.orderer(&w.graph);
        let baseline = orderer.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        let noop = orderer
            .optimize_observed(&w.graph, &w.catalog, &Cout, &NoopObserver)
            .unwrap();
        let metrics = MetricsCollector::new();
        let observed = orderer
            .optimize_observed(&w.graph, &w.catalog, &Cout, &metrics)
            .unwrap();

        for (label, run) in [("noop", &noop), ("metrics", &observed)] {
            let ctx = format!("{kind} n={n} {alg:?} [{label}]");
            assert_eq!(
                baseline.cost.to_bits(),
                run.cost.to_bits(),
                "cost differs: {ctx}"
            );
            assert_eq!(
                baseline.cardinality.to_bits(),
                run.cardinality.to_bits(),
                "cardinality differs: {ctx}"
            );
            assert_eq!(baseline.counters, run.counters, "counters differ: {ctx}");
            assert_eq!(baseline.tree, run.tree, "plan differs: {ctx}");
            assert_eq!(
                baseline.table_size, run.table_size,
                "table size differs: {ctx}"
            );
            assert_eq!(
                baseline.plans_built, run.plans_built,
                "arena differs: {ctx}"
            );
        }
    }
}

#[test]
fn disabled_observer_path_emits_nothing_and_allocates_nothing_extra() {
    let w = workload::family_workload(GraphKind::Star, 10, 0);

    // Warm up lazy allocations (thread-local scratch, etc.) so the
    // measured runs see a steady state.
    DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();

    let before_a = allocs();
    let a = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
    let default_allocs = allocs() - before_a;

    let before_b = allocs();
    // DisabledObserver panics on any event, so this run doubles as proof
    // that the disabled path emits nothing.
    let b = DpCcp
        .optimize_observed(&w.graph, &w.catalog, &Cout, &DisabledObserver)
        .unwrap();
    let disabled_allocs = allocs() - before_b;

    // Identical allocation traffic: a disabled observer costs nothing
    // beyond the default (NoopObserver) path, which is itself the
    // uninstrumented algorithm — no level vectors, no event payloads.
    assert_eq!(
        default_allocs, disabled_allocs,
        "disabled observer changed allocation count ({default_allocs} vs {disabled_allocs})"
    );
    assert_eq!(a.cost.to_bits(), b.cost.to_bits());
    assert_eq!(a.counters, b.counters);

    // Sanity check that the counter instrument actually measures this
    // thread: an enabled collector must allocate (level vector, report
    // state).
    let metrics = MetricsCollector::new();
    let before_c = allocs();
    DpCcp
        .optimize_observed(&w.graph, &w.catalog, &Cout, &metrics)
        .unwrap();
    let enabled_allocs = allocs() - before_c;
    assert!(
        enabled_allocs > disabled_allocs,
        "enabled run should allocate more ({enabled_allocs} vs {disabled_allocs})"
    );
}

// ---------------------------------------------------------------------
// Event-stream shape.
// ---------------------------------------------------------------------

#[test]
fn every_algorithm_emits_a_well_formed_event_stream() {
    let w = workload::random_workload(7, 0.5, 11);
    for alg in Algorithm::CONCRETE {
        let sink = Sink::default();
        alg.orderer(&w.graph)
            .optimize_observed(&w.graph, &w.catalog, &Cout, &sink)
            .unwrap();
        let names = sink.names.borrow();
        let ctx = format!("{alg:?}: {names:?}");

        assert_eq!(names.first(), Some(&"run_start"), "{ctx}");
        assert_eq!(names.last(), Some(&"run_end"), "{ctx}");
        assert_eq!(
            names.iter().filter(|n| **n == "run_start").count(),
            1,
            "{ctx}"
        );
        assert_eq!(
            names.iter().filter(|n| **n == "run_end").count(),
            1,
            "{ctx}"
        );
        // Phase spans balance and every span closes before the next
        // opens (no nesting in the v1 vocabulary).
        let mut open = 0i64;
        for n in names.iter() {
            match *n {
                "phase_start" => {
                    open += 1;
                    assert_eq!(open, 1, "nested phase span: {ctx}");
                }
                "phase_end" => {
                    open -= 1;
                    assert_eq!(open, 0, "unmatched phase_end: {ctx}");
                }
                _ => {}
            }
        }
        assert_eq!(open, 0, "unclosed phase span: {ctx}");
        assert_eq!(
            names.iter().filter(|n| **n == "final_counters").count(),
            1,
            "{ctx}"
        );
        assert!(names.contains(&"arena_stats"), "{ctx}");
    }
}

#[test]
fn dpccp_phase_sequence_matches_contract() {
    let w = workload::family_workload(GraphKind::Chain, 6, 0);
    let metrics = MetricsCollector::new();
    DpCcp
        .optimize_observed(&w.graph, &w.catalog, &Cout, &metrics)
        .unwrap();
    let phases: Vec<&str> = metrics.report().phases.iter().map(|p| p.name).collect();
    assert_eq!(phases, ["init", "enumerate", "extract"]);
}

// ---------------------------------------------------------------------
// MetricsCollector on a real DPccp run (the ISSUE acceptance case).
// ---------------------------------------------------------------------

#[test]
fn metrics_collector_reports_dpccp_star_12() {
    let w = workload::family_workload(GraphKind::Star, 12, 0);
    let metrics = MetricsCollector::new();
    let result = DpCcp
        .optimize_observed(&w.graph, &w.catalog, &Cout, &metrics)
        .unwrap();
    let report = metrics.report();

    assert_eq!(report.algorithm, "DPccp");
    assert_eq!(report.relations, 12);

    // ≥ 3 named phase spans with a monotonic clock.
    assert!(report.phases.len() >= 3, "phases: {:?}", report.phases);
    for name in ["init", "enumerate", "extract"] {
        assert!(report.phase(name).is_some(), "missing phase {name}");
    }
    let mut last_end = 0;
    for p in &report.phases {
        assert!(p.start_ns <= p.end_ns);
        assert!(
            p.start_ns >= last_end,
            "overlapping spans: {:?}",
            report.phases
        );
        last_end = p.end_ns;
    }
    assert!(report.total_ns >= last_end);

    // Per-size entry counts sum to the DP-table total. A 12-star admits
    // connected subgraphs of every size 1..=12 (hub + any spoke subset).
    assert_eq!(report.levels.len(), 12);
    assert_eq!(report.level_total(), report.table_entries as u64);
    assert_eq!(report.table_entries, result.table_size);

    // Table probe/hit stats: DPccp probes each ccp's union once, and
    // both orientations of a pair share one table entry, so roughly half
    // the probes hit.
    assert!(report.table_probes > 0);
    assert!(report.table_hits > 0);
    assert!(report.table_hits < report.table_probes);
    assert!(report.table_capacity >= report.table_entries);
    assert!(report.occupancy() > 0.0 && report.occupancy() <= 1.0);

    // Arena accounting.
    assert_eq!(report.arena_nodes, result.plans_built);
    assert!(report.arena_bytes > 0);

    // Final counters mirror the DpResult.
    assert_eq!(report.counter_inner, result.counters.inner);
    assert_eq!(report.counter_csg_cmp_pairs, result.counters.csg_cmp_pairs);
    assert_eq!(report.counter_ono_lohman, result.counters.ono_lohman);

    // The report serializes and round-trips through the JSONL parser.
    let line = report.to_json_line();
    let v = JsonValue::parse(&line).unwrap();
    assert_eq!(v.get("algorithm").unwrap().as_str(), Some("DPccp"));
    assert_eq!(
        v.get("table").unwrap().get("entries").unwrap().as_u64(),
        Some(result.table_size as u64)
    );
}

// ---------------------------------------------------------------------
// TraceWriter on a real run.
// ---------------------------------------------------------------------

#[test]
fn trace_writer_round_trips_on_real_run() {
    let w = workload::family_workload(GraphKind::Cycle, 8, 3);
    let trace = TraceWriter::new(Vec::new());
    DpCcp
        .optimize_observed(&w.graph, &w.catalog, &Cout, &trace)
        .unwrap();
    let bytes = trace.finish().unwrap();
    let text = String::from_utf8(bytes).unwrap();

    let mut last_elapsed = 0;
    let mut events = Vec::new();
    for line in text.lines() {
        let v = JsonValue::parse(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
        let event = v
            .get("event")
            .and_then(|e| e.as_str())
            .expect("event field");
        assert!(
            v.get("phase").and_then(|p| p.as_str()).is_some(),
            "phase field: {line}"
        );
        let elapsed = v
            .get("elapsed_ns")
            .and_then(|e| e.as_u64())
            .expect("elapsed_ns field");
        assert!(elapsed >= last_elapsed, "non-monotonic elapsed_ns: {line}");
        last_elapsed = elapsed;
        events.push(event.to_string());
    }
    assert_eq!(events.first().map(String::as_str), Some("run_start"));
    assert_eq!(events.last().map(String::as_str), Some("run_end"));
    assert!(events.iter().any(|e| e == "dp_level"));
    assert!(events.iter().any(|e| e == "table_stats"));
}

// ---------------------------------------------------------------------
// Parallel-engine profiling: zero-overhead guard, worker events, batch.
// ---------------------------------------------------------------------

use std::sync::Mutex;

use joinopt_core::parallel::engine_clock_reads;
use joinopt_core::{OptimizeRequest, Optimizer};

/// Serializes the tests that observe [`engine_clock_reads`] — the
/// counter is process-global, so a concurrently running *observed*
/// engine test would make the zero-delta assertion flaky.
static ENGINE_CLOCK: Mutex<()> = Mutex::new(());

fn engine_run(
    w: &workload::Workload,
    threads: usize,
    obs: &dyn Observer,
) -> joinopt_core::DpResult {
    OptimizeRequest::new(&w.graph, &w.catalog)
        .with_algorithm(Algorithm::DpSub)
        .with_threads(threads)
        .with_observer(obs)
        .run()
        .unwrap()
        .into_result()
}

#[test]
fn unobserved_engine_reads_no_clocks_and_stays_bit_identical() {
    let _serial = ENGINE_CLOCK.lock().unwrap_or_else(|p| p.into_inner());
    let w = workload::family_workload(GraphKind::Star, 12, 0);

    let metrics = MetricsCollector::new();
    let observed = engine_run(&w, 4, &metrics);

    // A NoopObserver run must never touch the profiling clock: every
    // engine clock read funnels through one counter precisely so this
    // test can pin the unobserved path to zero.
    let before = engine_clock_reads();
    let plain = engine_run(&w, 4, &NoopObserver);
    assert_eq!(
        engine_clock_reads() - before,
        0,
        "unobserved engine run read the profiling clock"
    );

    // And instrumentation must not change what is computed.
    assert_eq!(plain.cost.to_bits(), observed.cost.to_bits());
    assert_eq!(plain.counters, observed.counters);
    assert_eq!(plain.tree, observed.tree);
    assert_eq!(plain.table_size, observed.table_size);
}

/// (level, worker, thread_id, sets, service_ns, inner, pairs)
type ChunkSample = (usize, usize, u64, usize, u64, u64, u64);
/// (level, workers, max_service_ns, total_service_ns, idle_ns)
type SyncSample = (usize, usize, u64, u64, u64);

/// Records every worker-chunk and level-sync payload.
#[derive(Default)]
struct WorkerSink {
    chunks: RefCell<Vec<ChunkSample>>,
    syncs: RefCell<Vec<SyncSample>>,
}

impl Observer for WorkerSink {
    fn on_event(&self, event: Event) {
        match event {
            Event::WorkerChunk {
                level,
                worker,
                thread_id,
                sets,
                service_ns,
                inner,
                pairs,
            } => self
                .chunks
                .borrow_mut()
                .push((level, worker, thread_id, sets, service_ns, inner, pairs)),
            Event::LevelSync {
                level,
                workers,
                max_service_ns,
                total_service_ns,
                idle_ns,
                ..
            } => self.syncs.borrow_mut().push((
                level,
                workers,
                max_service_ns,
                total_service_ns,
                idle_ns,
            )),
            _ => {}
        }
    }
}

#[test]
fn engine_emits_per_worker_profile_with_consistent_rollups() {
    let _serial = ENGINE_CLOCK.lock().unwrap_or_else(|p| p.into_inner());
    let w = workload::family_workload(GraphKind::Star, 12, 0);
    let sink = WorkerSink::default();
    let result = engine_run(&w, 4, &sink);

    let chunks = sink.chunks.borrow();
    let syncs = sink.syncs.borrow();

    // One level_sync per level 2..=n, in ascending level order.
    let n = 12;
    assert_eq!(syncs.len(), n - 1, "{syncs:?}");
    for (i, s) in syncs.iter().enumerate() {
        assert_eq!(s.0, i + 2, "levels out of order: {syncs:?}");
    }
    // Big middle levels (hundreds of sets) must actually fan out.
    assert!(
        syncs.iter().any(|s| s.1 == 4),
        "no level used all 4 workers: {syncs:?}"
    );

    for &(level, workers, max_service, total_service, idle) in syncs.iter() {
        let level_chunks: Vec<_> = chunks.iter().filter(|c| c.0 == level).collect();
        // One worker_chunk per worker, in worker order.
        assert_eq!(level_chunks.len(), workers, "level {level}");
        for (w_idx, c) in level_chunks.iter().enumerate() {
            assert_eq!(c.1, w_idx, "worker order broken at level {level}");
        }
        // The rollup is exactly the fold of its chunks.
        assert_eq!(
            max_service,
            level_chunks.iter().map(|c| c.4).max().unwrap_or(0),
            "level {level}"
        );
        assert_eq!(
            total_service,
            level_chunks.iter().map(|c| c.4).sum::<u64>(),
            "level {level}"
        );
        assert_eq!(
            idle,
            workers as u64 * max_service - total_service,
            "level {level}"
        );
        // Concurrent workers ran on distinct threads.
        if workers > 1 {
            let mut tids: Vec<u64> = level_chunks.iter().map(|c| c.2).collect();
            tids.sort_unstable();
            tids.dedup();
            assert_eq!(tids.len(), workers, "shared thread ids at level {level}");
        }
    }

    // Per-chunk counters sum to the run's final counters.
    assert_eq!(
        chunks.iter().map(|c| c.5).sum::<u64>(),
        result.counters.inner
    );
    assert_eq!(
        chunks.iter().map(|c| c.6).sum::<u64>(),
        result.counters.csg_cmp_pairs
    );
}

#[test]
fn batch_observed_traces_tag_every_run_with_a_thread_id() {
    let make = |n: usize, seed: u64| workload::family_workload(GraphKind::Chain, n, seed);
    let workloads = [make(6, 0), make(7, 1), make(8, 2), make(6, 3)];
    let pairs: Vec<_> = workloads.iter().map(|w| (&w.graph, &w.catalog)).collect();

    let optimizer = Optimizer::new();
    let trace = TraceWriter::new(Vec::new());
    let results = optimizer.optimize_batch_observed(&pairs, &trace);
    assert_eq!(results.len(), 4);
    for r in &results {
        assert!(r.is_ok());
    }
    let text = String::from_utf8(trace.finish().unwrap()).unwrap();

    let mut starts = 0usize;
    let mut tids = Vec::new();
    for line in text.lines() {
        let v = JsonValue::parse(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
        let tid = v
            .get("thread_id")
            .and_then(|t| t.as_u64())
            .expect("thread_id on every event");
        tids.push(tid);
        if v.get("event").and_then(|e| e.as_str()) == Some("run_start") {
            starts += 1;
        }
    }
    // One run per query, and the events came from the pooled batch
    // workers, not the coordinating thread alone.
    assert_eq!(starts, 4, "{text}");
    tids.sort_unstable();
    tids.dedup();
    assert!(!tids.is_empty());
}
