//! The instrumentation counters of the paper's pseudocode.

use core::fmt;

/// `InnerCounter`, `CsgCmpPairCounter` and `OnoLohmanCounter`, with the
/// exact semantics of the paper's Figures 1, 2 and 4:
///
/// * `inner` — incremented once per innermost-loop iteration, *before*
///   any test; this measures the real time complexity of an algorithm;
/// * `csg_cmp_pairs` — incremented once per **oriented** csg-cmp-pair
///   that survives all tests; identical for every correct algorithm on a
///   given graph (it is a property of the graph, `#ccp`);
/// * `ono_lohman` — `csg_cmp_pairs / 2`: the count with symmetric pairs
///   excluded, as reported by Ono & Lohman and listed in Figure 3. It is
///   the lower bound on `CreateJoinTree` calls for any DP algorithm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Innermost-loop iterations (`InnerCounter`).
    pub inner: u64,
    /// Oriented csg-cmp-pairs found (`CsgCmpPairCounter`).
    pub csg_cmp_pairs: u64,
    /// Unordered csg-cmp-pairs found (`OnoLohmanCounter`).
    pub ono_lohman: u64,
}

impl Counters {
    /// Fresh, all-zero counters.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Ratio of useful innermost iterations (`#ccp / InnerCounter` with
    /// symmetric pairs included): 1.0 means the algorithm performs no
    /// wasted work, which is exactly DPccp's design goal.
    pub fn hit_rate(&self) -> f64 {
        if self.inner == 0 {
            0.0
        } else {
            // DPccp counts unordered pairs in `inner`; for it the useful
            // work per iteration is one unordered pair.
            let useful = self.ono_lohman.max(self.csg_cmp_pairs / 2);
            useful as f64 / self.inner as f64
        }
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "inner={} csgCmpPairs={} onoLohman={}",
            self.inner, self.csg_cmp_pairs, self.ono_lohman
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero() {
        let c = Counters::new();
        assert_eq!(c.inner, 0);
        assert_eq!(c.csg_cmp_pairs, 0);
        assert_eq!(c.ono_lohman, 0);
        assert_eq!(c.hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_computation() {
        let c = Counters { inner: 100, csg_cmp_pairs: 40, ono_lohman: 20 };
        assert!((c.hit_rate() - 0.2).abs() < 1e-12);
        // DPccp-style counters: inner == ono_lohman.
        let perfect = Counters { inner: 20, csg_cmp_pairs: 40, ono_lohman: 20 };
        assert_eq!(perfect.hit_rate(), 1.0);
    }

    #[test]
    fn display_mentions_all_fields() {
        let c = Counters { inner: 1, csg_cmp_pairs: 2, ono_lohman: 3 };
        let s = c.to_string();
        assert!(s.contains("inner=1") && s.contains("csgCmpPairs=2") && s.contains("onoLohman=3"));
    }
}
