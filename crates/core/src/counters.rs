//! The instrumentation counters of the paper's pseudocode.

use core::fmt;

/// `InnerCounter`, `CsgCmpPairCounter` and `OnoLohmanCounter`, with the
/// exact semantics of the paper's Figures 1, 2 and 4:
///
/// * `inner` — incremented once per innermost-loop iteration, *before*
///   any test; this measures the real time complexity of an algorithm;
/// * `csg_cmp_pairs` — incremented once per **oriented** csg-cmp-pair
///   that survives all tests; identical for every correct algorithm on a
///   given graph (it is a property of the graph, `#ccp`);
/// * `ono_lohman` — `csg_cmp_pairs / 2`: the count with symmetric pairs
///   excluded, as reported by Ono & Lohman and listed in Figure 3. It is
///   the lower bound on `CreateJoinTree` calls for any DP algorithm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Innermost-loop iterations (`InnerCounter`).
    pub inner: u64,
    /// Oriented csg-cmp-pairs found (`CsgCmpPairCounter`).
    pub csg_cmp_pairs: u64,
    /// Unordered csg-cmp-pairs found (`OnoLohmanCounter`).
    pub ono_lohman: u64,
}

impl Counters {
    /// Fresh, all-zero counters.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Ratio of useful innermost iterations
    /// (`OnoLohmanCounter / InnerCounter`): 1.0 means every innermost
    /// iteration produced a distinct unordered csg-cmp-pair — no wasted
    /// work, which is exactly DPccp's design goal. DPsize and DPsub
    /// reject most iterations on non-clique graphs, so their rate drops
    /// well below 1 there.
    ///
    /// Every enumerator fills `ono_lohman` with the count of distinct
    /// unordered pairs it evaluated, so this is a plain quotient — no
    /// convention-specific fallbacks.
    pub fn hit_rate(&self) -> f64 {
        if self.inner == 0 {
            0.0
        } else {
            self.ono_lohman as f64 / self.inner as f64
        }
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "inner={} csgCmpPairs={} onoLohman={}",
            self.inner, self.csg_cmp_pairs, self.ono_lohman
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero() {
        let c = Counters::new();
        assert_eq!(c.inner, 0);
        assert_eq!(c.csg_cmp_pairs, 0);
        assert_eq!(c.ono_lohman, 0);
        assert_eq!(c.hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_computation() {
        let c = Counters {
            inner: 100,
            csg_cmp_pairs: 40,
            ono_lohman: 20,
        };
        assert!((c.hit_rate() - 0.2).abs() < 1e-12);
        // DPccp-style counters: inner == ono_lohman.
        let perfect = Counters {
            inner: 20,
            csg_cmp_pairs: 40,
            ono_lohman: 20,
        };
        assert_eq!(perfect.hit_rate(), 1.0);
    }

    #[test]
    fn display_mentions_all_fields() {
        let c = Counters {
            inner: 1,
            csg_cmp_pairs: 2,
            ono_lohman: 3,
        };
        let s = c.to_string();
        assert!(s.contains("inner=1") && s.contains("csgCmpPairs=2") && s.contains("onoLohman=3"));
    }

    #[test]
    fn hit_rate_is_one_for_dpccp_and_below_one_for_dpsize_dpsub() {
        use crate::{DpCcp, DpSize, DpSub, JoinOrderer};
        use joinopt_cost::{workload, Cout};
        use joinopt_qgraph::GraphKind;

        let w = workload::family_workload(GraphKind::Chain, 10, 0);
        let ccp = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        assert!(
            (ccp.counters.hit_rate() - 1.0).abs() < 1e-12,
            "DPccp wastes no innermost iterations: {}",
            ccp.counters.hit_rate()
        );
        for (name, r) in [
            (
                "DPsize",
                DpSize.optimize(&w.graph, &w.catalog, &Cout).unwrap(),
            ),
            (
                "DPsub",
                DpSub.optimize(&w.graph, &w.catalog, &Cout).unwrap(),
            ),
        ] {
            let rate = r.counters.hit_rate();
            assert!(
                rate > 0.0 && rate < 1.0,
                "{name} on a 10-chain must reject some iterations (rate {rate})"
            );
        }
    }
}
