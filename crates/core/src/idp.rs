//! IDP — Iterative Dynamic Programming (Kossmann & Stocker, TODS 2000).
//!
//! The paper's intro cites iterative DP as the standard answer to
//! queries too large for exact dynamic programming: run *bounded* DP up
//! to a block size `k`, commit the cheapest largest sub-plan as a new
//! compound "relation", and iterate until one plan remains (the IDP-1
//! balanced variant). With `k ≥ n` it degenerates to exact DP; with
//! small `k` it runs in polynomial time and produces near-optimal bushy
//! trees, smoothly trading optimality for time.
//!
//! The implementation works over *components* (initially the base
//! relations), each carrying a relation set and its best plan. Bounded
//! DP enumerates connected component-subsets size-by-size, exactly like
//! DPsize, with connectivity and cardinalities delegated to the
//! underlying query graph — so no cross products are ever introduced.

use joinopt_cost::{ensure_finite, CardinalityEstimator, Catalog, CostModel, PlanStats};
use joinopt_plan::{PlanArena, PlanId};
use joinopt_qgraph::QueryGraph;
use joinopt_relset::RelSet;
use joinopt_telemetry::Observer;

use crate::cancel::CancellationToken;
use crate::counters::Counters;
use crate::driver::Spans;
use crate::error::OptimizeError;
use crate::failpoint;
use crate::result::{DpResult, JoinOrderer};
use crate::table::{DpTable, PlanTable, TableEntry};

/// Iterative dynamic programming (IDP-1) with a configurable block size.
#[derive(Debug, Clone, Copy)]
pub struct Idp {
    block_size: usize,
}

impl Default for Idp {
    fn default() -> Self {
        Idp::with_block_size(10)
    }
}

impl Idp {
    /// Creates an IDP optimizer that runs exact DP over at most `k`
    /// components per round. Values below 2 are treated as 2.
    pub const fn with_block_size(k: usize) -> Idp {
        Idp {
            block_size: if k < 2 { 2 } else { k },
        }
    }

    /// The configured block size.
    pub fn block_size(&self) -> usize {
        self.block_size
    }
}

#[derive(Clone, Copy)]
struct Component {
    rels: RelSet,
    plan: PlanId,
    stats: PlanStats,
}

impl JoinOrderer for Idp {
    fn name(&self) -> &'static str {
        "IDP"
    }

    fn optimize_controlled(
        &self,
        g: &QueryGraph,
        catalog: &Catalog,
        model: &dyn CostModel,
        obs: &dyn Observer,
        ctl: &CancellationToken,
    ) -> Result<DpResult, OptimizeError> {
        let spans = Spans::start(obs, self.name(), g.num_relations());
        let provenance = obs.enabled() && obs.wants_provenance();
        spans.begin("init");
        if g.num_relations() == 0 {
            return Err(OptimizeError::EmptyQuery);
        }
        g.require_connected()?;
        ctl.check()?;
        failpoint::check("estimator")?;
        let est = CardinalityEstimator::new(g, catalog)?;
        let n = g.num_relations();
        let mut arena = PlanArena::with_capacity(4 * n);
        let mut counters = Counters::new();
        let mut table_high_water = 0usize;
        let mut pace = 0u32;
        // High-water mark of table + arena bytes charged so far; per-round
        // tables release their storage but the budget is not refunded.
        let mut charged = 0usize;

        let mut comps: Vec<Component> = (0..n)
            .map(|i| {
                let card = est.base_cardinality(i);
                Component {
                    rels: RelSet::single(i),
                    plan: arena.add_scan(i, card),
                    stats: PlanStats::base(card),
                }
            })
            .collect();
        spans.end("init");

        spans.begin("enumerate");
        while comps.len() > 1 {
            let m = comps.len();
            let cap = self.block_size.min(m);
            // Bounded DPsize over component-index masks. `table` maps a
            // component mask to the best plan joining those components.
            let mut table = DpTable::new();
            // Each level stores (component mask, covered relation set).
            let mut by_size: Vec<Vec<(RelSet, RelSet)>> = vec![Vec::new(); cap + 1];
            for (ci, comp) in comps.iter().enumerate() {
                let mask = RelSet::single(ci);
                table.insert(
                    mask,
                    TableEntry {
                        plan: comp.plan,
                        stats: comp.stats,
                    },
                );
                by_size[1].push((mask, comp.rels));
            }

            for s in 2..=cap {
                for s1 in 1..=s / 2 {
                    let s2 = s - s1;
                    let (lo, hi) = (0, by_size[s1].len());
                    for i in lo..hi {
                        let (a, ra) = by_size[s1][i];
                        let j0 = if s1 == s2 { i + 1 } else { 0 };
                        for j in j0..by_size[s2].len() {
                            let (b, rb) = by_size[s2][j];
                            counters.inner += 1;
                            ctl.checkpoint(&mut pace)?;
                            if a.overlaps(b) {
                                continue;
                            }
                            if !g.sets_connected(ra, rb) {
                                continue;
                            }
                            counters.csg_cmp_pairs += 2;
                            counters.ono_lohman += 1;
                            let (Some(e1), Some(e2)) =
                                (table.get(a).copied(), table.get(b).copied())
                            else {
                                return Err(OptimizeError::Internal(
                                    "IDP operand missing from the round table".into(),
                                ));
                            };
                            let union = a | b;
                            let (out, incumbent) = match table.get(union) {
                                Some(ex) => (ex.stats.cardinality, Some(ex.stats.cost)),
                                None => (
                                    ensure_finite(
                                        "cardinality",
                                        est.join_cardinality(
                                            e1.stats.cardinality,
                                            e2.stats.cardinality,
                                            ra,
                                            rb,
                                        ),
                                    )?,
                                    None,
                                ),
                            };
                            let c12 =
                                ensure_finite("cost", model.join_cost(&e1.stats, &e2.stats, out))?;
                            let (cost, l, r, rl, rr) = if model.is_symmetric() {
                                (c12, &e1, &e2, ra, rb)
                            } else {
                                let c21 = ensure_finite(
                                    "cost",
                                    model.join_cost(&e2.stats, &e1.stats, out),
                                )?;
                                if c21 < c12 {
                                    (c21, &e2, &e1, rb, ra)
                                } else {
                                    (c12, &e1, &e2, ra, rb)
                                }
                            };
                            let accepted = incumbent.is_none_or(|best| cost < best);
                            if provenance {
                                // Provenance speaks relation sets, not
                                // this round's component masks.
                                obs.on_event(joinopt_telemetry::Event::PlanCandidate {
                                    set: (ra | rb).bits(),
                                    left: rl.bits(),
                                    right: rr.bits(),
                                    cost,
                                    accepted,
                                });
                            }
                            if accepted {
                                let stats = PlanStats {
                                    cardinality: out,
                                    cost,
                                };
                                let plan = arena.add_join(l.plan, r.plan, stats);
                                failpoint::check("table-insert")?;
                                table.insert(union, TableEntry { plan, stats });
                                let now = arena.bytes() + table.bytes();
                                if now > charged {
                                    ctl.charge(now - charged)?;
                                    charged = now;
                                }
                            }
                            if incumbent.is_none() {
                                by_size[s].push((union, ra | rb));
                            }
                        }
                    }
                }
            }
            table_high_water = table_high_water.max(table.len());

            // Commit the cheapest plan of the largest size reached.
            let Some(level) = by_size.iter().rev().find(|lvl| !lvl.is_empty()) else {
                return Err(OptimizeError::Internal(
                    "IDP round produced no plans at any size".into(),
                ));
            };
            let mut best: Option<(RelSet, RelSet, TableEntry)> = None;
            for &(mask, rels) in level {
                let Some(entry) = table.get(mask).copied() else {
                    return Err(OptimizeError::Internal(
                        "IDP committed mask missing from the round table".into(),
                    ));
                };
                // `total_cmp` keeps the first of equally cheap plans, as
                // the previous `min_by` did; costs are finite by the
                // `ensure_finite` guards above.
                if best
                    .as_ref()
                    .is_none_or(|(_, _, b)| entry.stats.cost.total_cmp(&b.stats.cost).is_lt())
                {
                    best = Some((mask, rels, entry));
                }
            }
            let Some((best_mask, best_rels, best_entry)) = best else {
                return Err(OptimizeError::Internal(
                    "IDP found no committable plan in a non-empty level".into(),
                ));
            };
            if best_mask.is_singleton() {
                // Cannot happen for a connected graph with ≥ 2 components:
                // size-2 plans always exist. Defensive guard.
                unreachable!("bounded DP failed to combine any components");
            }
            let merged = Component {
                rels: best_rels,
                plan: best_entry.plan,
                stats: best_entry.stats,
            };
            let mut next: Vec<Component> = comps
                .iter()
                .enumerate()
                .filter(|(ci, _)| !best_mask.contains(*ci))
                .map(|(_, c)| *c)
                .collect();
            next.push(merged);
            comps = next;
        }
        spans.end("enumerate");

        let top = comps[0];
        spans.begin("extract");
        let tree = arena.extract(top.plan);
        spans.end("extract");
        spans.arena_stats(&arena);
        spans.finish(&counters);
        Ok(DpResult {
            tree,
            cost: top.stats.cost,
            cardinality: top.stats.cardinality,
            counters,
            table_size: table_high_water,
            plans_built: arena.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DpCcp, JoinOrderer};
    use joinopt_cost::{workload, Cout, HashJoin};
    use joinopt_qgraph::GraphKind;
    use std::time::Instant;

    #[test]
    fn block_size_clamped() {
        assert_eq!(Idp::with_block_size(0).block_size(), 2);
        assert_eq!(Idp::with_block_size(7).block_size(), 7);
        assert_eq!(Idp::default().block_size(), 10);
    }

    #[test]
    fn exact_when_block_covers_query() {
        for kind in GraphKind::ALL {
            for seed in 0..4 {
                let w = workload::family_workload(kind, 8, seed);
                let idp = Idp::with_block_size(8)
                    .optimize(&w.graph, &w.catalog, &Cout)
                    .unwrap();
                let opt = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
                let tol = 1e-9 * opt.cost.abs().max(1.0);
                assert!(
                    (idp.cost - opt.cost).abs() <= tol,
                    "{kind} seed {seed}: {} vs {}",
                    idp.cost,
                    opt.cost
                );
            }
        }
    }

    #[test]
    fn never_better_than_optimal_and_valid() {
        for seed in 0..15 {
            let w = workload::random_workload(10, 0.3, seed);
            let idp = Idp::with_block_size(4)
                .optimize(&w.graph, &w.catalog, &Cout)
                .unwrap();
            let opt = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
            assert!(
                idp.cost >= opt.cost - 1e-9 * opt.cost.abs().max(1.0),
                "seed {seed}"
            );
            assert_eq!(idp.tree.relations(), w.graph.all_relations());
            assert_eq!(idp.tree.num_joins(), 9);
            // No cross products.
            fn check(g: &joinopt_qgraph::QueryGraph, t: &joinopt_plan::JoinTree) {
                if let joinopt_plan::JoinTree::Join { left, right, .. } = t {
                    assert!(g.sets_connected(left.relations(), right.relations()));
                    check(g, left);
                    check(g, right);
                }
            }
            check(&w.graph, &idp.tree);
        }
    }

    #[test]
    fn larger_blocks_do_not_hurt_much() {
        // Bigger k explores strictly more per round; require it to be at
        // least as good on average (allow per-seed noise).
        let mut sum_small = 0.0;
        let mut sum_large = 0.0;
        for seed in 0..20 {
            let w = workload::random_workload(12, 0.25, seed);
            let small = Idp::with_block_size(3)
                .optimize(&w.graph, &w.catalog, &Cout)
                .unwrap();
            let large = Idp::with_block_size(8)
                .optimize(&w.graph, &w.catalog, &Cout)
                .unwrap();
            let opt = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
            sum_small += small.cost / opt.cost;
            sum_large += large.cost / opt.cost;
        }
        assert!(
            sum_large <= sum_small + 1e-6,
            "k=8 (avg ratio {:.3}) worse than k=3 (avg ratio {:.3})",
            sum_large / 20.0,
            sum_small / 20.0
        );
    }

    #[test]
    fn scales_beyond_exact_dp() {
        // A 25-relation clique is far beyond exact DP (3²⁵ ≈ 8·10¹¹
        // subset steps); IDP with k = 3 finishes in well under a second
        // even unoptimized. (The release-mode benches push this to 40+.)
        let w = workload::family_workload(GraphKind::Clique, 25, 1);
        let start = Instant::now();
        let r = Idp::with_block_size(3)
            .optimize(&w.graph, &w.catalog, &Cout)
            .unwrap();
        assert!(start.elapsed().as_secs() < 20, "took {:?}", start.elapsed());
        assert_eq!(r.tree.num_relations(), 25);
        assert!(r.cost.is_finite());
        // And a 40-relation chain with a bigger block.
        let w = workload::family_workload(GraphKind::Chain, 40, 1);
        let r = Idp::with_block_size(6)
            .optimize(&w.graph, &w.catalog, &Cout)
            .unwrap();
        assert_eq!(r.tree.num_relations(), 40);
    }

    #[test]
    fn works_with_asymmetric_models() {
        let w = workload::random_workload(9, 0.4, 5);
        let r = Idp::with_block_size(5)
            .optimize(&w.graph, &w.catalog, &HashJoin)
            .unwrap();
        assert!(r.cost.is_finite() && r.cost > 0.0);
    }

    #[test]
    fn rejects_invalid_inputs() {
        let g = QueryGraph::new(0).unwrap();
        assert!(Idp::default()
            .optimize(&g, &Catalog::new(&g), &Cout)
            .is_err());
        let disc = QueryGraph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(Idp::default()
            .optimize(&disc, &Catalog::new(&disc), &Cout)
            .is_err());
    }

    #[test]
    fn single_relation() {
        let w = workload::family_workload(GraphKind::Chain, 1, 0);
        let r = Idp::default()
            .optimize(&w.graph, &w.catalog, &Cout)
            .unwrap();
        assert_eq!(r.tree.num_joins(), 0);
    }
}
