//! An independent brute-force oracle for the test suite.
//!
//! The three DP algorithms share the driver plumbing, so a bug there
//! could make them agree *and* be wrong. This module computes optimal
//! costs through a structurally different path — top-down memoized
//! recursion over canonical splits, with connectivity checked directly
//! against the graph — and is used by the integration tests as the
//! ground truth for `n ≤ 10`.

use std::collections::HashMap;

use joinopt_cost::{CardinalityEstimator, Catalog, CostModel, PlanStats};
use joinopt_qgraph::QueryGraph;
use joinopt_relset::RelSet;

use crate::error::OptimizeError;

/// Computes the cost of an optimal bushy join tree for `g` without cross
/// products, by top-down recursion.
///
/// # Errors
///
/// Fails for empty or disconnected graphs or mismatched catalogs.
pub fn optimal_cost(
    g: &QueryGraph,
    catalog: &Catalog,
    model: &dyn CostModel,
) -> Result<f64, OptimizeError> {
    optimal_cost_impl(g, catalog, model, false)
}

/// Like [`optimal_cost`] but allowing cross products (any disjoint split
/// is a legal join). Defined for disconnected graphs too.
///
/// # Errors
///
/// Fails for empty graphs or mismatched catalogs.
pub fn optimal_cost_with_cross_products(
    g: &QueryGraph,
    catalog: &Catalog,
    model: &dyn CostModel,
) -> Result<f64, OptimizeError> {
    optimal_cost_impl(g, catalog, model, true)
}

/// Brute-force oracle for hypergraph workloads: returns `Ok(None)` when
/// no cross-product-free bushy tree exists (the buildability gap the
/// hypergraph module documents), otherwise the optimal cost.
///
/// # Errors
///
/// Fails for empty hypergraphs or mismatched catalogs.
pub fn optimal_cost_hypergraph(
    h: &joinopt_qgraph::hypergraph::Hypergraph,
    catalog: &Catalog,
    model: &dyn CostModel,
) -> Result<Option<f64>, OptimizeError> {
    use joinopt_cost::HyperCardinalityEstimator;

    if h.num_relations() == 0 {
        return Err(OptimizeError::EmptyQuery);
    }
    let est = HyperCardinalityEstimator::new(h, catalog)?;

    fn best_hyper(
        h: &joinopt_qgraph::hypergraph::Hypergraph,
        est: &HyperCardinalityEstimator,
        model: &dyn CostModel,
        s: RelSet,
        memo: &mut HashMap<RelSet, PlanStats>,
    ) -> Option<PlanStats> {
        if let Some(&hit) = memo.get(&s) {
            return (hit.cost < f64::INFINITY).then_some(hit);
        }
        if s.is_singleton() {
            let stats = PlanStats::base(est.base_cardinality(s.min_index()?));
            memo.insert(s, stats);
            return Some(stats);
        }
        let anchor = s.lowest();
        let rest = s - anchor;
        let mut best_stats: Option<PlanStats> = None;
        for sub in rest.subsets() {
            let s1 = anchor | sub;
            if s1 == s {
                continue;
            }
            let s2 = s - s1;
            if !h.connects(s1, s2) {
                continue;
            }
            let Some(p1) = best_hyper(h, est, model, s1, memo) else {
                continue;
            };
            let Some(p2) = best_hyper(h, est, model, s2, memo) else {
                continue;
            };
            let out = est.join_cardinality(p1.cardinality, p2.cardinality, s1, s2);
            let cost = model
                .join_cost(&p1, &p2, out)
                .min(model.join_cost(&p2, &p1, out));
            if best_stats.is_none_or(|b| cost < b.cost) {
                best_stats = Some(PlanStats {
                    cardinality: out,
                    cost,
                });
            }
        }
        memo.insert(
            s,
            best_stats.unwrap_or(PlanStats {
                cardinality: 0.0,
                cost: f64::INFINITY,
            }),
        );
        best_stats
    }

    let mut memo = HashMap::new();
    Ok(best_hyper(h, &est, model, h.all_relations(), &mut memo).map(|s| s.cost))
}

fn optimal_cost_impl(
    g: &QueryGraph,
    catalog: &Catalog,
    model: &dyn CostModel,
    allow_cross: bool,
) -> Result<f64, OptimizeError> {
    if g.num_relations() == 0 {
        return Err(OptimizeError::EmptyQuery);
    }
    if !allow_cross {
        g.require_connected()?;
    }
    let est = CardinalityEstimator::new(g, catalog)?;
    let mut memo: HashMap<RelSet, PlanStats> = HashMap::new();
    let full = g.all_relations();
    let stats = best(g, &est, model, full, allow_cross, &mut memo).ok_or_else(|| {
        OptimizeError::Internal("exhaustive search found no plan for a solvable graph".into())
    })?;
    Ok(stats.cost)
}

fn best(
    g: &QueryGraph,
    est: &CardinalityEstimator,
    model: &dyn CostModel,
    s: RelSet,
    allow_cross: bool,
    memo: &mut HashMap<RelSet, PlanStats>,
) -> Option<PlanStats> {
    if let Some(&hit) = memo.get(&s) {
        return (hit.cost < f64::INFINITY).then_some(hit);
    }
    if s.is_singleton() {
        let stats = PlanStats::base(est.base_cardinality(s.min_index()?));
        memo.insert(s, stats);
        return Some(stats);
    }
    if !allow_cross && !g.is_connected_set(s) {
        memo.insert(
            s,
            PlanStats {
                cardinality: 0.0,
                cost: f64::INFINITY,
            },
        );
        return None;
    }
    // Canonical split: s1 always contains the minimum element, so every
    // unordered split is tried once; both operand orders are costed.
    let anchor = s.lowest();
    let rest = s - anchor;
    let mut best_stats: Option<PlanStats> = None;
    for sub in rest.subsets() {
        let s1 = anchor | sub;
        if s1 == s {
            continue;
        }
        let s2 = s - s1;
        if !allow_cross && !g.sets_connected(s1, s2) {
            continue;
        }
        let Some(p1) = best(g, est, model, s1, allow_cross, memo) else {
            continue;
        };
        let Some(p2) = best(g, est, model, s2, allow_cross, memo) else {
            continue;
        };
        let out = est.join_cardinality(p1.cardinality, p2.cardinality, s1, s2);
        let cost = model
            .join_cost(&p1, &p2, out)
            .min(model.join_cost(&p2, &p1, out));
        if best_stats.is_none_or(|b| cost < b.cost) {
            best_stats = Some(PlanStats {
                cardinality: out,
                cost,
            });
        }
    }
    memo.insert(
        s,
        best_stats.unwrap_or(PlanStats {
            cardinality: 0.0,
            cost: f64::INFINITY,
        }),
    );
    best_stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DpCcp, DpSize, DpSub, JoinOrderer};
    use joinopt_cost::{workload, Cout, HashJoin};
    use joinopt_qgraph::GraphKind;

    #[test]
    fn oracle_agrees_with_all_three_algorithms() {
        for kind in GraphKind::ALL {
            for seed in 0..4 {
                let w = workload::family_workload(kind, 7, seed);
                let want = optimal_cost(&w.graph, &w.catalog, &Cout).unwrap();
                for alg in [&DpSize as &dyn JoinOrderer, &DpSub, &DpCcp] {
                    let got = alg.optimize(&w.graph, &w.catalog, &Cout).unwrap().cost;
                    let tol = 1e-9 * want.abs().max(1.0);
                    assert!(
                        (got - want).abs() <= tol,
                        "{} on {kind} seed {seed}: {got} vs oracle {want}",
                        alg.name()
                    );
                }
            }
        }
    }

    #[test]
    fn oracle_agrees_under_asymmetric_model() {
        for seed in 0..5 {
            let w = workload::random_workload(6, 0.4, seed);
            let want = optimal_cost(&w.graph, &w.catalog, &HashJoin).unwrap();
            let got = DpCcp
                .optimize(&w.graph, &w.catalog, &HashJoin)
                .unwrap()
                .cost;
            assert!(
                (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn cross_products_never_hurt() {
        for seed in 0..5 {
            let w = workload::random_workload(6, 0.3, seed);
            let without = optimal_cost(&w.graph, &w.catalog, &Cout).unwrap();
            let with = optimal_cost_with_cross_products(&w.graph, &w.catalog, &Cout).unwrap();
            assert!(with <= without + 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn rejects_invalid_inputs() {
        let g = QueryGraph::new(0).unwrap();
        assert!(optimal_cost(&g, &Catalog::new(&g), &Cout).is_err());
        let disc = QueryGraph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(optimal_cost(&disc, &Catalog::new(&disc), &Cout).is_err());
        // …but the cross-product oracle handles disconnected graphs.
        assert!(optimal_cost_with_cross_products(&disc, &Catalog::new(&disc), &Cout).is_ok());
    }

    #[test]
    fn single_relation_costs_zero() {
        let w = workload::family_workload(GraphKind::Chain, 1, 0);
        assert_eq!(optimal_cost(&w.graph, &w.catalog, &Cout).unwrap(), 0.0);
    }
}
