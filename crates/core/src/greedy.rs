//! GOO — Greedy Operator Ordering — a non-optimal baseline.
//!
//! GOO (Fegaras) repeatedly joins the pair of current components whose
//! join result is smallest, until one component remains. It runs in
//! `O(n³)` and produces bushy trees, but offers no optimality guarantee;
//! the workspace uses it to contextualize how far greedy plans fall from
//! the DP optimum (see the plan-quality example and benches).

use joinopt_cost::{ensure_finite, CardinalityEstimator, Catalog, CostModel, PlanStats};
use joinopt_plan::{PlanArena, PlanId};
use joinopt_qgraph::QueryGraph;
use joinopt_relset::RelSet;
use joinopt_telemetry::{Event, Observer};

use crate::cancel::CancellationToken;
use crate::counters::Counters;
use crate::driver::Spans;
use crate::error::OptimizeError;
use crate::result::{DpResult, JoinOrderer};

/// The GOO greedy heuristic (smallest intermediate result first).
#[derive(Debug, Clone, Copy, Default)]
pub struct Goo;

impl JoinOrderer for Goo {
    fn name(&self) -> &'static str {
        "GOO"
    }

    fn optimize_controlled(
        &self,
        g: &QueryGraph,
        catalog: &Catalog,
        model: &dyn CostModel,
        obs: &dyn Observer,
        ctl: &CancellationToken,
    ) -> Result<DpResult, OptimizeError> {
        let spans = Spans::start(obs, self.name(), g.num_relations());
        let provenance = obs.enabled() && obs.wants_provenance();
        spans.begin("init");
        if g.num_relations() == 0 {
            return Err(OptimizeError::EmptyQuery);
        }
        g.require_connected()?;
        ctl.check()?;
        crate::failpoint::check("estimator")?;
        let est = CardinalityEstimator::new(g, catalog)?;
        let n = g.num_relations();
        let mut arena = PlanArena::with_capacity(2 * n);
        let mut counters = Counters::new();
        let mut pace = 0u32;

        struct Component {
            set: RelSet,
            plan: PlanId,
            stats: PlanStats,
        }
        let mut comps: Vec<Component> = (0..n)
            .map(|i| {
                let card = est.base_cardinality(i);
                Component {
                    set: RelSet::single(i),
                    plan: arena.add_scan(i, card),
                    stats: PlanStats::base(card),
                }
            })
            .collect();
        ctl.charge(arena.bytes())?;
        let mut charged = arena.bytes();
        spans.end("init");

        spans.begin("enumerate");
        while comps.len() > 1 {
            // Pick the connected pair with the smallest join result.
            let mut best: Option<(usize, usize, f64)> = None;
            for i in 0..comps.len() {
                for j in i + 1..comps.len() {
                    counters.inner += 1;
                    ctl.checkpoint(&mut pace)?;
                    if !g.sets_connected(comps[i].set, comps[j].set) {
                        continue;
                    }
                    let out = ensure_finite(
                        "cardinality",
                        est.join_cardinality(
                            comps[i].stats.cardinality,
                            comps[j].stats.cardinality,
                            comps[i].set,
                            comps[j].set,
                        ),
                    )?;
                    if best.is_none_or(|(_, _, b)| out < b) {
                        best = Some((i, j, out));
                    }
                }
            }
            let Some((i, j, out)) = best else {
                return Err(OptimizeError::Internal(
                    "no joinable component pair in a connected graph".into(),
                ));
            };
            let (a, b) = (&comps[i], &comps[j]);
            let c_ab = ensure_finite("cost", model.join_cost(&a.stats, &b.stats, out))?;
            let c_ba = ensure_finite("cost", model.join_cost(&b.stats, &a.stats, out))?;
            let (left, right, cost) = if c_ba < c_ab {
                (j, i, c_ba)
            } else {
                (i, j, c_ab)
            };
            if provenance {
                // Greedy makes exactly one (always accepted) decision
                // per merged component: the pair with the smallest
                // intermediate result, oriented by cheaper join cost.
                obs.on_event(Event::PlanCandidate {
                    set: (comps[i].set | comps[j].set).bits(),
                    left: comps[left].set.bits(),
                    right: comps[right].set.bits(),
                    cost,
                    accepted: true,
                });
            }
            let stats = PlanStats {
                cardinality: out,
                cost,
            };
            let plan = arena.add_join(comps[left].plan, comps[right].plan, stats);
            if arena.bytes() > charged {
                ctl.charge(arena.bytes() - charged)?;
                charged = arena.bytes();
            }
            let set = comps[i].set | comps[j].set;
            // Replace component i, remove j (swap_remove keeps O(1)).
            comps[i] = Component { set, plan, stats };
            comps.swap_remove(j);
        }
        spans.end("enumerate");

        let top = &comps[0];
        spans.begin("extract");
        let tree = arena.extract(top.plan);
        spans.end("extract");
        spans.arena_stats(&arena);
        spans.finish(&counters);
        Ok(DpResult {
            tree,
            cost: top.stats.cost,
            cardinality: top.stats.cardinality,
            counters,
            table_size: 0,
            plans_built: arena.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DpCcp, JoinOrderer};
    use joinopt_cost::{workload, Cout};
    use joinopt_qgraph::GraphKind;

    #[test]
    fn goo_produces_complete_valid_trees() {
        for kind in GraphKind::ALL {
            let w = workload::family_workload(kind, 9, 5);
            let r = Goo.optimize(&w.graph, &w.catalog, &Cout).unwrap();
            assert_eq!(r.tree.relations(), w.graph.all_relations());
            assert_eq!(r.tree.num_joins(), 8);
            assert!(r.cost.is_finite() && r.cost > 0.0);
        }
    }

    #[test]
    fn goo_is_never_better_than_optimal() {
        for seed in 0..20 {
            let w = workload::random_workload(9, 0.3, seed);
            let greedy = Goo.optimize(&w.graph, &w.catalog, &Cout).unwrap();
            let opt = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
            assert!(
                greedy.cost >= opt.cost - 1e-9 * opt.cost.abs().max(1.0),
                "seed {seed}: greedy {} < optimal {}?!",
                greedy.cost,
                opt.cost
            );
        }
    }

    #[test]
    fn goo_is_sometimes_strictly_worse() {
        let mut suboptimal_seen = false;
        for seed in 0..30 {
            let w = workload::random_workload(9, 0.4, seed);
            let greedy = Goo.optimize(&w.graph, &w.catalog, &Cout).unwrap();
            let opt = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
            suboptimal_seen |= greedy.cost > opt.cost * 1.001;
        }
        assert!(
            suboptimal_seen,
            "GOO matched the optimum on all 30 seeds — suspicious"
        );
    }

    #[test]
    fn rejects_invalid_inputs() {
        let g = QueryGraph::new(0).unwrap();
        assert!(Goo.optimize(&g, &Catalog::new(&g), &Cout).is_err());
        let disc = QueryGraph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(Goo.optimize(&disc, &Catalog::new(&disc), &Cout).is_err());
    }

    #[test]
    fn single_relation() {
        let w = workload::family_workload(GraphKind::Chain, 1, 0);
        let r = Goo.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        assert_eq!(r.tree.num_joins(), 0);
        assert_eq!(r.cost, 0.0);
    }
}
