//! Cooperative cancellation and resource budgets: [`CancelFlag`] and
//! [`CancellationToken`].
//!
//! A token bundles the three ways a run can be asked to stop — an
//! external cancellation flag, a wall-clock deadline, and a memory
//! budget — behind two operations sized for different call sites:
//!
//! * [`CancellationToken::check`] consults everything including the
//!   clock; call it at coarse boundaries (level barriers, per-query
//!   setup).
//! * [`CancellationToken::checkpoint`] is the fine-grained form for
//!   inner DP loops: it always observes an already-tripped token and
//!   the atomic flag (one relaxed load each), but only reads the
//!   monotonic clock every [`TIME_CHECK_PERIOD`] calls, so the cost per
//!   inner iteration stays at a couple of predictable branches.
//!
//! Memory is accounted by the *consumers* (DP table, plan arena,
//! worker out-buffers) calling [`CancellationToken::charge`] with byte
//! deltas as their footprint grows; the token trips once the running
//! total exceeds the budget.
//!
//! Whichever condition trips first wins: the token latches the trip
//! reason with a compare-and-swap, and every later check — from any
//! thread — reports the same error, so a multi-worker run shuts down
//! with one deterministic cause.

use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::OptimizeError;

/// [`CancellationToken::checkpoint`] reads the clock once per this many
/// calls (must be a power of two).
pub const TIME_CHECK_PERIOD: u32 = 256;

const TRIP_NONE: u8 = 0;
const TRIP_TIME: u8 = 1;
const TRIP_MEMORY: u8 = 2;
const TRIP_CANCELLED: u8 = 3;

/// A shareable cancel switch: clone it, hand one copy to the optimizer
/// via [`OptimizeRequest::with_cancel_flag`](crate::OptimizeRequest::with_cancel_flag),
/// and flip it from any thread to abort the run at its next checkpoint.
#[derive(Debug, Clone, Default)]
pub struct CancelFlag {
    inner: Arc<AtomicBool>,
}

impl CancelFlag {
    /// A new, un-cancelled flag.
    pub fn new() -> CancelFlag {
        CancelFlag::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.inner.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.inner.load(Ordering::Relaxed)
    }
}

/// The per-run bundle of stop conditions threaded through the DP loops,
/// the parallel engine and batch workers. See the module docs for the
/// check/checkpoint split.
#[derive(Debug)]
pub struct CancellationToken {
    flag: Option<CancelFlag>,
    deadline: Option<Instant>,
    time_budget: Duration,
    memory_budget: usize,
    memory_used: AtomicUsize,
    trip: AtomicU8,
}

impl Default for CancellationToken {
    fn default() -> CancellationToken {
        CancellationToken::unlimited()
    }
}

impl CancellationToken {
    /// A token that never trips on its own (no flag, no deadline, no
    /// memory cap) — the default for uncontrolled entry points.
    pub fn unlimited() -> CancellationToken {
        CancellationToken::new(None, None, None)
    }

    /// A token with the given stop conditions; the deadline clock
    /// starts now.
    pub fn new(
        flag: Option<CancelFlag>,
        time_budget: Option<Duration>,
        memory_budget: Option<usize>,
    ) -> CancellationToken {
        CancellationToken {
            flag,
            deadline: time_budget.map(|b| Instant::now() + b),
            time_budget: time_budget.unwrap_or(Duration::ZERO),
            memory_budget: memory_budget.unwrap_or(usize::MAX),
            memory_used: AtomicUsize::new(0),
            trip: AtomicU8::new(TRIP_NONE),
        }
    }

    /// The configured time budget, if any.
    pub fn time_budget(&self) -> Option<Duration> {
        self.deadline.map(|_| self.time_budget)
    }

    /// The configured memory budget in bytes, if any.
    pub fn memory_budget(&self) -> Option<usize> {
        (self.memory_budget != usize::MAX).then_some(self.memory_budget)
    }

    /// Bytes charged against the memory budget so far.
    pub fn memory_used(&self) -> usize {
        self.memory_used.load(Ordering::Relaxed)
    }

    /// Latches `code` as the trip reason if nothing tripped earlier.
    fn trip(&self, code: u8) {
        let _ = self
            .trip
            .compare_exchange(TRIP_NONE, code, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// The error for an already-tripped token, if any. All threads see
    /// the same answer once one of them trips.
    pub fn trip_error(&self) -> Option<OptimizeError> {
        match self.trip.load(Ordering::Relaxed) {
            TRIP_TIME => Some(OptimizeError::TimeBudgetExceeded {
                budget: self.time_budget,
            }),
            TRIP_MEMORY => Some(OptimizeError::MemoryBudgetExceeded {
                used: self.memory_used(),
                budget: self.memory_budget,
            }),
            TRIP_CANCELLED => Some(OptimizeError::Cancelled),
            _ => None,
        }
    }

    fn check_flag(&self) -> Result<(), OptimizeError> {
        if let Some(flag) = &self.flag {
            if flag.is_cancelled() {
                self.trip(TRIP_CANCELLED);
                return Err(OptimizeError::Cancelled);
            }
        }
        Ok(())
    }

    fn check_deadline(&self) -> Result<(), OptimizeError> {
        if let Some(dl) = self.deadline {
            if Instant::now() > dl {
                self.trip(TRIP_TIME);
                return Err(OptimizeError::TimeBudgetExceeded {
                    budget: self.time_budget,
                });
            }
        }
        Ok(())
    }

    /// The full check: trip latch, flag and deadline. Reads the clock.
    pub fn check(&self) -> Result<(), OptimizeError> {
        if let Some(e) = self.trip_error() {
            return Err(e);
        }
        self.check_flag()?;
        self.check_deadline()
    }

    /// The paced check for inner loops. `counter` is caller-local
    /// pacing state (one per loop, initialized to 0); the deadline is
    /// only consulted every [`TIME_CHECK_PERIOD`] calls.
    #[inline]
    pub fn checkpoint(&self, counter: &mut u32) -> Result<(), OptimizeError> {
        if let Some(e) = self.trip_error() {
            return Err(e);
        }
        self.check_flag()?;
        *counter = counter.wrapping_add(1);
        if *counter & (TIME_CHECK_PERIOD - 1) == 0 {
            self.check_deadline()?;
        }
        Ok(())
    }

    /// Charges `delta` bytes against the memory budget, tripping the
    /// token when the running total exceeds it.
    pub fn charge(&self, delta: usize) -> Result<(), OptimizeError> {
        let used = self
            .memory_used
            .fetch_add(delta, Ordering::Relaxed)
            .saturating_add(delta);
        if used > self.memory_budget {
            self.trip(TRIP_MEMORY);
            return Err(OptimizeError::MemoryBudgetExceeded {
                used,
                budget: self.memory_budget,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_token_never_trips() {
        let ctl = CancellationToken::unlimited();
        let mut pace = 0u32;
        for _ in 0..10_000 {
            ctl.checkpoint(&mut pace).unwrap();
        }
        ctl.check().unwrap();
        ctl.charge(usize::MAX / 2).unwrap();
        assert_eq!(ctl.time_budget(), None);
        assert_eq!(ctl.memory_budget(), None);
    }

    #[test]
    fn flag_cancels_and_latches() {
        let flag = CancelFlag::new();
        let ctl = CancellationToken::new(Some(flag.clone()), None, None);
        ctl.check().unwrap();
        flag.cancel();
        assert_eq!(ctl.check(), Err(OptimizeError::Cancelled));
        // The trip is latched even for checks that skip the flag.
        assert_eq!(ctl.trip_error(), Some(OptimizeError::Cancelled));
    }

    #[test]
    fn zero_time_budget_trips_via_paced_checkpoint() {
        let ctl = CancellationToken::new(None, Some(Duration::ZERO), None);
        let mut pace = 0u32;
        let mut err = None;
        for _ in 0..=TIME_CHECK_PERIOD {
            if let Err(e) = ctl.checkpoint(&mut pace) {
                err = Some(e);
                break;
            }
        }
        assert_eq!(
            err,
            Some(OptimizeError::TimeBudgetExceeded {
                budget: Duration::ZERO
            })
        );
    }

    #[test]
    fn memory_budget_trips_on_cumulative_charges() {
        let ctl = CancellationToken::new(None, None, Some(100));
        ctl.charge(60).unwrap();
        let err = ctl.charge(60).unwrap_err();
        assert_eq!(
            err,
            OptimizeError::MemoryBudgetExceeded {
                used: 120,
                budget: 100
            }
        );
        assert_eq!(ctl.memory_used(), 120);
        // Latched: subsequent checkpoints fail immediately.
        let mut pace = 0u32;
        assert!(ctl.checkpoint(&mut pace).is_err());
    }

    #[test]
    fn first_trip_wins() {
        let flag = CancelFlag::new();
        let ctl = CancellationToken::new(Some(flag.clone()), None, Some(10));
        let _ = ctl.charge(100).unwrap_err();
        flag.cancel();
        // Memory tripped first; cancellation does not overwrite it.
        assert!(matches!(
            ctl.trip_error(),
            Some(OptimizeError::MemoryBudgetExceeded { .. })
        ));
    }
}
