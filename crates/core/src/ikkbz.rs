//! IKKBZ — polynomial-time optimal left-deep join ordering for acyclic
//! query graphs (Ibaraki & Kameda 1984, Krishnamurthy, Boral & Zaniolo
//! 1986).
//!
//! The classical counterpoint to dynamic programming: for *tree* query
//! graphs and a cost function with the adjacent-sequence-interchange
//! (ASI) property — `C_out` over left-deep, cross-product-free trees has
//! it — the optimal left-deep order can be found in `O(n² log n)` by
//! rank-sorting precedence chains, instead of DP's exponential table.
//!
//! For each candidate root, the query tree becomes a *precedence graph*;
//! each non-root relation `v` carries `T(v) = s_v · |v|` (the factor by
//! which joining `v` scales the intermediate result, `s_v` being the
//! selectivity of the edge to its parent). Subtree chains are merged in
//! ascending *rank* `(T − 1)/C`, and adjacent modules that contradict
//! the rank order (parent rank above child rank) are fused so precedence
//! is never violated. The best root wins.
//!
//! The result provably equals the [`DpSizeLeftDeep`](crate::DpSizeLeftDeep)
//! optimum under `C_out` on tree queries — the test suite asserts this,
//! giving a polynomial and an exponential implementation that
//! cross-validate each other.

use joinopt_cost::{CardinalityEstimator, Catalog, CostModel as _, Cout, PlanStats};
use joinopt_plan::PlanArena;
use joinopt_qgraph::{QueryGraph, QueryGraphError};
use joinopt_relset::{RelIdx, RelSet};
use joinopt_telemetry::{NoopObserver, Observer};

use crate::counters::Counters;
use crate::driver::Spans;
use crate::error::OptimizeError;
use crate::result::DpResult;

/// The IKKBZ optimizer. Only valid for acyclic (tree) query graphs and
/// the ASI cost function `C_out`; it is therefore not a general
/// [`JoinOrderer`](crate::JoinOrderer) but a standalone entry point.
#[derive(Debug, Clone, Copy, Default)]
pub struct IkkBz;

/// A module: a fused sequence of relations with aggregate cost/size
/// factors. `rank = (t − 1) / c` is the ASI sort key.
#[derive(Debug, Clone)]
struct Module {
    rels: Vec<RelIdx>,
    c: f64,
    t: f64,
}

impl Module {
    fn single(rel: RelIdx, t: f64) -> Module {
        Module {
            rels: vec![rel],
            c: t,
            t,
        }
    }

    fn rank(&self) -> f64 {
        (self.t - 1.0) / self.c
    }

    /// Fuses `self` followed by `other` into one module:
    /// `C(uv) = C(u) + T(u)·C(v)`, `T(uv) = T(u)·T(v)`.
    fn fuse(&mut self, other: Module) {
        self.c += self.t * other.c;
        self.t *= other.t;
        self.rels.extend(other.rels);
    }
}

impl IkkBz {
    /// Algorithm name, as used in reports.
    pub fn name(&self) -> &'static str {
        "IKKBZ"
    }

    /// Computes the optimal left-deep, cross-product-free join order for
    /// an acyclic query graph under the `C_out` cost model.
    ///
    /// # Errors
    ///
    /// * [`OptimizeError::EmptyQuery`] for zero relations;
    /// * [`OptimizeError::Graph`] for disconnected **or cyclic** graphs
    ///   (IKKBZ requires a tree).
    pub fn optimize(&self, g: &QueryGraph, catalog: &Catalog) -> Result<DpResult, OptimizeError> {
        self.optimize_observed(g, catalog, &NoopObserver)
    }

    /// [`IkkBz::optimize`] with telemetry (span granularity).
    pub fn optimize_observed(
        &self,
        g: &QueryGraph,
        catalog: &Catalog,
        obs: &dyn Observer,
    ) -> Result<DpResult, OptimizeError> {
        let spans = Spans::start(obs, self.name(), g.num_relations());
        spans.begin("init");
        let n = g.num_relations();
        if n == 0 {
            return Err(OptimizeError::EmptyQuery);
        }
        g.require_connected()?;
        if g.num_edges() != n - 1 {
            // Connected with more than n−1 edges ⇒ cyclic.
            return Err(OptimizeError::Graph(QueryGraphError::InvalidSize {
                n: g.num_edges(),
                what: "IKKBZ precedence tree (query graph must be acyclic)",
            }));
        }
        let est = CardinalityEstimator::new(g, catalog)?;
        spans.end("init");

        spans.begin("enumerate");
        let mut best_order: Option<(Vec<RelIdx>, f64)> = None;
        let mut counters = Counters::new();
        for root in 0..n {
            let order = order_for_root(g, catalog, root, &mut counters);
            let cost = left_deep_cost(g, &est, &order);
            if best_order.as_ref().is_none_or(|(_, c)| cost < *c) {
                best_order = Some((order, cost));
            }
        }
        let Some((order, _)) = best_order else {
            return Err(OptimizeError::Internal(
                "IKKBZ produced no candidate order for a non-empty tree".into(),
            ));
        };
        spans.end("enumerate");

        // Materialize the plan.
        spans.begin("extract");
        let mut arena = PlanArena::with_capacity(2 * n);
        let mut set = RelSet::single(order[0]);
        let mut plan = arena.add_scan(order[0], est.base_cardinality(order[0]));
        let mut stats = PlanStats::base(est.base_cardinality(order[0]));
        for &rel in &order[1..] {
            let right_stats = PlanStats::base(est.base_cardinality(rel));
            let right = arena.add_scan(rel, right_stats.cardinality);
            let out = est.join_cardinality(
                stats.cardinality,
                right_stats.cardinality,
                set,
                RelSet::single(rel),
            );
            let cost = Cout.join_cost(&stats, &right_stats, out);
            stats = PlanStats {
                cardinality: out,
                cost,
            };
            plan = arena.add_join(plan, right, stats);
            set.insert(rel);
        }
        let tree = arena.extract(plan);
        spans.end("extract");
        spans.arena_stats(&arena);
        spans.finish(&counters);

        Ok(DpResult {
            tree,
            cost: stats.cost,
            cardinality: stats.cardinality,
            counters,
            table_size: 0,
            plans_built: arena.len(),
        })
    }
}

/// Builds the IKKBZ order for one candidate root.
fn order_for_root(
    g: &QueryGraph,
    catalog: &Catalog,
    root: RelIdx,
    counters: &mut Counters,
) -> Vec<RelIdx> {
    let n = g.num_relations();
    // Parent/children arrays via BFS from the root.
    let mut children: Vec<Vec<RelIdx>> = vec![Vec::new(); n];
    // T(v) = selectivity(edge v–parent) · |v|, cached while the BFS has
    // the parent edge in hand (meaningless for the root, which never
    // heads a module).
    let mut t = vec![0.0f64; n];
    let mut bfs_order = vec![root];
    let mut seen = RelSet::single(root);
    let mut head = 0;
    while head < bfs_order.len() {
        let v = bfs_order[head];
        head += 1;
        for u in g.neighbors(v).iter() {
            if !seen.contains(u) {
                seen.insert(u);
                if let Some(edge) = g.edge_between(v, u) {
                    t[u] = catalog.selectivity(edge) * catalog.cardinality(u);
                }
                children[v].push(u);
                bfs_order.push(u);
            }
        }
    }
    let t_of = |v: RelIdx| -> f64 { t[v] };

    // Post-order: build the normalized chain of each subtree.
    fn chain_for(
        v: RelIdx,
        children: &[Vec<RelIdx>],
        t_of: &dyn Fn(RelIdx) -> f64,
        counters: &mut Counters,
    ) -> Vec<Module> {
        // Each child heads its own chain, followed by its subtree chain.
        let mut child_chains: Vec<Vec<Module>> = Vec::with_capacity(children[v].len());
        for &c in &children[v] {
            let mut chain = vec![Module::single(c, t_of(c))];
            chain.extend(chain_for(c, children, t_of, counters));
            normalize(&mut chain, counters);
            child_chains.push(chain);
        }
        merge_by_rank(child_chains, counters)
    }

    let mut order = vec![root];
    for m in chain_for(root, &children, &t_of, counters) {
        order.extend(m.rels);
    }
    debug_assert_eq!(order.len(), n);
    order
}

/// Fuses adjacent modules whose ranks contradict the precedence order
/// (a predecessor with a larger rank must not float behind its child).
fn normalize(chain: &mut Vec<Module>, counters: &mut Counters) {
    let mut out: Vec<Module> = Vec::with_capacity(chain.len());
    for m in chain.drain(..) {
        out.push(m);
        while out.len() >= 2 {
            counters.inner += 1;
            let last_rank = out[out.len() - 1].rank();
            let prev_rank = out[out.len() - 2].rank();
            if prev_rank > last_rank {
                let Some(tail) = out.pop() else { break };
                let Some(prev) = out.last_mut() else { break };
                prev.fuse(tail);
            } else {
                break;
            }
        }
    }
    *chain = out;
}

/// K-way merge of rank-sorted chains into one rank-sorted chain
/// (cross-chain modules carry no precedence constraints).
fn merge_by_rank(chains: Vec<Vec<Module>>, counters: &mut Counters) -> Vec<Module> {
    let mut iters: Vec<std::vec::IntoIter<Module>> =
        chains.into_iter().map(Vec::into_iter).collect();
    let mut heads: Vec<Option<Module>> = iters.iter_mut().map(Iterator::next).collect();
    let mut out = Vec::new();
    loop {
        let mut best: Option<(usize, f64)> = None;
        for (i, head) in heads.iter().enumerate() {
            if let Some(m) = head {
                counters.inner += 1;
                if best.is_none_or(|(_, r)| m.rank() < r) {
                    best = Some((i, m.rank()));
                }
            }
        }
        let Some((i, _)) = best else {
            return out;
        };
        let Some(head) = heads[i].take() else {
            return out; // unreachable: best indexes a live head
        };
        out.push(head);
        heads[i] = iters[i].next();
    }
}

/// `C_out` cost of joining `order` left-deep (no plan materialization).
fn left_deep_cost(g: &QueryGraph, est: &CardinalityEstimator, order: &[RelIdx]) -> f64 {
    let mut set = RelSet::single(order[0]);
    let mut stats = PlanStats::base(est.base_cardinality(order[0]));
    for &rel in &order[1..] {
        debug_assert!(
            g.sets_connected(set, RelSet::single(rel)),
            "IKKBZ order introduced a cross product"
        );
        let right = PlanStats::base(est.base_cardinality(rel));
        let out = est.join_cardinality(
            stats.cardinality,
            right.cardinality,
            set,
            RelSet::single(rel),
        );
        let cost = Cout.join_cost(&stats, &right, out);
        stats = PlanStats {
            cardinality: out,
            cost,
        };
        set.insert(rel);
    }
    stats.cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DpSizeLeftDeep, JoinOrderer};
    use joinopt_cost::{workload, Cout};
    use joinopt_qgraph::{generators, GraphKind};
    use joinopt_relset::XorShift64;

    #[test]
    fn matches_leftdeep_dp_on_chains_and_stars() {
        for kind in [GraphKind::Chain, GraphKind::Star] {
            for n in 2..=10 {
                for seed in 0..3 {
                    let w = workload::family_workload(kind, n, seed);
                    let ik = IkkBz.optimize(&w.graph, &w.catalog).unwrap();
                    let dp = DpSizeLeftDeep
                        .optimize(&w.graph, &w.catalog, &Cout)
                        .unwrap();
                    let tol = 1e-9 * dp.cost.abs().max(1.0);
                    assert!(
                        (ik.cost - dp.cost).abs() <= tol,
                        "{kind} n={n} seed={seed}: IKKBZ {} vs DP {}",
                        ik.cost,
                        dp.cost
                    );
                }
            }
        }
    }

    #[test]
    fn matches_leftdeep_dp_on_random_trees() {
        let mut rng = XorShift64::seed_from_u64(9);
        for trial in 0..25 {
            let g = generators::random_tree(9, &mut rng).unwrap();
            let cat = workload::random_catalog(
                &g,
                joinopt_cost::workload::StatsRanges::default(),
                &mut rng,
            );
            let ik = IkkBz.optimize(&g, &cat).unwrap();
            let dp = DpSizeLeftDeep.optimize(&g, &cat, &Cout).unwrap();
            let tol = 1e-9 * dp.cost.abs().max(1.0);
            assert!(
                (ik.cost - dp.cost).abs() <= tol,
                "trial {trial}: IKKBZ {} vs DP {}",
                ik.cost,
                dp.cost
            );
        }
    }

    #[test]
    fn produces_valid_left_deep_trees() {
        let mut rng = XorShift64::seed_from_u64(4);
        let g = generators::random_tree(12, &mut rng).unwrap();
        let cat =
            workload::random_catalog(&g, joinopt_cost::workload::StatsRanges::default(), &mut rng);
        let r = IkkBz.optimize(&g, &cat).unwrap();
        assert!(r.tree.is_left_deep());
        assert_eq!(r.tree.relations(), g.all_relations());
        assert_eq!(r.tree.cost(), r.cost);
    }

    #[test]
    fn rejects_cyclic_graphs() {
        let g = generators::cycle(5).unwrap();
        let cat = Catalog::new(&g);
        assert!(matches!(
            IkkBz.optimize(&g, &cat),
            Err(OptimizeError::Graph(_))
        ));
        let clique = generators::clique(4).unwrap();
        assert!(IkkBz.optimize(&clique, &Catalog::new(&clique)).is_err());
    }

    #[test]
    fn rejects_empty_and_disconnected() {
        let g = QueryGraph::new(0).unwrap();
        assert!(IkkBz.optimize(&g, &Catalog::new(&g)).is_err());
        let disc = QueryGraph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(IkkBz.optimize(&disc, &Catalog::new(&disc)).is_err());
    }

    #[test]
    fn single_relation_and_single_edge() {
        let w = workload::family_workload(GraphKind::Chain, 1, 0);
        let r = IkkBz.optimize(&w.graph, &w.catalog).unwrap();
        assert_eq!(r.tree.num_joins(), 0);
        let w2 = workload::family_workload(GraphKind::Chain, 2, 0);
        let r2 = IkkBz.optimize(&w2.graph, &w2.catalog).unwrap();
        assert_eq!(r2.tree.num_joins(), 1);
    }

    #[test]
    fn scales_polynomially() {
        // 60-relation chain: exponential left-deep DP would be hopeless
        // in debug mode; IKKBZ is instant.
        let w = workload::family_workload(GraphKind::Chain, 60, 3);
        let start = std::time::Instant::now();
        let r = IkkBz.optimize(&w.graph, &w.catalog).unwrap();
        assert!(start.elapsed().as_millis() < 2000, "{:?}", start.elapsed());
        assert_eq!(r.tree.num_relations(), 60);
    }

    #[test]
    fn module_fusion_algebra() {
        // C(uv) = C(u) + T(u)C(v), T(uv) = T(u)T(v).
        let mut u = Module::single(0, 2.0); // c = t = 2
        let v = Module::single(1, 3.0); // c = t = 3
        u.fuse(v);
        assert_eq!(u.c, 2.0 + 2.0 * 3.0);
        assert_eq!(u.t, 6.0);
        assert_eq!(u.rels, vec![0, 1]);
        // rank of a module with T = 1 is 0 (neutral).
        let neutral = Module::single(2, 1.0);
        assert_eq!(neutral.rank(), 0.0);
    }
}
