//! Fast zeta/Möbius transforms and subset convolution over the
//! `2^n` subset lattice — the algebraic core behind [`crate::DpConv`].
//!
//! All functions operate on dense arrays indexed by bitmask: index `S`
//! holds the value for the relation set whose bits are `S`. Array
//! lengths must be powers of two (`2^n` for an `n`-element universe).
//!
//! Three layers, from rings down to min-plus:
//!
//! * [`zeta_in_place`] / [`mobius_in_place`] — the textbook
//!   `O(2^n · n)` transforms over `(+, ·)`; exact inverses of each
//!   other (Yates / Björklund et al.).
//! * [`ranked_subset_convolution`] — exact subset convolution
//!   `h(S) = Σ_{T ⊆ S} f(T) · g(S \ T)` in `O(2^n · n²)` via the
//!   rank-indexed zeta trick: convolve rank slices pointwise in zeta
//!   space, invert once per rank. This is the genuinely
//!   sub-`3^n` machinery; the conformance oracle uses it to re-derive
//!   `#ccp` from the connectivity indicator, independently of every
//!   enumeration algorithm.
//! * [`min_plus_subset_convolution`] — the `(min, +)` semiring
//!   analogue the join-ordering DP actually needs. Over the tropical
//!   semiring the rank trick does not apply (there is no additive
//!   inverse, so the Möbius step is unavailable); for *exact* `f64`
//!   costs the best known general algorithm remains the per-set
//!   subset enumeration at `Θ(3^n)` total. DPconv therefore runs the
//!   layered enumeration with the convolution *structure* (per-set
//!   cardinality term added once per set, splits relaxed per rank
//!   layer) and reserves the `O(2^n · n²)` ring transform for
//!   integer-valued cross-checks; see `docs/ALGORITHMS.md` §7.
//! * [`min_plus_subset_convolution_naive`] — an all-pairs `O(4^n)`
//!   reference with a structurally different traversal, kept as the
//!   differential anchor for the property tests in
//!   `crates/core/tests/transform_props.rs`.

/// Asserts `f.len()` is a power of two and returns `n = log2(len)`.
fn universe_bits(len: usize) -> u32 {
    assert!(
        len.is_power_of_two(),
        "lattice arrays must have power-of-two length, got {len}"
    );
    len.trailing_zeros()
}

/// In-place fast zeta transform: replaces `f[S]` with
/// `Σ_{T ⊆ S} f[T]` for every `S`, in `O(2^n · n)` wrapping additions.
///
/// # Panics
///
/// Panics if `f.len()` is not a power of two.
pub fn zeta_in_place(f: &mut [i64]) {
    let n = universe_bits(f.len());
    for j in 0..n {
        let bit = 1usize << j;
        for s in 0..f.len() {
            if s & bit != 0 {
                f[s] = f[s].wrapping_add(f[s ^ bit]);
            }
        }
    }
}

/// In-place fast Möbius transform, the exact inverse of
/// [`zeta_in_place`]: recovers `f` from its subset sums.
///
/// # Panics
///
/// Panics if `f.len()` is not a power of two.
pub fn mobius_in_place(f: &mut [i64]) {
    let n = universe_bits(f.len());
    for j in 0..n {
        let bit = 1usize << j;
        for s in 0..f.len() {
            if s & bit != 0 {
                f[s] = f[s].wrapping_sub(f[s ^ bit]);
            }
        }
    }
}

/// Exact subset convolution over the integer ring in `O(2^n · n²)`:
/// returns `h` with `h[S] = Σ_{T ⊆ S} f[T] · g[S \ T]`.
///
/// The ranked construction: split `f` and `g` into rank slices
/// (`f_k[S] = f[S]` when `|S| = k`, else 0), zeta-transform every
/// slice, multiply slices pointwise grouped by rank sum, and Möbius
/// back — the cross-rank terms that would double-count non-disjoint
/// pairs cancel because `|T| + |S \ T| = |S|` holds exactly for
/// disjoint decompositions.
///
/// # Panics
///
/// Panics if the inputs differ in length or are not powers of two.
pub fn ranked_subset_convolution(f: &[i64], g: &[i64]) -> Vec<i64> {
    assert_eq!(f.len(), g.len(), "operands must share one lattice");
    let n = universe_bits(f.len()) as usize;
    let size = f.len();
    // Rank-sliced zeta transforms: fhat[k][S] = Σ_{T ⊆ S, |T| = k} f[T].
    let slice = |src: &[i64]| -> Vec<Vec<i64>> {
        (0..=n)
            .map(|k| {
                let mut layer: Vec<i64> = (0..size)
                    .map(|s| {
                        if (s as u64).count_ones() as usize == k {
                            src[s]
                        } else {
                            0
                        }
                    })
                    .collect();
                zeta_in_place(&mut layer);
                layer
            })
            .collect()
    };
    let fhat = slice(f);
    let ghat = slice(g);
    let mut out = vec![0i64; size];
    for rank in 0..=n {
        // Pointwise ring convolution of the rank slices in zeta space,
        // then one Möbius inversion for this output rank.
        let mut h: Vec<i64> = (0..size)
            .map(|s| {
                let mut acc = 0i64;
                for k in 0..=rank {
                    acc = acc.wrapping_add(fhat[k][s].wrapping_mul(ghat[rank - k][s]));
                }
                acc
            })
            .collect();
        mobius_in_place(&mut h);
        for (s, out_s) in out.iter_mut().enumerate() {
            if (s as u64).count_ones() as usize == rank {
                *out_s = h[s];
            }
        }
    }
    out
}

/// Min-plus (tropical) subset convolution:
/// `h[S] = min_{T ⊆ S} (f[T] + g[S \ T])`, including the trivial
/// decompositions `T = ∅` and `T = S`. `Θ(3^n)` total via the
/// standard descending-submask enumeration; see the module docs for
/// why no exact sub-`3^n` algorithm is used.
///
/// # Panics
///
/// Panics if the inputs differ in length or are not powers of two.
pub fn min_plus_subset_convolution(f: &[f64], g: &[f64]) -> Vec<f64> {
    assert_eq!(f.len(), g.len(), "operands must share one lattice");
    universe_bits(f.len());
    let size = f.len();
    let mut out = vec![f64::INFINITY; size];
    for (s, out_s) in out.iter_mut().enumerate() {
        let mut best = f[0] + g[s]; // T = ∅
        let mut t = s;
        while t != 0 {
            let cand = f[t] + g[s ^ t];
            if cand < best {
                best = cand;
            }
            t = (t - 1) & s;
        }
        *out_s = best;
    }
    out
}

/// Reference min-plus subset convolution with an all-pairs `O(4^n)`
/// traversal: relaxes every *disjoint* pair `(A, B)` into `A ∪ B`.
/// Structurally independent of [`min_plus_subset_convolution`]'s
/// per-set submask walk, so the two implementations make a meaningful
/// differential pair for property testing.
///
/// # Panics
///
/// Panics if the inputs differ in length or are not powers of two.
pub fn min_plus_subset_convolution_naive(f: &[f64], g: &[f64]) -> Vec<f64> {
    assert_eq!(f.len(), g.len(), "operands must share one lattice");
    universe_bits(f.len());
    let size = f.len();
    let mut out = vec![f64::INFINITY; size];
    for a in 0..size {
        for b in 0..size {
            if a & b == 0 {
                let cand = f[a] + g[b];
                let slot = &mut out[a | b];
                if cand < *slot {
                    *slot = cand;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeta_of_indicator_counts_subsets() {
        // f = all-ones: zeta gives 2^|S| (every subset contributes 1).
        let mut f = vec![1i64; 16];
        zeta_in_place(&mut f);
        for (s, &v) in f.iter().enumerate() {
            assert_eq!(v, 1i64 << (s as u64).count_ones(), "S = {s:#b}");
        }
    }

    #[test]
    fn mobius_inverts_zeta_on_a_small_handcrafted_lattice() {
        let original = vec![3i64, -7, 0, 42, 5, -1, 9, 11];
        let mut f = original.clone();
        zeta_in_place(&mut f);
        assert_ne!(f, original, "zeta must actually mix values");
        mobius_in_place(&mut f);
        assert_eq!(f, original);
    }

    #[test]
    fn ranked_convolution_matches_definition_exhaustively() {
        // n = 4, deterministic values: check h[S] against the direct
        // Σ_{T ⊆ S} f[T]·g[S\T] definition for every S.
        let f: Vec<i64> = (0..16).map(|s| (s as i64) * 3 - 7).collect();
        let g: Vec<i64> = (0..16).map(|s| 11 - (s as i64) * (s as i64)).collect();
        let h = ranked_subset_convolution(&f, &g);
        for s in 0..16usize {
            let mut want = f[0] * g[s];
            let mut t = s;
            while t != 0 {
                want += f[t] * g[s ^ t];
                t = (t - 1) & s;
            }
            assert_eq!(h[s], want, "S = {s:#b}");
        }
    }

    #[test]
    fn min_plus_agrees_with_naive_on_a_small_lattice() {
        let f: Vec<f64> = (0..32).map(|s| ((s * 7) % 13) as f64).collect();
        let g: Vec<f64> = (0..32).map(|s| ((s * 5) % 11) as f64 * 1.5).collect();
        let fast = min_plus_subset_convolution(&f, &g);
        let naive = min_plus_subset_convolution_naive(&f, &g);
        assert_eq!(fast, naive);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_lattices_are_rejected() {
        let mut f = vec![0i64; 6];
        zeta_in_place(&mut f);
    }

    #[test]
    #[should_panic(expected = "share one lattice")]
    fn mismatched_operands_are_rejected() {
        let _ = ranked_subset_convolution(&[0; 4], &[0; 8]);
    }
}
