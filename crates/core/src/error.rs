//! Error type for optimizer runs.

use core::fmt;

use joinopt_cost::CostError;
use joinopt_qgraph::QueryGraphError;

/// Errors produced by the join-ordering algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimizeError {
    /// The query graph was invalid (disconnected, empty, …).
    Graph(QueryGraphError),
    /// The statistics catalog did not match the graph.
    Cost(CostError),
    /// A query with zero relations has no join tree.
    EmptyQuery,
    /// No cross-product-free join tree exists: the (hyper)graph is
    /// reachability-connected, but some required sub-plan is not
    /// buildable (e.g. the side of a complex predicate has no internal
    /// predicates). Only produced by hypergraph optimization.
    NoPlanWithoutCrossProducts,
}

impl fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizeError::Graph(e) => write!(f, "invalid query graph: {e}"),
            OptimizeError::Cost(e) => write!(f, "invalid statistics: {e}"),
            OptimizeError::EmptyQuery => write!(f, "cannot optimize a query with no relations"),
            OptimizeError::NoPlanWithoutCrossProducts => {
                write!(
                    f,
                    "no cross-product-free join tree exists for this hypergraph"
                )
            }
        }
    }
}

impl std::error::Error for OptimizeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OptimizeError::Graph(e) => Some(e),
            OptimizeError::Cost(e) => Some(e),
            OptimizeError::EmptyQuery | OptimizeError::NoPlanWithoutCrossProducts => None,
        }
    }
}

impl From<QueryGraphError> for OptimizeError {
    fn from(e: QueryGraphError) -> Self {
        OptimizeError::Graph(e)
    }
}

impl From<CostError> for OptimizeError {
    fn from(e: CostError) -> Self {
        OptimizeError::Cost(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_and_source() {
        let e = OptimizeError::from(QueryGraphError::Disconnected);
        assert!(e.to_string().contains("connected"));
        assert!(e.source().is_some());
        assert!(OptimizeError::EmptyQuery.source().is_none());
        let c = OptimizeError::from(CostError::InvalidCardinality {
            relation: 0,
            value: 0.0,
        });
        assert!(c.to_string().contains("statistics"));
    }
}
