//! The unified error type for optimizer runs.
//!
//! Every fallible layer of the workspace — relation sets, query graphs,
//! statistics catalogs, the textual and SQL frontends, and the
//! optimization engine itself — converts into [`OptimizeError`] via
//! `From`, so callers (the CLI, the examples, embedding applications)
//! handle one error enum end-to-end instead of matching four.

use core::fmt;
use std::time::Duration;

use joinopt_cost::CostError;
use joinopt_qgraph::QueryGraphError;
use joinopt_query::{ParseError, SqlError};
use joinopt_relset::RelSetError;

/// Errors produced by the join-ordering algorithms and the request API.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimizeError {
    /// The query graph was invalid (disconnected, empty, …).
    Graph(QueryGraphError),
    /// The statistics catalog did not match the graph.
    Cost(CostError),
    /// A relation set could not be constructed (index or universe out
    /// of the 64-relation range).
    RelSet(RelSetError),
    /// A query description in the native DSL did not parse.
    Parse(ParseError),
    /// A SQL query did not parse.
    Sql(SqlError),
    /// A query with zero relations has no join tree.
    EmptyQuery,
    /// No cross-product-free join tree exists: the (hyper)graph is
    /// reachability-connected, but some required sub-plan is not
    /// buildable (e.g. the side of a complex predicate has no internal
    /// predicates). Only produced by hypergraph optimization.
    NoPlanWithoutCrossProducts,
    /// An [`OptimizeRequest`](crate::OptimizeRequest) time budget ran
    /// out before enumeration finished. Enforced at the engine's level
    /// barriers and between batch items (best effort — a sequential
    /// algorithm mid-run is not interrupted).
    TimeBudgetExceeded {
        /// The configured budget.
        budget: Duration,
    },
    /// The optimal plan's cost exceeds the request's cost budget.
    CostBudgetExceeded {
        /// Cost of the best plan found.
        cost: f64,
        /// The configured ceiling.
        budget: f64,
    },
    /// The run's DP table, plan arena and worker buffers grew past the
    /// request's memory budget.
    MemoryBudgetExceeded {
        /// Bytes charged when the budget tripped.
        used: usize,
        /// The configured ceiling in bytes.
        budget: usize,
    },
    /// The run was cancelled through its
    /// [`CancelFlag`](crate::CancelFlag).
    Cancelled,
    /// The requested algorithm cannot optimize under the requested cost
    /// model. Produced by enumerators whose correctness depends on a
    /// structural property of the model — DPconv requires a
    /// `C_out`-shaped cost (a function of the relation set alone) and
    /// refuses anything else instead of silently returning a plan that
    /// is optimal for the wrong objective.
    UnsupportedCostModel {
        /// The refusing algorithm.
        algorithm: &'static str,
        /// The requested cost model's name.
        model: &'static str,
    },
    /// The query exceeds the algorithm's hard size cap (direct-addressed
    /// `2^n` tables). Pick an algorithm without dense tables (DPccp,
    /// IDP, GOO) for larger queries.
    TooManyRelations {
        /// The refusing algorithm.
        algorithm: &'static str,
        /// Relations in the query.
        relations: usize,
        /// The algorithm's cap.
        max: usize,
    },
    /// A service batch was rejected at admission: accepting the request
    /// would overflow the service's queue capacity. Only produced by the
    /// `joinopt-service` admission layer, never by the algorithms.
    QueueFull {
        /// Requests already admitted ahead of this one.
        queued: usize,
        /// The service's configured queue capacity.
        capacity: usize,
    },
    /// A service request was rejected at admission: its tenant already
    /// has its configured maximum number of requests in flight. Only
    /// produced by the `joinopt-service` admission layer.
    TenantLimitExceeded {
        /// The rejected request's tenant label.
        tenant: String,
        /// The tenant's requests already admitted in this batch.
        in_flight: usize,
        /// The per-tenant concurrency limit.
        limit: usize,
    },
    /// An internal failure — a panicking worker or an injected fault —
    /// was caught and isolated instead of unwinding into the caller.
    Internal(String),
}

impl fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizeError::Graph(e) => write!(f, "invalid query graph: {e}"),
            OptimizeError::Cost(e) => write!(f, "invalid statistics: {e}"),
            OptimizeError::RelSet(e) => write!(f, "invalid relation set: {e}"),
            OptimizeError::Parse(e) => write!(f, "query parse error: {e}"),
            OptimizeError::Sql(e) => write!(f, "SQL parse error: {e}"),
            OptimizeError::EmptyQuery => write!(f, "cannot optimize a query with no relations"),
            OptimizeError::NoPlanWithoutCrossProducts => {
                write!(
                    f,
                    "no cross-product-free join tree exists for this hypergraph"
                )
            }
            OptimizeError::TimeBudgetExceeded { budget } => {
                write!(f, "optimization exceeded its time budget of {budget:?}")
            }
            OptimizeError::CostBudgetExceeded { cost, budget } => {
                write!(
                    f,
                    "optimal plan cost {cost:.6e} exceeds the cost budget {budget:.6e}"
                )
            }
            OptimizeError::MemoryBudgetExceeded { used, budget } => {
                write!(
                    f,
                    "optimization used {used} bytes, exceeding its memory budget of {budget} bytes"
                )
            }
            OptimizeError::Cancelled => write!(f, "optimization was cancelled"),
            OptimizeError::UnsupportedCostModel { algorithm, model } => {
                write!(
                    f,
                    "{algorithm} cannot optimize under the {model} cost model \
                     (requires a C_out-shaped cost)"
                )
            }
            OptimizeError::TooManyRelations {
                algorithm,
                relations,
                max,
            } => {
                write!(
                    f,
                    "{algorithm} is capped at {max} relations, query has {relations}"
                )
            }
            OptimizeError::QueueFull { queued, capacity } => {
                write!(
                    f,
                    "admission rejected: queue is full ({queued} of {capacity} slots taken)"
                )
            }
            OptimizeError::TenantLimitExceeded {
                tenant,
                in_flight,
                limit,
            } => {
                write!(
                    f,
                    "admission rejected: tenant `{tenant}` has {in_flight} requests in flight \
                     (limit {limit})"
                )
            }
            OptimizeError::Internal(msg) => write!(f, "internal optimizer failure: {msg}"),
        }
    }
}

impl std::error::Error for OptimizeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OptimizeError::Graph(e) => Some(e),
            OptimizeError::Cost(e) => Some(e),
            OptimizeError::RelSet(e) => Some(e),
            OptimizeError::Parse(e) => Some(e),
            OptimizeError::Sql(e) => Some(e),
            OptimizeError::EmptyQuery
            | OptimizeError::NoPlanWithoutCrossProducts
            | OptimizeError::TimeBudgetExceeded { .. }
            | OptimizeError::CostBudgetExceeded { .. }
            | OptimizeError::MemoryBudgetExceeded { .. }
            | OptimizeError::Cancelled
            | OptimizeError::UnsupportedCostModel { .. }
            | OptimizeError::TooManyRelations { .. }
            | OptimizeError::QueueFull { .. }
            | OptimizeError::TenantLimitExceeded { .. }
            | OptimizeError::Internal(_) => None,
        }
    }
}

impl From<QueryGraphError> for OptimizeError {
    fn from(e: QueryGraphError) -> Self {
        OptimizeError::Graph(e)
    }
}

impl From<CostError> for OptimizeError {
    fn from(e: CostError) -> Self {
        OptimizeError::Cost(e)
    }
}

impl From<RelSetError> for OptimizeError {
    fn from(e: RelSetError) -> Self {
        OptimizeError::RelSet(e)
    }
}

impl From<ParseError> for OptimizeError {
    fn from(e: ParseError) -> Self {
        OptimizeError::Parse(e)
    }
}

impl From<SqlError> for OptimizeError {
    fn from(e: SqlError) -> Self {
        OptimizeError::Sql(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_and_source() {
        let e = OptimizeError::from(QueryGraphError::Disconnected);
        assert!(e.to_string().contains("connected"));
        assert!(e.source().is_some());
        assert!(OptimizeError::EmptyQuery.source().is_none());
        let c = OptimizeError::from(CostError::InvalidCardinality {
            relation: 0,
            value: 0.0,
        });
        assert!(c.to_string().contains("statistics"));
    }

    #[test]
    fn unified_conversions() {
        let r = OptimizeError::from(RelSetError::IndexOutOfRange { index: 99 });
        assert!(r.to_string().contains("99"));
        assert!(r.source().is_some());

        let p = OptimizeError::from(ParseError::EmptyQuery);
        assert!(p.to_string().contains("parse"));
        assert!(p.source().is_some());

        let s = joinopt_query::parse_sql("SELECT").expect_err("incomplete SQL");
        let s = OptimizeError::from(s);
        assert!(s.to_string().contains("SQL"));
        assert!(s.source().is_some());
    }

    #[test]
    fn budget_errors_display_limits() {
        let t = OptimizeError::TimeBudgetExceeded {
            budget: Duration::from_millis(5),
        };
        assert!(t.to_string().contains("budget"));
        assert!(t.source().is_none());
        let c = OptimizeError::CostBudgetExceeded {
            cost: 2.0e6,
            budget: 1.0e6,
        };
        assert!(c.to_string().contains("exceeds"));
        let m = OptimizeError::MemoryBudgetExceeded {
            used: 2048,
            budget: 1024,
        };
        assert!(m.to_string().contains("1024"));
        assert!(m.source().is_none());
        assert!(OptimizeError::Cancelled.to_string().contains("cancelled"));
        let i = OptimizeError::Internal("worker panicked".into());
        assert!(i.to_string().contains("worker panicked"));
        assert!(i.source().is_none());
    }

    #[test]
    fn capability_errors_display_context() {
        let u = OptimizeError::UnsupportedCostModel {
            algorithm: "DPconv",
            model: "HashJoin",
        };
        assert!(u.to_string().contains("DPconv"));
        assert!(u.to_string().contains("HashJoin"));
        assert!(u.to_string().contains("C_out"));
        assert!(u.source().is_none());
        let t = OptimizeError::TooManyRelations {
            algorithm: "DPconv",
            relations: 30,
            max: 22,
        };
        assert!(t.to_string().contains("30"));
        assert!(t.to_string().contains("22"));
        assert!(t.source().is_none());
    }

    #[test]
    fn admission_errors_display_limits() {
        let q = OptimizeError::QueueFull {
            queued: 64,
            capacity: 64,
        };
        assert!(q.to_string().contains("queue is full"));
        assert!(q.to_string().contains("64"));
        assert!(q.source().is_none());
        let t = OptimizeError::TenantLimitExceeded {
            tenant: "analytics".into(),
            in_flight: 4,
            limit: 4,
        };
        assert!(t.to_string().contains("analytics"));
        assert!(t.to_string().contains("limit 4"));
        assert!(t.source().is_none());
    }
}
