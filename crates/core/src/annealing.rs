//! Simulated annealing over bushy join trees — the classical randomized
//! rival of dynamic programming (Ioannidis & Kang; Steinbrunn, Moerkotte
//! & Kemper's comparative study).
//!
//! Where the paper's DP algorithms guarantee the optimum at exponential
//! worst-case cost, simulated annealing walks the space of valid
//! cross-product-free bushy trees with the textbook move set —
//! commutativity swaps, associativity rotations and subtree exchanges —
//! accepting uphill moves with probability `exp(−Δ/T)` under a geometric
//! cooling schedule. It provides a tunable any-time baseline against
//! which the DP guarantees can be appreciated (see the `quality`
//! benchmark binary).
//!
//! All randomness is seeded, so runs are reproducible.

use joinopt_cost::{CardinalityEstimator, Catalog, CostModel, PlanStats};
use joinopt_plan::PlanArena;
use joinopt_qgraph::QueryGraph;
use joinopt_relset::{RelSet, XorShift64};
use joinopt_telemetry::Observer;

use crate::cancel::CancellationToken;
use crate::counters::Counters;
use crate::driver::Spans;
use crate::error::OptimizeError;
use crate::result::{DpResult, JoinOrderer};

/// Simulated annealing join orderer.
#[derive(Debug, Clone, Copy)]
pub struct SimulatedAnnealing {
    /// Number of proposed moves.
    pub iterations: u32,
    /// Starting temperature, as a fraction of the initial cost.
    pub initial_temperature: f64,
    /// Geometric cooling factor per iteration (0 < c < 1).
    pub cooling: f64,
    /// RNG seed (runs are deterministic per seed).
    pub seed: u64,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        SimulatedAnnealing {
            iterations: 20_000,
            initial_temperature: 0.5,
            cooling: 0.9995,
            seed: 2006,
        }
    }
}

impl SimulatedAnnealing {
    /// A configuration with the given seed and defaults otherwise.
    pub fn with_seed(seed: u64) -> SimulatedAnnealing {
        SimulatedAnnealing {
            seed,
            ..SimulatedAnnealing::default()
        }
    }
}

/// In-place tree representation: node 0..n-1 are the leaves.
#[derive(Clone, Copy, Debug)]
enum Node {
    Leaf(usize),
    Join(usize, usize),
}

#[derive(Clone)]
struct Solution {
    nodes: Vec<Node>,
    root: usize,
}

impl Solution {
    /// Relation set per node (recomputed bottom-up).
    fn rels(&self, g: &QueryGraph) -> Vec<RelSet> {
        let _ = g;
        let mut rels = vec![RelSet::EMPTY; self.nodes.len()];
        // Nodes are created children-before-parents, so one forward pass
        // after the initial build works; to stay robust under rewrites we
        // recurse instead.
        fn rec(nodes: &[Node], i: usize, rels: &mut [RelSet]) -> RelSet {
            let r = match nodes[i] {
                Node::Leaf(rel) => RelSet::single(rel),
                Node::Join(l, rr) => rec(nodes, l, rels) | rec(nodes, rr, rels),
            };
            rels[i] = r;
            r
        }
        rec(&self.nodes, self.root, &mut rels);
        rels
    }

    /// `true` iff every join connects its operands.
    fn is_valid(&self, g: &QueryGraph) -> bool {
        let rels = self.rels(g);
        self.nodes.iter().all(|n| match *n {
            Node::Leaf(_) => true,
            Node::Join(l, r) => g.sets_connected(rels[l], rels[r]),
        })
    }

    /// Total cost under the model (both operand orders are *not*
    /// explored here — the tree fixes the order; swaps are a move).
    fn cost(&self, g: &QueryGraph, est: &CardinalityEstimator, model: &dyn CostModel) -> f64 {
        let _ = g;
        fn rec(
            nodes: &[Node],
            i: usize,
            est: &CardinalityEstimator,
            model: &dyn CostModel,
        ) -> (RelSet, PlanStats) {
            match nodes[i] {
                Node::Leaf(rel) => (
                    RelSet::single(rel),
                    PlanStats::base(est.base_cardinality(rel)),
                ),
                Node::Join(l, r) => {
                    let (ls, lp) = rec(nodes, l, est, model);
                    let (rs, rp) = rec(nodes, r, est, model);
                    let out = est.join_cardinality(lp.cardinality, rp.cardinality, ls, rs);
                    let cost = model.join_cost(&lp, &rp, out);
                    (
                        ls | rs,
                        PlanStats {
                            cardinality: out,
                            cost,
                        },
                    )
                }
            }
        }
        rec(&self.nodes, self.root, est, model).1.cost
    }
}

/// A random valid bushy tree: repeatedly merge a uniformly random
/// connected component pair.
fn random_solution(g: &QueryGraph, rng: &mut XorShift64) -> Solution {
    let n = g.num_relations();
    let mut nodes: Vec<Node> = (0..n).map(Node::Leaf).collect();
    // (node index, relation set) per live component.
    let mut comps: Vec<(usize, RelSet)> = (0..n).map(|i| (i, RelSet::single(i))).collect();
    while comps.len() > 1 {
        // Collect joinable pairs.
        let mut pairs = Vec::new();
        for i in 0..comps.len() {
            for j in i + 1..comps.len() {
                if g.sets_connected(comps[i].1, comps[j].1) {
                    pairs.push((i, j));
                }
            }
        }
        let &(i, j) = &pairs[rng.gen_range(0..pairs.len())];
        let (ni, ri) = comps[i];
        let (nj, rj) = comps[j];
        nodes.push(if rng.gen_bool(0.5) {
            Node::Join(ni, nj)
        } else {
            Node::Join(nj, ni)
        });
        comps[i] = (nodes.len() - 1, ri | rj);
        comps.swap_remove(j);
    }
    Solution {
        root: nodes.len() - 1,
        nodes,
    }
}

/// Applies one random move; returns `None` when the move is invalid or
/// inapplicable at the chosen site.
fn propose(sol: &Solution, g: &QueryGraph, rng: &mut XorShift64) -> Option<Solution> {
    let joins: Vec<usize> = (0..sol.nodes.len())
        .filter(|&i| matches!(sol.nodes[i], Node::Join(..)))
        .collect();
    let site = joins[rng.gen_range(0..joins.len())];
    let Node::Join(l, r) = sol.nodes[site] else {
        unreachable!("filtered to joins")
    };
    let mut next = sol.clone();
    match rng.gen_range(0..4) {
        // Commutativity: A ⋈ B → B ⋈ A (always valid).
        0 => {
            next.nodes[site] = Node::Join(r, l);
            Some(next)
        }
        // Left rotation: (A ⋈ B) ⋈ C → A ⋈ (B ⋈ C).
        1 => {
            let Node::Join(a, b) = sol.nodes[l] else {
                return None;
            };
            next.nodes[l] = Node::Join(b, r);
            next.nodes[site] = Node::Join(a, l);
            next.is_valid(g).then_some(next)
        }
        // Right rotation: A ⋈ (B ⋈ C) → (A ⋈ B) ⋈ C.
        2 => {
            let Node::Join(b, c) = sol.nodes[r] else {
                return None;
            };
            next.nodes[r] = Node::Join(l, b);
            next.nodes[site] = Node::Join(r, c);
            next.is_valid(g).then_some(next)
        }
        // Exchange: (A ⋈ B) ⋈ (C ⋈ D) → (A ⋈ C) ⋈ (B ⋈ D).
        _ => {
            let Node::Join(a, b) = sol.nodes[l] else {
                return None;
            };
            let Node::Join(c, d) = sol.nodes[r] else {
                return None;
            };
            next.nodes[l] = Node::Join(a, c);
            next.nodes[r] = Node::Join(b, d);
            next.is_valid(g).then_some(next)
        }
    }
}

impl JoinOrderer for SimulatedAnnealing {
    fn name(&self) -> &'static str {
        "SimulatedAnnealing"
    }

    fn optimize_controlled(
        &self,
        g: &QueryGraph,
        catalog: &Catalog,
        model: &dyn CostModel,
        obs: &dyn Observer,
        ctl: &CancellationToken,
    ) -> Result<DpResult, OptimizeError> {
        let spans = Spans::start(obs, self.name(), g.num_relations());
        spans.begin("init");
        if g.num_relations() == 0 {
            return Err(OptimizeError::EmptyQuery);
        }
        g.require_connected()?;
        ctl.check()?;
        crate::failpoint::check("estimator")?;
        let est = CardinalityEstimator::new(g, catalog)?;
        let mut rng = XorShift64::seed_from_u64(self.seed);
        let mut counters = Counters::new();
        let mut pace = 0u32;

        let mut current = random_solution(g, &mut rng);
        let mut current_cost = current.cost(g, &est, model);
        let mut best = current.clone();
        let mut best_cost = current_cost;
        let mut temperature = self.initial_temperature * current_cost.max(1.0);
        spans.end("init");

        spans.begin("enumerate");
        if g.num_relations() > 1 {
            for _ in 0..self.iterations {
                counters.inner += 1;
                ctl.checkpoint(&mut pace)?;
                temperature *= self.cooling;
                let Some(candidate) = propose(&current, g, &mut rng) else {
                    continue;
                };
                let cost = candidate.cost(g, &est, model);
                let delta = cost - current_cost;
                if delta <= 0.0
                    || rng.gen_bool((-delta / temperature.max(1e-12)).exp().clamp(0.0, 1.0))
                {
                    current = candidate;
                    current_cost = cost;
                    if cost < best_cost {
                        best = current.clone();
                        best_cost = cost;
                    }
                }
            }
        }
        spans.end("enumerate");

        // Materialize the best tree into a plan arena.
        spans.begin("extract");
        let mut arena = PlanArena::with_capacity(best.nodes.len());
        fn build(
            nodes: &[Node],
            i: usize,
            est: &CardinalityEstimator,
            model: &dyn CostModel,
            arena: &mut PlanArena,
        ) -> (RelSet, joinopt_plan::PlanId, PlanStats) {
            match nodes[i] {
                Node::Leaf(rel) => {
                    let card = est.base_cardinality(rel);
                    (
                        RelSet::single(rel),
                        arena.add_scan(rel, card),
                        PlanStats::base(card),
                    )
                }
                Node::Join(l, r) => {
                    let (ls, lp, lstats) = build(nodes, l, est, model, arena);
                    let (rs, rp, rstats) = build(nodes, r, est, model, arena);
                    let out = est.join_cardinality(lstats.cardinality, rstats.cardinality, ls, rs);
                    let cost = model.join_cost(&lstats, &rstats, out);
                    let stats = PlanStats {
                        cardinality: out,
                        cost,
                    };
                    (ls | rs, arena.add_join(lp, rp, stats), stats)
                }
            }
        }
        let (_, plan, stats) = build(&best.nodes, best.root, &est, model, &mut arena);
        let tree = arena.extract(plan);
        spans.end("extract");
        spans.arena_stats(&arena);
        spans.finish(&counters);
        Ok(DpResult {
            tree,
            cost: stats.cost,
            cardinality: stats.cardinality,
            counters,
            table_size: 0,
            plans_built: arena.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DpCcp, JoinOrderer};
    use joinopt_cost::{workload, Cout, HashJoin};
    use joinopt_qgraph::GraphKind;

    #[test]
    fn never_beats_the_optimum() {
        for seed in 0..10 {
            let w = workload::random_workload(8, 0.3, seed);
            let sa = SimulatedAnnealing::with_seed(seed)
                .optimize(&w.graph, &w.catalog, &Cout)
                .unwrap();
            let opt = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
            assert!(
                sa.cost >= opt.cost - 1e-9 * opt.cost.abs().max(1.0),
                "seed {seed}: SA {} < optimal {}",
                sa.cost,
                opt.cost
            );
        }
    }

    #[test]
    fn finds_optimum_on_small_queries() {
        // With a generous budget on 6 relations, SA should land on the
        // optimum for the large majority of seeds.
        let mut hits = 0;
        for seed in 0..10 {
            let w = workload::random_workload(6, 0.4, seed + 50);
            let sa = SimulatedAnnealing::with_seed(seed)
                .optimize(&w.graph, &w.catalog, &Cout)
                .unwrap();
            let opt = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
            if (sa.cost - opt.cost).abs() <= 1e-6 * opt.cost.abs().max(1.0) {
                hits += 1;
            }
        }
        assert!(
            hits >= 7,
            "SA matched the optimum on only {hits}/10 small queries"
        );
    }

    #[test]
    fn produces_valid_trees_without_cross_products() {
        for kind in GraphKind::ALL {
            let w = workload::family_workload(kind, 9, 3);
            let r = SimulatedAnnealing::with_seed(1)
                .optimize(&w.graph, &w.catalog, &Cout)
                .unwrap();
            assert_eq!(r.tree.relations(), w.graph.all_relations(), "{kind}");
            assert_eq!(r.tree.num_joins(), 8, "{kind}");
            fn check(g: &QueryGraph, t: &joinopt_plan::JoinTree) {
                if let joinopt_plan::JoinTree::Join { left, right, .. } = t {
                    assert!(g.sets_connected(left.relations(), right.relations()));
                    check(g, left);
                    check(g, right);
                }
            }
            check(&w.graph, &r.tree);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let w = workload::random_workload(8, 0.3, 7);
        let a = SimulatedAnnealing::with_seed(42)
            .optimize(&w.graph, &w.catalog, &Cout)
            .unwrap();
        let b = SimulatedAnnealing::with_seed(42)
            .optimize(&w.graph, &w.catalog, &Cout)
            .unwrap();
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.tree, b.tree);
    }

    #[test]
    fn works_with_asymmetric_models() {
        let w = workload::random_workload(7, 0.4, 9);
        let sa = SimulatedAnnealing::with_seed(3)
            .optimize(&w.graph, &w.catalog, &HashJoin)
            .unwrap();
        let opt = DpCcp.optimize(&w.graph, &w.catalog, &HashJoin).unwrap();
        assert!(sa.cost >= opt.cost - 1e-9 * opt.cost);
    }

    #[test]
    fn rejects_invalid_inputs_and_handles_tiny_queries() {
        let g = QueryGraph::new(0).unwrap();
        assert!(SimulatedAnnealing::default()
            .optimize(&g, &Catalog::new(&g), &Cout)
            .is_err());
        let disc = QueryGraph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(SimulatedAnnealing::default()
            .optimize(&disc, &Catalog::new(&disc), &Cout)
            .is_err());
        let w = workload::family_workload(GraphKind::Chain, 1, 0);
        let r = SimulatedAnnealing::default()
            .optimize(&w.graph, &w.catalog, &Cout)
            .unwrap();
        assert_eq!(r.tree.num_joins(), 0);
    }

    #[test]
    fn more_iterations_do_not_hurt() {
        let w = workload::random_workload(10, 0.3, 123);
        let short = SimulatedAnnealing {
            iterations: 200,
            ..SimulatedAnnealing::with_seed(5)
        }
        .optimize(&w.graph, &w.catalog, &Cout)
        .unwrap();
        let long = SimulatedAnnealing {
            iterations: 30_000,
            ..SimulatedAnnealing::with_seed(5)
        }
        .optimize(&w.graph, &w.catalog, &Cout)
        .unwrap();
        assert!(long.cost <= short.cost + 1e-9 * short.cost.abs());
    }
}
