//! Left-deep-only dynamic programming — the original Selinger search
//! space, as a baseline quantifying what bushy enumeration buys.
//!
//! The paper generalizes Selinger's size-driven DP from left-deep to
//! bushy trees; this module keeps the restriction (every join's right
//! operand is a base relation) so experiments can measure the plan-cost
//! gap between the optimal left-deep and the optimal bushy tree, and the
//! much smaller search space the restriction leaves (`Σ c_k · n` pair
//! probes instead of pairing all sizes).
//!
//! Like the paper's algorithms it excludes cross products, so it finds
//! the optimal *connected* left-deep tree. Note that on some
//! graph/statistics combinations the optimal bushy tree is strictly
//! cheaper — that differential is the point of this baseline.

use joinopt_cost::{Catalog, CostModel};
use joinopt_qgraph::QueryGraph;
use joinopt_relset::RelSet;
use joinopt_telemetry::Observer;

use crate::cancel::CancellationToken;
use crate::driver::Driver;
use crate::error::OptimizeError;
use crate::result::{DpResult, JoinOrderer};

/// Size-driven DP restricted to left-deep trees (Selinger-style,
/// cross-product-free).
#[derive(Debug, Clone, Copy, Default)]
pub struct DpSizeLeftDeep;

impl JoinOrderer for DpSizeLeftDeep {
    fn name(&self) -> &'static str {
        "DPsize-leftdeep"
    }

    fn optimize_controlled(
        &self,
        g: &QueryGraph,
        catalog: &Catalog,
        model: &dyn CostModel,
        obs: &dyn Observer,
        ctl: &CancellationToken,
    ) -> Result<DpResult, OptimizeError> {
        let mut d = Driver::new(g, catalog, model, true, self.name(), obs, ctl)?;
        let n = g.num_relations();

        let mut plans_by_size: Vec<Vec<RelSet>> = vec![Vec::new(); n + 1];
        plans_by_size[1] = (0..n).map(RelSet::single).collect();

        for s in 2..=n {
            // Left operand: any plan of size s−1; right operand: a single
            // relation — the left-deep restriction.
            for i in 0..plans_by_size[s - 1].len() {
                let left = plans_by_size[s - 1][i];
                for rel in 0..n {
                    let right = RelSet::single(rel);
                    d.counters.inner += 1;
                    if left.overlaps(right) {
                        continue;
                    }
                    if !d.g.sets_connected(left, right) {
                        continue;
                    }
                    d.counters.csg_cmp_pairs += 1;
                    if d.emit_pair_one_order(left, right)? {
                        plans_by_size[s].push(left | right);
                    }
                }
            }
        }
        // The pair counter here counts (composite, relation) extensions,
        // which is NOT the #ccp graph invariant (left-deep explores a
        // strict subset of the csg-cmp-pairs). Each unordered pair is
        // evaluated in exactly one orientation — the reverse would be a
        // right-deep join, outside the search space — so the distinct
        // unordered count equals the oriented count (no halving).
        d.counters.ono_lohman = d.counters.csg_cmp_pairs;
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DpCcp, JoinOrderer};
    use joinopt_cost::{workload, Cout};
    use joinopt_qgraph::GraphKind;

    #[test]
    fn produces_left_deep_trees_only() {
        for kind in GraphKind::ALL {
            for seed in 0..5 {
                let w = workload::family_workload(kind, 8, seed);
                let r = DpSizeLeftDeep
                    .optimize(&w.graph, &w.catalog, &Cout)
                    .unwrap();
                assert!(r.tree.is_left_deep(), "{kind} seed {seed}: {}", r.tree);
                assert_eq!(r.tree.relations(), w.graph.all_relations());
            }
        }
    }

    #[test]
    fn never_beats_bushy_optimum() {
        for seed in 0..20 {
            let w = workload::random_workload(8, 0.3, seed);
            let ld = DpSizeLeftDeep
                .optimize(&w.graph, &w.catalog, &Cout)
                .unwrap();
            let bushy = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
            assert!(
                ld.cost >= bushy.cost - 1e-9 * bushy.cost.abs().max(1.0),
                "seed {seed}: left-deep {} < bushy {}?!",
                ld.cost,
                bushy.cost
            );
        }
    }

    #[test]
    fn is_optimal_among_left_deep_trees() {
        // Exhaustive check on small chains: enumerate all left-deep
        // orders (permutations) without cross products and compare.
        use joinopt_cost::{CardinalityEstimator, CostModel as _, PlanStats};
        for seed in 0..10 {
            let w = workload::family_workload(GraphKind::Chain, 6, seed);
            let est = CardinalityEstimator::new(&w.graph, &w.catalog).unwrap();
            let mut best = f64::INFINITY;
            let mut perm: Vec<usize> = (0..6).collect();
            // Heap's algorithm over all 720 permutations.
            fn heaps(k: usize, arr: &mut Vec<usize>, visit: &mut impl FnMut(&[usize])) {
                if k == 1 {
                    visit(arr);
                    return;
                }
                for i in 0..k {
                    heaps(k - 1, arr, visit);
                    if k.is_multiple_of(2) {
                        arr.swap(i, k - 1);
                    } else {
                        arr.swap(0, k - 1);
                    }
                }
            }
            let graph = &w.graph;
            heaps(6, &mut perm, &mut |order: &[usize]| {
                let mut set = RelSet::single(order[0]);
                let mut stats = PlanStats::base(est.base_cardinality(order[0]));
                for &rel in &order[1..] {
                    let next = RelSet::single(rel);
                    if !graph.sets_connected(set, next) {
                        return; // cross product — outside the space
                    }
                    let out = est.join_cardinality(
                        stats.cardinality,
                        est.base_cardinality(rel),
                        set,
                        next,
                    );
                    let cost =
                        Cout.join_cost(&stats, &PlanStats::base(est.base_cardinality(rel)), out);
                    stats = PlanStats {
                        cardinality: out,
                        cost,
                    };
                    set |= next;
                }
                if stats.cost < best {
                    best = stats.cost;
                }
            });
            let r = DpSizeLeftDeep
                .optimize(&w.graph, &w.catalog, &Cout)
                .unwrap();
            assert!(
                (r.cost - best).abs() <= 1e-9 * best.abs().max(1.0),
                "seed {seed}: DP {} vs exhaustive {}",
                r.cost,
                best
            );
        }
    }

    #[test]
    fn bushy_strictly_wins_somewhere() {
        let mut strict = false;
        for seed in 0..40 {
            let w = workload::random_workload(9, 0.25, seed);
            let ld = DpSizeLeftDeep
                .optimize(&w.graph, &w.catalog, &Cout)
                .unwrap();
            let bushy = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
            strict |= ld.cost > bushy.cost * 1.01;
        }
        assert!(
            strict,
            "left-deep matched bushy on all 40 seeds — suspicious"
        );
    }

    #[test]
    fn search_space_is_smaller() {
        let w = workload::family_workload(GraphKind::Clique, 10, 0);
        let ld = DpSizeLeftDeep
            .optimize(&w.graph, &w.catalog, &Cout)
            .unwrap();
        let bushy = crate::DpSize.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        assert!(ld.counters.inner < bushy.counters.inner / 10);
    }
}
