//! DPsize: size-driven enumeration (paper, Fig. 1 / Section 2.1).

use joinopt_cost::{Catalog, CostModel};
use joinopt_qgraph::QueryGraph;
use joinopt_relset::RelSet;
use joinopt_telemetry::Observer;

use crate::cancel::CancellationToken;
use crate::driver::Driver;
use crate::error::OptimizeError;
use crate::result::{DpResult, JoinOrderer};

/// DPsize with the `s₁ = s₂` optimization described in Section 2.1:
/// plans of each size are kept in a list; sizes are split unordered
/// (`s₁ ≤ s₂`), and for `s₁ = s₂` only pairs `(p₁, p₂)` with `p₂`
/// *after* `p₁` in the list are tested. Commutativity is handled inside
/// `CreateJoinTree` (both operand orders are costed).
///
/// This is the variant the paper's counter formulas describe; the
/// literal pseudocode of Fig. 1 is available as [`DpSizeNaive`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DpSize;

impl JoinOrderer for DpSize {
    fn name(&self) -> &'static str {
        "DPsize"
    }

    fn optimize_controlled(
        &self,
        g: &QueryGraph,
        catalog: &Catalog,
        model: &dyn CostModel,
        obs: &dyn Observer,
        ctl: &CancellationToken,
    ) -> Result<DpResult, OptimizeError> {
        let mut d = Driver::new(g, catalog, model, true, self.name(), obs, ctl)?;
        let n = g.num_relations();

        // plans_by_size[k]: the relation sets of size k with a plan.
        let mut plans_by_size: Vec<Vec<RelSet>> = vec![Vec::new(); n + 1];
        plans_by_size[1] = (0..n).map(RelSet::single).collect();

        for s in 2..=n {
            for s1 in 1..=s / 2 {
                let s2 = s - s1;
                if s1 != s2 {
                    for i in 0..plans_by_size[s1].len() {
                        let a = plans_by_size[s1][i];
                        for j in 0..plans_by_size[s2].len() {
                            let b = plans_by_size[s2][j];
                            d.counters.inner += 1;
                            if a.overlaps(b) {
                                continue;
                            }
                            if !d.g.sets_connected(a, b) {
                                continue;
                            }
                            d.counters.csg_cmp_pairs += 2;
                            d.counters.ono_lohman += 1;
                            if d.emit_pair_both_orders(a, b)? {
                                plans_by_size[s].push(a | b);
                            }
                        }
                    }
                } else {
                    // Equal sizes: unordered pairs from the same list.
                    for i in 0..plans_by_size[s1].len() {
                        let a = plans_by_size[s1][i];
                        for j in i + 1..plans_by_size[s1].len() {
                            let b = plans_by_size[s1][j];
                            d.counters.inner += 1;
                            if a.overlaps(b) {
                                continue;
                            }
                            if !d.g.sets_connected(a, b) {
                                continue;
                            }
                            d.counters.csg_cmp_pairs += 2;
                            d.counters.ono_lohman += 1;
                            if d.emit_pair_both_orders(a, b)? {
                                plans_by_size[s].push(a | b);
                            }
                        }
                    }
                }
            }
        }
        d.finish()
    }
}

/// DPsize exactly as printed in Fig. 1: ordered size splits
/// (`1 ≤ s₁ < s`), every ordered plan pair tested. Kept for ablation —
/// its `InnerCounter` is roughly twice [`DpSize`]'s.
#[derive(Debug, Clone, Copy, Default)]
pub struct DpSizeNaive;

impl JoinOrderer for DpSizeNaive {
    fn name(&self) -> &'static str {
        "DPsize-naive"
    }

    fn optimize_controlled(
        &self,
        g: &QueryGraph,
        catalog: &Catalog,
        model: &dyn CostModel,
        obs: &dyn Observer,
        ctl: &CancellationToken,
    ) -> Result<DpResult, OptimizeError> {
        let mut d = Driver::new(g, catalog, model, true, self.name(), obs, ctl)?;
        let n = g.num_relations();

        let mut plans_by_size: Vec<Vec<RelSet>> = vec![Vec::new(); n + 1];
        plans_by_size[1] = (0..n).map(RelSet::single).collect();

        for s in 2..=n {
            for s1 in 1..s {
                let s2 = s - s1;
                for i in 0..plans_by_size[s1].len() {
                    let a = plans_by_size[s1][i];
                    for j in 0..plans_by_size[s2].len() {
                        let b = plans_by_size[s2][j];
                        d.counters.inner += 1;
                        if a.overlaps(b) {
                            continue;
                        }
                        if !d.g.sets_connected(a, b) {
                            continue;
                        }
                        d.counters.csg_cmp_pairs += 1;
                        if d.emit_pair_one_order(a, b)? {
                            plans_by_size[s].push(a | b);
                        }
                    }
                }
            }
        }
        d.counters.ono_lohman = d.counters.csg_cmp_pairs / 2;
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinopt_cost::{workload, Cout};
    use joinopt_qgraph::{formulas, GraphKind};

    #[test]
    fn single_relation_query() {
        let w = workload::family_workload(GraphKind::Chain, 1, 0);
        let r = DpSize.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        assert_eq!(r.cost, 0.0);
        assert_eq!(r.tree.num_joins(), 0);
        assert_eq!(r.counters.inner, 0);
    }

    #[test]
    fn rejects_disconnected() {
        let g = QueryGraph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let cat = Catalog::new(&g);
        assert!(DpSize.optimize(&g, &cat, &Cout).is_err());
        assert!(DpSizeNaive.optimize(&g, &cat, &Cout).is_err());
    }

    #[test]
    fn rejects_empty() {
        let g = QueryGraph::new(0).unwrap();
        let cat = Catalog::new(&g);
        assert!(matches!(
            DpSize.optimize(&g, &cat, &Cout),
            Err(OptimizeError::EmptyQuery)
        ));
    }

    #[test]
    fn inner_counter_matches_figure3_small() {
        // Figure 3 sample values for n ∈ {2, 5}; larger n are covered by
        // the cross-validation integration tests.
        let expect = [
            (GraphKind::Chain, 2, 1),
            (GraphKind::Chain, 5, 73),
            (GraphKind::Cycle, 5, 120),
            (GraphKind::Star, 5, 110),
            (GraphKind::Clique, 5, 280),
        ];
        for (kind, n, want) in expect {
            let w = workload::family_workload(kind, n, 1);
            let r = DpSize.optimize(&w.graph, &w.catalog, &Cout).unwrap();
            assert_eq!(r.counters.inner, want, "{kind} n={n}");
        }
    }

    #[test]
    fn csg_cmp_pair_counter_is_graph_property() {
        for kind in GraphKind::ALL {
            for n in 2..=9 {
                let w = workload::family_workload(kind, n, 7);
                let r = DpSize.optimize(&w.graph, &w.catalog, &Cout).unwrap();
                assert_eq!(
                    u128::from(r.counters.csg_cmp_pairs),
                    formulas::ccp_total(kind, n as u64),
                    "{kind} n={n}"
                );
                assert_eq!(r.counters.ono_lohman, r.counters.csg_cmp_pairs / 2);
            }
        }
    }

    #[test]
    fn naive_finds_same_cost_with_more_work() {
        for kind in GraphKind::ALL {
            let w = workload::family_workload(kind, 7, 3);
            let opt = DpSize.optimize(&w.graph, &w.catalog, &Cout).unwrap();
            let naive = DpSizeNaive.optimize(&w.graph, &w.catalog, &Cout).unwrap();
            // Equally-cheap plans can accumulate the same cost in a
            // different summation order, so compare up to rounding.
            let tol = 1e-12 * opt.cost.abs().max(1.0);
            assert!((opt.cost - naive.cost).abs() <= tol, "{kind}");
            assert!(naive.counters.inner > opt.counters.inner, "{kind}");
            assert_eq!(
                opt.counters.csg_cmp_pairs, naive.counters.csg_cmp_pairs,
                "{kind}"
            );
        }
    }

    #[test]
    fn table_covers_exactly_connected_sets() {
        let w = workload::family_workload(GraphKind::Chain, 6, 5);
        let r = DpSize.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        assert_eq!(
            u128::from(r.table_size as u64),
            formulas::csg_count(GraphKind::Chain, 6)
        );
        assert_eq!(r.tree.relations(), w.graph.all_relations());
    }
}
