//! The degradation ladder: what happens when a budget trips.
//!
//! Exact DP is exponential on dense graphs — the paper's central
//! result — so a production pipeline wraps it in fallbacks: when a
//! resource budget trips mid-run, [`OptimizeRequest`] configured with
//! [`BudgetAction::Degrade`] re-runs the query down the ladder
//!
//! ```text
//! exact DP  →  IDP (block size 4)  →  GOO greedy
//! ```
//!
//! and tags the outcome with a [`DegradationInfo`] describing which
//! rung produced the plan and why the ladder was entered.
//!
//! [`OptimizeRequest`]: crate::OptimizeRequest

use std::time::Duration;

use crate::error::OptimizeError;

/// Block size the IDP rung of the ladder uses: small enough that its
/// bounded DP tables stay tiny even on cliques, large enough to beat
/// pure greedy on plan quality.
pub const DEGRADE_IDP_BLOCK_SIZE: usize = 4;

/// Policy for a tripped budget, set via
/// [`OptimizeRequest::on_budget_exceeded`](crate::OptimizeRequest::on_budget_exceeded).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BudgetAction {
    /// Fail the request with the budget error (the default).
    #[default]
    Error,
    /// Fall back down the ladder and return the best plan a cheaper
    /// rung can produce, tagged with [`DegradationInfo`].
    Degrade,
}

/// The ladder rung that produced the returned plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationRung {
    /// The exact DP completed; only the (post-run) cost budget tripped.
    Exact,
    /// Iterative DP with the given block size.
    Idp {
        /// The block size the rung ran with.
        block_size: usize,
    },
    /// Greedy operator ordering (GOO).
    Greedy,
}

impl DegradationRung {
    /// Stable lower-case label for telemetry and display.
    pub fn as_str(self) -> &'static str {
        match self {
            DegradationRung::Exact => "exact",
            DegradationRung::Idp { .. } => "idp",
            DegradationRung::Greedy => "greedy",
        }
    }
}

/// Which condition forced the fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripKind {
    /// The wall-clock budget.
    Time,
    /// The memory budget.
    Memory,
    /// The (post-run) cost budget.
    Cost,
    /// An isolated internal failure (worker panic, injected fault).
    Internal,
}

impl TripKind {
    /// Stable lower-case label for telemetry and display.
    pub fn as_str(self) -> &'static str {
        match self {
            TripKind::Time => "time",
            TripKind::Memory => "memory",
            TripKind::Cost => "cost",
            TripKind::Internal => "internal",
        }
    }

    /// Classifies an error from the exact attempt; `None` means the
    /// error is not degradable (validation errors, explicit
    /// cancellation) and must be surfaced as-is.
    pub(crate) fn from_error(e: &OptimizeError) -> Option<TripKind> {
        match e {
            OptimizeError::TimeBudgetExceeded { .. } => Some(TripKind::Time),
            OptimizeError::MemoryBudgetExceeded { .. } => Some(TripKind::Memory),
            OptimizeError::CostBudgetExceeded { .. } => Some(TripKind::Cost),
            OptimizeError::Internal(_) => Some(TripKind::Internal),
            _ => None,
        }
    }
}

/// How a degraded outcome came to be: attached to
/// [`OptimizeOutcome::degradation`](crate::OptimizeOutcome::degradation)
/// when the ladder was taken.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationInfo {
    /// The rung that produced the returned plan.
    pub rung: DegradationRung,
    /// The condition that forced the fallback.
    pub trigger: TripKind,
    /// Human-readable rendering of the original failure.
    pub detail: String,
    /// The time budget the exact attempt ran under, if any.
    pub time_budget: Option<Duration>,
    /// The memory budget in bytes, if any.
    pub memory_budget: Option<usize>,
    /// Bytes the exact attempt had charged when it tripped.
    pub memory_used: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(DegradationRung::Exact.as_str(), "exact");
        assert_eq!(DegradationRung::Idp { block_size: 4 }.as_str(), "idp");
        assert_eq!(DegradationRung::Greedy.as_str(), "greedy");
        assert_eq!(TripKind::Time.as_str(), "time");
        assert_eq!(TripKind::Memory.as_str(), "memory");
        assert_eq!(TripKind::Cost.as_str(), "cost");
        assert_eq!(TripKind::Internal.as_str(), "internal");
    }

    #[test]
    fn only_budget_and_internal_errors_are_degradable() {
        use std::time::Duration;
        assert_eq!(
            TripKind::from_error(&OptimizeError::TimeBudgetExceeded {
                budget: Duration::ZERO
            }),
            Some(TripKind::Time)
        );
        assert_eq!(
            TripKind::from_error(&OptimizeError::MemoryBudgetExceeded { used: 2, budget: 1 }),
            Some(TripKind::Memory)
        );
        assert_eq!(
            TripKind::from_error(&OptimizeError::Internal("boom".into())),
            Some(TripKind::Internal)
        );
        assert_eq!(TripKind::from_error(&OptimizeError::Cancelled), None);
        assert_eq!(TripKind::from_error(&OptimizeError::EmptyQuery), None);
    }
}
