//! The session API: [`OptimizeRequest`] and [`OptimizeOutcome`].
//!
//! [`Optimizer::optimize`](crate::Optimizer::optimize) answers "give me
//! the best plan" with defaults everywhere. `OptimizeRequest` is the
//! full-control entry point underneath it: one builder that carries the
//! algorithm, the cost model, the thread count, optional time and cost
//! budgets, and a telemetry observer — and that can run inside a pooled
//! [`Session`] so repeated queries reuse the DP-table and plan-arena
//! allocations.
//!
//! ```
//! use joinopt_core::{Algorithm, OptimizeRequest};
//! use joinopt_cost::{workload, HashJoin};
//! use joinopt_qgraph::GraphKind;
//!
//! let w = workload::family_workload(GraphKind::Clique, 8, 7);
//! let outcome = OptimizeRequest::new(&w.graph, &w.catalog)
//!     .with_algorithm(Algorithm::DpSub)
//!     .with_cost_model(&HashJoin)
//!     .with_threads(2)
//!     .run()
//!     .unwrap();
//! assert_eq!(outcome.algorithm, Algorithm::DpSub);
//! assert_eq!(outcome.threads, 2);
//! assert_eq!(outcome.result.tree.num_relations(), 8);
//! ```

use std::time::{Duration, Instant};

use joinopt_cost::{Catalog, CostModel, Cout};
use joinopt_qgraph::QueryGraph;
use joinopt_telemetry::{NoopObserver, Observer};

use crate::error::OptimizeError;
use crate::optimizer::Algorithm;
use crate::parallel::{run_level_synchronous, DpSubVariant, Session, MAX_ENGINE_RELATIONS};
use crate::result::DpResult;

/// A fully configured optimization run, built incrementally.
///
/// Defaults: [`Algorithm::Auto`], the `C_out` cost model, automatic
/// thread count ([`std::thread::available_parallelism`]), no budgets,
/// no telemetry.
///
/// The DPsub family ([`Algorithm::DpSub`], [`Algorithm::DpSubUnfiltered`],
/// [`Algorithm::DpSubCrossProducts`]) runs on the level-synchronous
/// engine of [`crate::parallel`] whenever the query fits its
/// direct-addressed tables, and is therefore the only family that
/// honours `with_threads` beyond 1; every other algorithm runs its
/// sequential implementation. Engine results are bit-identical to the
/// sequential algorithms at any thread count (see the module docs of
/// [`crate::parallel`] for the argument), except for the `plans_built`
/// statistic: the engine materializes exactly one plan node per DP-table
/// entry, the sequential driver one per table *improvement*.
#[must_use = "an OptimizeRequest does nothing until run"]
pub struct OptimizeRequest<'a> {
    graph: &'a QueryGraph,
    catalog: &'a Catalog,
    algorithm: Algorithm,
    model: &'a dyn CostModel,
    threads: usize,
    time_budget: Option<Duration>,
    cost_budget: Option<f64>,
    observer: &'a dyn Observer,
}

/// What an [`OptimizeRequest`] produced: the plan plus the resolved
/// execution parameters.
#[derive(Debug, Clone)]
pub struct OptimizeOutcome {
    /// The optimization result (plan, cost, counters, statistics).
    pub result: DpResult,
    /// The concrete algorithm that ran (`Auto` resolved).
    pub algorithm: Algorithm,
    /// Worker threads the run was configured with (1 for algorithms
    /// without a parallel path).
    pub threads: usize,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

impl OptimizeOutcome {
    /// Discards the execution metadata, keeping the [`DpResult`].
    pub fn into_result(self) -> DpResult {
        self.result
    }
}

impl<'a> OptimizeRequest<'a> {
    /// A request for one query with all defaults.
    pub fn new(graph: &'a QueryGraph, catalog: &'a Catalog) -> OptimizeRequest<'a> {
        OptimizeRequest {
            graph,
            catalog,
            algorithm: Algorithm::Auto,
            model: &Cout,
            threads: 0,
            time_budget: None,
            cost_budget: None,
            observer: &NoopObserver,
        }
    }

    /// Selects the algorithm (default [`Algorithm::Auto`]).
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Selects the cost model (default `C_out`).
    pub fn with_cost_model(mut self, model: &'a dyn CostModel) -> Self {
        self.model = model;
        self
    }

    /// Sets the worker-thread count for algorithms with a parallel
    /// path. `0` (the default) means [`std::thread::available_parallelism`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Aborts the run if it exceeds `budget` wall-clock time. Enforced
    /// at the parallel engine's level barriers (best effort: a
    /// sequential algorithm mid-run is not interrupted).
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Fails the run (after optimization) if even the *optimal* plan
    /// costs more than `budget` — a guard for callers that would rather
    /// reject a query than execute a catastrophic join.
    pub fn with_cost_budget(mut self, budget: f64) -> Self {
        self.cost_budget = Some(budget);
        self
    }

    /// Streams telemetry events to `observer` (default: none).
    pub fn with_observer(mut self, observer: &'a dyn Observer) -> Self {
        self.observer = observer;
        self
    }

    /// Runs the request with one-shot (non-pooled) allocations.
    pub fn run(self) -> Result<OptimizeOutcome, OptimizeError> {
        let mut session = Session::new();
        self.run_in(&mut session)
    }

    /// Runs the request inside `session`, reusing its pooled DP-table
    /// and plan-arena allocations.
    pub fn run_in(self, session: &mut Session) -> Result<OptimizeOutcome, OptimizeError> {
        let start = Instant::now();
        let threads = if self.threads == 0 {
            available_parallelism()
        } else {
            self.threads
        };
        let algorithm = match self.algorithm {
            Algorithm::Auto => Algorithm::select_auto_with_parallelism(self.graph, threads),
            concrete => concrete,
        };
        let variant = match algorithm {
            Algorithm::DpSub => Some(DpSubVariant::Filtered),
            Algorithm::DpSubUnfiltered => Some(DpSubVariant::Unfiltered),
            Algorithm::DpSubCrossProducts => Some(DpSubVariant::CrossProducts),
            _ => None,
        };
        let engine_variant = variant.filter(|_| self.graph.num_relations() <= MAX_ENGINE_RELATIONS);
        let deadline = self.time_budget.map(|b| (start + b, b));
        let (result, threads) = match engine_variant {
            Some(v) => {
                let r = run_level_synchronous(
                    self.graph,
                    self.catalog,
                    self.model,
                    v,
                    threads,
                    session,
                    algorithm.orderer(self.graph).name(),
                    self.observer,
                    deadline,
                )?;
                (r, threads)
            }
            None => {
                let r = algorithm.orderer(self.graph).optimize_observed(
                    self.graph,
                    self.catalog,
                    self.model,
                    self.observer,
                )?;
                (r, 1)
            }
        };
        if let Some(budget) = self.cost_budget {
            if result.cost > budget {
                return Err(OptimizeError::CostBudgetExceeded {
                    cost: result.cost,
                    budget,
                });
            }
        }
        Ok(OptimizeOutcome {
            result,
            algorithm,
            threads,
            elapsed: start.elapsed(),
        })
    }
}

/// This machine's available parallelism, defaulting to 1 when the
/// system will not say.
pub(crate) fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::JoinOrderer as _;
    use crate::{DpCcp, DpSub};
    use joinopt_cost::{workload, HashJoin};
    use joinopt_qgraph::GraphKind;

    #[test]
    fn defaults_resolve_auto_and_succeed() {
        let w = workload::family_workload(GraphKind::Chain, 7, 0);
        let outcome = OptimizeRequest::new(&w.graph, &w.catalog).run().unwrap();
        assert_ne!(outcome.algorithm, Algorithm::Auto, "Auto must resolve");
        assert!(outcome.threads >= 1);
        assert_eq!(outcome.result.tree.num_relations(), 7);
        let direct = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        assert_eq!(outcome.result.cost.to_bits(), direct.cost.to_bits());
    }

    #[test]
    fn engine_path_matches_sequential_dpsub() {
        let w = workload::family_workload(GraphKind::Cycle, 9, 4);
        let seq = DpSub.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        for threads in [1, 2, 8] {
            let outcome = OptimizeRequest::new(&w.graph, &w.catalog)
                .with_algorithm(Algorithm::DpSub)
                .with_threads(threads)
                .run()
                .unwrap();
            assert_eq!(outcome.threads, threads);
            assert_eq!(outcome.result.cost.to_bits(), seq.cost.to_bits());
            assert_eq!(outcome.result.tree, seq.tree);
            assert_eq!(outcome.result.counters, seq.counters);
        }
    }

    #[test]
    fn cost_model_and_non_engine_algorithms_pass_through() {
        let w = workload::family_workload(GraphKind::Star, 7, 2);
        let outcome = OptimizeRequest::new(&w.graph, &w.catalog)
            .with_algorithm(Algorithm::DpCcp)
            .with_cost_model(&HashJoin)
            .with_threads(4)
            .run()
            .unwrap();
        // DPccp has no parallel path: the outcome reports 1 thread.
        assert_eq!(outcome.threads, 1);
        let direct = DpCcp.optimize(&w.graph, &w.catalog, &HashJoin).unwrap();
        assert_eq!(outcome.result.cost.to_bits(), direct.cost.to_bits());
    }

    #[test]
    fn cost_budget_rejects_expensive_plans_and_admits_cheap_ones() {
        let w = workload::family_workload(GraphKind::Chain, 6, 1);
        let optimal = OptimizeRequest::new(&w.graph, &w.catalog)
            .run()
            .unwrap()
            .result
            .cost;
        let err = OptimizeRequest::new(&w.graph, &w.catalog)
            .with_cost_budget(optimal / 2.0)
            .run()
            .unwrap_err();
        assert!(matches!(err, OptimizeError::CostBudgetExceeded { .. }));
        let ok = OptimizeRequest::new(&w.graph, &w.catalog)
            .with_cost_budget(optimal * 2.0)
            .run();
        assert!(ok.is_ok());
    }

    #[test]
    fn time_budget_zero_aborts_engine_runs() {
        let w = workload::family_workload(GraphKind::Clique, 10, 0);
        let err = OptimizeRequest::new(&w.graph, &w.catalog)
            .with_algorithm(Algorithm::DpSub)
            .with_time_budget(Duration::ZERO)
            .run()
            .unwrap_err();
        assert!(matches!(err, OptimizeError::TimeBudgetExceeded { .. }));
    }

    #[test]
    fn outcome_into_result_keeps_plan() {
        let w = workload::family_workload(GraphKind::Chain, 5, 5);
        let outcome = OptimizeRequest::new(&w.graph, &w.catalog).run().unwrap();
        let cost = outcome.result.cost;
        assert_eq!(outcome.into_result().cost, cost);
    }
}
