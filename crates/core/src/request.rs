//! The session API: [`OptimizeRequest`] and [`OptimizeOutcome`].
//!
//! [`Optimizer::optimize`](crate::Optimizer::optimize) answers "give me
//! the best plan" with defaults everywhere. `OptimizeRequest` is the
//! full-control entry point underneath it: one builder that carries the
//! algorithm, the cost model, the thread count, optional time, memory
//! and cost budgets, a cancellation flag, the budget policy, and a
//! telemetry observer — and that can run inside a pooled [`Session`] so
//! repeated queries reuse the DP-table and plan-arena allocations.
//!
//! With [`BudgetAction::Degrade`] a tripped budget does not fail the
//! request: the run falls down the ladder described in
//! [`crate::degrade`] and the outcome carries a [`DegradationInfo`]
//! explaining which rung produced the plan and why.
//!
//! ```
//! use joinopt_core::{Algorithm, OptimizeRequest};
//! use joinopt_cost::{workload, HashJoin};
//! use joinopt_qgraph::GraphKind;
//!
//! let w = workload::family_workload(GraphKind::Clique, 8, 7);
//! let outcome = OptimizeRequest::new(&w.graph, &w.catalog)
//!     .with_algorithm(Algorithm::DpSub)
//!     .with_cost_model(&HashJoin)
//!     .with_threads(2)
//!     .run()
//!     .unwrap();
//! assert_eq!(outcome.algorithm, Algorithm::DpSub);
//! assert_eq!(outcome.threads, 2);
//! assert_eq!(outcome.result.tree.num_relations(), 8);
//! ```

use std::time::{Duration, Instant};

use joinopt_cost::{Catalog, CostModel, Cout};
use joinopt_qgraph::QueryGraph;
use joinopt_telemetry::{Event, NoopObserver, Observer};

use crate::cancel::{CancelFlag, CancellationToken};
use crate::degrade::{
    BudgetAction, DegradationInfo, DegradationRung, TripKind, DEGRADE_IDP_BLOCK_SIZE,
};
use crate::error::OptimizeError;
use crate::greedy::Goo;
use crate::idp::Idp;
use crate::optimizer::Algorithm;
use crate::parallel::{run_level_synchronous, DpSubVariant, Session, MAX_ENGINE_RELATIONS};
use crate::result::{DpResult, JoinOrderer};

/// A fully configured optimization run, built incrementally.
///
/// Defaults: [`Algorithm::Auto`], the `C_out` cost model, automatic
/// thread count ([`std::thread::available_parallelism`]), no budgets,
/// no telemetry.
///
/// The DPsub family ([`Algorithm::DpSub`], [`Algorithm::DpSubUnfiltered`],
/// [`Algorithm::DpSubCrossProducts`]) runs on the level-synchronous
/// engine of [`crate::parallel`] whenever the query fits its
/// direct-addressed tables, and is therefore the only family that
/// honours `with_threads` beyond 1; every other algorithm runs its
/// sequential implementation. Engine results are bit-identical to the
/// sequential algorithms at any thread count (see the module docs of
/// [`crate::parallel`] for the argument), except for the `plans_built`
/// statistic: the engine materializes exactly one plan node per DP-table
/// entry, the sequential driver one per table *improvement*.
#[must_use = "an OptimizeRequest does nothing until run"]
pub struct OptimizeRequest<'a> {
    graph: &'a QueryGraph,
    catalog: &'a Catalog,
    algorithm: Algorithm,
    model: &'a dyn CostModel,
    threads: usize,
    time_budget: Option<Duration>,
    cost_budget: Option<f64>,
    memory_budget: Option<usize>,
    on_budget: BudgetAction,
    cancel: Option<CancelFlag>,
    observer: &'a dyn Observer,
}

/// What an [`OptimizeRequest`] produced: the plan plus the resolved
/// execution parameters.
#[derive(Debug, Clone)]
pub struct OptimizeOutcome {
    /// The optimization result (plan, cost, counters, statistics).
    pub result: DpResult,
    /// The concrete algorithm that ran (`Auto` resolved).
    pub algorithm: Algorithm,
    /// Worker threads the run was configured with (1 for algorithms
    /// without a parallel path).
    pub threads: usize,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// `Some` when a budget tripped and [`BudgetAction::Degrade`] let a
    /// ladder rung produce the plan; `None` on the exact path.
    pub degradation: Option<DegradationInfo>,
}

impl OptimizeOutcome {
    /// Discards the execution metadata, keeping the [`DpResult`].
    pub fn into_result(self) -> DpResult {
        self.result
    }
}

impl<'a> OptimizeRequest<'a> {
    /// A request for one query with all defaults.
    pub fn new(graph: &'a QueryGraph, catalog: &'a Catalog) -> OptimizeRequest<'a> {
        OptimizeRequest {
            graph,
            catalog,
            algorithm: Algorithm::Auto,
            model: &Cout,
            threads: 0,
            time_budget: None,
            cost_budget: None,
            memory_budget: None,
            on_budget: BudgetAction::Error,
            cancel: None,
            observer: &NoopObserver,
        }
    }

    /// Selects the algorithm (default [`Algorithm::Auto`]).
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Selects the cost model (default `C_out`).
    pub fn with_cost_model(mut self, model: &'a dyn CostModel) -> Self {
        self.model = model;
        self
    }

    /// Sets the worker-thread count for algorithms with a parallel
    /// path. `0` (the default) means [`std::thread::available_parallelism`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Aborts the run if it exceeds `budget` wall-clock time. Both the
    /// sequential algorithms and the parallel engine poll the shared
    /// [`CancellationToken`] inside their inner enumeration loops, so
    /// even a mid-level run stops within a bounded number of
    /// iterations.
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Fails the run (after optimization) if even the *optimal* plan
    /// costs more than `budget` — a guard for callers that would rather
    /// reject a query than execute a catastrophic join.
    pub fn with_cost_budget(mut self, budget: f64) -> Self {
        self.cost_budget = Some(budget);
        self
    }

    /// Aborts the run once its DP tables and plan arenas have grown
    /// past `bytes`. Accounting covers the dominant allocations (the
    /// memo table and the plan arena), not every transient vector.
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Chooses what a tripped budget does: fail the request (the
    /// default, [`BudgetAction::Error`]) or fall down the degradation
    /// ladder ([`BudgetAction::Degrade`]) and return a best-effort plan
    /// tagged with [`DegradationInfo`].
    pub fn on_budget_exceeded(mut self, action: BudgetAction) -> Self {
        self.on_budget = action;
        self
    }

    /// Attaches a cooperative cancellation flag: setting it from any
    /// thread makes the run (including every degraded rung) return
    /// [`OptimizeError::Cancelled`] at its next poll.
    pub fn with_cancel_flag(mut self, flag: CancelFlag) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Streams telemetry events to `observer` (default: none).
    pub fn with_observer(mut self, observer: &'a dyn Observer) -> Self {
        self.observer = observer;
        self
    }

    /// Runs the request with one-shot (non-pooled) allocations.
    pub fn run(self) -> Result<OptimizeOutcome, OptimizeError> {
        let mut session = Session::new();
        self.run_in(&mut session)
    }

    /// Runs the request inside `session`, reusing its pooled DP-table
    /// and plan-arena allocations.
    pub fn run_in(self, session: &mut Session) -> Result<OptimizeOutcome, OptimizeError> {
        let start = Instant::now();
        let threads = if self.threads == 0 {
            available_parallelism()
        } else {
            self.threads
        };
        let algorithm = match self.algorithm {
            Algorithm::Auto => Algorithm::select_auto_with_model(self.graph, threads, self.model),
            concrete => concrete,
        };
        let variant = match algorithm {
            Algorithm::DpSub => Some(DpSubVariant::Filtered),
            Algorithm::DpSubUnfiltered => Some(DpSubVariant::Unfiltered),
            Algorithm::DpSubCrossProducts => Some(DpSubVariant::CrossProducts),
            _ => None,
        };
        let engine_variant = variant.filter(|_| self.graph.num_relations() <= MAX_ENGINE_RELATIONS);
        let ctl = CancellationToken::new(self.cancel.clone(), self.time_budget, self.memory_budget);
        let attempt = match engine_variant {
            Some(v) => run_level_synchronous(
                self.graph,
                self.catalog,
                self.model,
                v,
                threads,
                session,
                algorithm.orderer(self.graph).name(),
                self.observer,
                &ctl,
            )
            .map(|r| (r, threads)),
            // DPconv pools its dense tables and rank lists in the
            // session, like the level-synchronous engine pools its own.
            None if algorithm == Algorithm::DpConv => crate::dpconv::run_pooled(
                self.graph,
                self.catalog,
                self.model,
                self.observer,
                &ctl,
                session.dpconv_scratch(),
            )
            .map(|r| (r, 1)),
            None => algorithm
                .orderer(self.graph)
                .optimize_controlled(self.graph, self.catalog, self.model, self.observer, &ctl)
                .map(|r| (r, 1)),
        };
        match attempt {
            Ok((result, threads)) => {
                if let Some(budget) = self.cost_budget {
                    if result.cost > budget {
                        let err = OptimizeError::CostBudgetExceeded {
                            cost: result.cost,
                            budget,
                        };
                        if self.on_budget != BudgetAction::Degrade {
                            return Err(err);
                        }
                        // The exact plan already exists and nothing
                        // cheaper can beat it: keep it, tagged so the
                        // caller knows the cost guard tripped.
                        self.emit_budget_exceeded(TripKind::Cost);
                        self.emit_degraded(DegradationRung::Exact);
                        let degradation = Some(self.degradation_info(
                            DegradationRung::Exact,
                            TripKind::Cost,
                            &err,
                            &ctl,
                        ));
                        return Ok(OptimizeOutcome {
                            result,
                            algorithm,
                            threads,
                            elapsed: start.elapsed(),
                            degradation,
                        });
                    }
                }
                Ok(OptimizeOutcome {
                    result,
                    algorithm,
                    threads,
                    elapsed: start.elapsed(),
                    degradation: None,
                })
            }
            Err(err) => {
                let Some(trigger) = TripKind::from_error(&err) else {
                    return Err(err); // validation error or explicit cancellation
                };
                if self.on_budget != BudgetAction::Degrade {
                    return Err(err);
                }
                self.degrade(algorithm, trigger, err, &ctl, start)
            }
        }
    }

    /// Walks the ladder below the exact attempt: IDP with a small block
    /// size, then GOO. Each rung runs under a fresh token that keeps
    /// the cancellation flag and the memory cap (the heuristics'
    /// footprints are far smaller) but drops the wall-clock deadline —
    /// the original deadline has already passed, so re-using it would
    /// trip instantly and no rung could ever succeed.
    fn degrade(
        &self,
        algorithm: Algorithm,
        trigger: TripKind,
        original: OptimizeError,
        tripped: &CancellationToken,
        start: Instant,
    ) -> Result<OptimizeOutcome, OptimizeError> {
        let rungs = [
            DegradationRung::Idp {
                block_size: DEGRADE_IDP_BLOCK_SIZE,
            },
            DegradationRung::Greedy,
        ];
        for rung in rungs {
            let ctl = CancellationToken::new(self.cancel.clone(), None, self.memory_budget);
            let attempt = match rung {
                DegradationRung::Idp { block_size } => Idp::with_block_size(block_size)
                    .optimize_controlled(self.graph, self.catalog, self.model, self.observer, &ctl),
                DegradationRung::Greedy => Goo.optimize_controlled(
                    self.graph,
                    self.catalog,
                    self.model,
                    self.observer,
                    &ctl,
                ),
                DegradationRung::Exact => unreachable!("the ladder starts below the exact rung"),
            };
            match attempt {
                Ok(result) => {
                    // Emitted after the rung's own RunStart..RunEnd so
                    // observers that aggregate per run (the metrics
                    // collector resets on RunStart) attribute the pair
                    // to the run that produced the returned plan.
                    self.emit_budget_exceeded(trigger);
                    self.emit_degraded(rung);
                    let degradation =
                        Some(self.degradation_info(rung, trigger, &original, tripped));
                    return Ok(OptimizeOutcome {
                        result,
                        algorithm,
                        threads: 1,
                        elapsed: start.elapsed(),
                        degradation,
                    });
                }
                // A rung that trips its own budget falls through to the
                // next one; cancellation (or a validation error) is
                // final and outranks the original budget error.
                Err(e) if TripKind::from_error(&e).is_some() => continue,
                Err(e) => return Err(e),
            }
        }
        Err(original)
    }

    fn emit_budget_exceeded(&self, trigger: TripKind) {
        if self.observer.enabled() {
            self.observer.on_event(Event::BudgetExceeded {
                budget: trigger.as_str(),
            });
        }
    }

    fn emit_degraded(&self, rung: DegradationRung) {
        if self.observer.enabled() {
            self.observer.on_event(Event::Degraded {
                rung: rung.as_str(),
            });
        }
    }

    fn degradation_info(
        &self,
        rung: DegradationRung,
        trigger: TripKind,
        original: &OptimizeError,
        tripped: &CancellationToken,
    ) -> DegradationInfo {
        DegradationInfo {
            rung,
            trigger,
            detail: original.to_string(),
            time_budget: self.time_budget,
            memory_budget: self.memory_budget,
            memory_used: tripped.memory_used(),
        }
    }
}

/// This machine's available parallelism, defaulting to 1 when the
/// system will not say.
pub(crate) fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DpCcp, DpSub};
    use joinopt_cost::{workload, HashJoin};
    use joinopt_qgraph::GraphKind;

    #[test]
    fn dpconv_pools_sessions_and_matches_direct_runs() {
        use crate::result::JoinOrderer as _;
        let mut session = Session::new();
        for seed in 0..3 {
            let w = workload::family_workload(GraphKind::Clique, 9, seed);
            let outcome = OptimizeRequest::new(&w.graph, &w.catalog)
                .with_algorithm(Algorithm::DpConv)
                .run_in(&mut session)
                .unwrap();
            let direct = crate::DpConv
                .optimize(&w.graph, &w.catalog, &joinopt_cost::Cout)
                .unwrap();
            assert_eq!(outcome.result.cost.to_bits(), direct.cost.to_bits());
            assert_eq!(outcome.result.tree, direct.tree);
            assert_eq!(outcome.result.counters, direct.counters);
        }
        assert_eq!(session.runs(), 3, "pooled DPconv runs are served runs");
        assert!(session.pooled_bytes() > 0, "scratch stays pooled");
    }

    #[test]
    fn dpconv_model_refusal_bypasses_the_degradation_ladder() {
        // The pinned cost-model contract at the request level: an
        // incompatible model is a typed refusal even when the caller
        // opted into degraded plans — the ladder is for budget trips,
        // not for optimizing the wrong objective with a heuristic.
        let w = workload::family_workload(GraphKind::Clique, 6, 1);
        let err = OptimizeRequest::new(&w.graph, &w.catalog)
            .with_algorithm(Algorithm::DpConv)
            .with_cost_model(&HashJoin)
            .on_budget_exceeded(BudgetAction::Degrade)
            .run()
            .expect_err("typed refusal, not a degraded heuristic plan");
        assert!(
            matches!(err, OptimizeError::UnsupportedCostModel { .. }),
            "{err}"
        );
    }

    #[test]
    fn auto_resolution_is_model_aware() {
        // A crossover-sized C_out clique resolves Auto to DPconv; the
        // same query under HashJoin must not (DPconv would refuse it).
        let w = workload::family_workload(GraphKind::Clique, Algorithm::DPCONV_MIN_RELATIONS, 0);
        let cout = OptimizeRequest::new(&w.graph, &w.catalog).run().unwrap();
        assert_eq!(cout.algorithm, Algorithm::DpConv);
        let hash = OptimizeRequest::new(&w.graph, &w.catalog)
            .with_cost_model(&HashJoin)
            .run()
            .unwrap();
        assert_ne!(hash.algorithm, Algorithm::DpConv);
        // And the two exact engines agree with each other where both
        // apply: the Auto hand-off cannot change the optimum.
        let pinned = OptimizeRequest::new(&w.graph, &w.catalog)
            .with_algorithm(Algorithm::DpCcp)
            .run()
            .unwrap();
        let tol = 1e-9 * pinned.result.cost.abs().max(1.0);
        assert!((cout.result.cost - pinned.result.cost).abs() <= tol);
    }

    #[test]
    fn defaults_resolve_auto_and_succeed() {
        let w = workload::family_workload(GraphKind::Chain, 7, 0);
        let outcome = OptimizeRequest::new(&w.graph, &w.catalog).run().unwrap();
        assert_ne!(outcome.algorithm, Algorithm::Auto, "Auto must resolve");
        assert!(outcome.threads >= 1);
        assert_eq!(outcome.result.tree.num_relations(), 7);
        let direct = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        assert_eq!(outcome.result.cost.to_bits(), direct.cost.to_bits());
    }

    #[test]
    fn engine_path_matches_sequential_dpsub() {
        let w = workload::family_workload(GraphKind::Cycle, 9, 4);
        let seq = DpSub.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        for threads in [1, 2, 8] {
            let outcome = OptimizeRequest::new(&w.graph, &w.catalog)
                .with_algorithm(Algorithm::DpSub)
                .with_threads(threads)
                .run()
                .unwrap();
            assert_eq!(outcome.threads, threads);
            assert_eq!(outcome.result.cost.to_bits(), seq.cost.to_bits());
            assert_eq!(outcome.result.tree, seq.tree);
            assert_eq!(outcome.result.counters, seq.counters);
        }
    }

    #[test]
    fn cost_model_and_non_engine_algorithms_pass_through() {
        let w = workload::family_workload(GraphKind::Star, 7, 2);
        let outcome = OptimizeRequest::new(&w.graph, &w.catalog)
            .with_algorithm(Algorithm::DpCcp)
            .with_cost_model(&HashJoin)
            .with_threads(4)
            .run()
            .unwrap();
        // DPccp has no parallel path: the outcome reports 1 thread.
        assert_eq!(outcome.threads, 1);
        let direct = DpCcp.optimize(&w.graph, &w.catalog, &HashJoin).unwrap();
        assert_eq!(outcome.result.cost.to_bits(), direct.cost.to_bits());
    }

    #[test]
    fn cost_budget_rejects_expensive_plans_and_admits_cheap_ones() {
        let w = workload::family_workload(GraphKind::Chain, 6, 1);
        let optimal = OptimizeRequest::new(&w.graph, &w.catalog)
            .run()
            .unwrap()
            .result
            .cost;
        let err = OptimizeRequest::new(&w.graph, &w.catalog)
            .with_cost_budget(optimal / 2.0)
            .run()
            .unwrap_err();
        assert!(matches!(err, OptimizeError::CostBudgetExceeded { .. }));
        let ok = OptimizeRequest::new(&w.graph, &w.catalog)
            .with_cost_budget(optimal * 2.0)
            .run();
        assert!(ok.is_ok());
    }

    #[test]
    fn time_budget_zero_aborts_engine_runs() {
        let w = workload::family_workload(GraphKind::Clique, 10, 0);
        let err = OptimizeRequest::new(&w.graph, &w.catalog)
            .with_algorithm(Algorithm::DpSub)
            .with_time_budget(Duration::ZERO)
            .run()
            .unwrap_err();
        assert!(matches!(err, OptimizeError::TimeBudgetExceeded { .. }));
    }

    #[test]
    fn outcome_into_result_keeps_plan() {
        let w = workload::family_workload(GraphKind::Chain, 5, 5);
        let outcome = OptimizeRequest::new(&w.graph, &w.catalog).run().unwrap();
        let cost = outcome.result.cost;
        assert_eq!(outcome.into_result().cost, cost);
    }

    #[test]
    fn memory_budget_errors_by_default() {
        let w = workload::family_workload(GraphKind::Clique, 12, 0);
        let err = OptimizeRequest::new(&w.graph, &w.catalog)
            .with_algorithm(Algorithm::DpSub)
            .with_memory_budget(1024)
            .run()
            .unwrap_err();
        assert!(matches!(err, OptimizeError::MemoryBudgetExceeded { .. }));
    }

    #[test]
    fn degrade_falls_back_after_a_time_trip() {
        use joinopt_telemetry::MetricsCollector;
        let w = workload::family_workload(GraphKind::Clique, 10, 3);
        let metrics = MetricsCollector::new();
        let outcome = OptimizeRequest::new(&w.graph, &w.catalog)
            .with_algorithm(Algorithm::DpSub)
            .with_time_budget(Duration::ZERO)
            .on_budget_exceeded(BudgetAction::Degrade)
            .with_observer(&metrics)
            .run()
            .unwrap();
        let info = outcome.degradation.as_ref().expect("ladder must be taken");
        assert_eq!(
            info.rung,
            DegradationRung::Idp {
                block_size: DEGRADE_IDP_BLOCK_SIZE
            }
        );
        assert_eq!(info.trigger, TripKind::Time);
        assert_eq!(info.time_budget, Some(Duration::ZERO));
        assert!(
            info.detail.contains("time budget"),
            "detail: {}",
            info.detail
        );
        // The degraded plan is still a complete, connected plan.
        assert_eq!(outcome.result.tree.relations(), w.graph.all_relations());
        assert_eq!(outcome.result.tree.num_joins(), 9);
        assert!(outcome.result.cost.is_finite());
        let report = metrics.report();
        assert_eq!(report.budget_exceeded, Some("time"));
        assert_eq!(report.degraded_rung, Some("idp"));
    }

    #[test]
    fn degrade_falls_back_after_a_memory_trip() {
        let w = workload::family_workload(GraphKind::Clique, 13, 0);
        let outcome = OptimizeRequest::new(&w.graph, &w.catalog)
            .with_algorithm(Algorithm::DpSub)
            .with_memory_budget(64 * 1024)
            .on_budget_exceeded(BudgetAction::Degrade)
            .run()
            .unwrap();
        let info = outcome.degradation.as_ref().expect("ladder must be taken");
        assert_eq!(info.trigger, TripKind::Memory);
        assert_eq!(info.memory_budget, Some(64 * 1024));
        assert!(info.memory_used > 64 * 1024);
        assert_eq!(outcome.result.tree.relations(), w.graph.all_relations());
    }

    #[test]
    fn degrade_keeps_the_exact_plan_on_a_cost_trip() {
        let w = workload::family_workload(GraphKind::Chain, 6, 1);
        let optimal = OptimizeRequest::new(&w.graph, &w.catalog)
            .run()
            .unwrap()
            .result
            .cost;
        let outcome = OptimizeRequest::new(&w.graph, &w.catalog)
            .with_cost_budget(optimal / 2.0)
            .on_budget_exceeded(BudgetAction::Degrade)
            .run()
            .unwrap();
        let info = outcome
            .degradation
            .as_ref()
            .expect("cost trip must be tagged");
        assert_eq!(info.rung, DegradationRung::Exact);
        assert_eq!(info.trigger, TripKind::Cost);
        assert_eq!(outcome.result.cost.to_bits(), optimal.to_bits());
    }

    #[test]
    fn cancellation_outranks_the_degradation_ladder() {
        use crate::cancel::CancelFlag;
        let w = workload::family_workload(GraphKind::Clique, 10, 0);
        let flag = CancelFlag::new();
        flag.cancel();
        let err = OptimizeRequest::new(&w.graph, &w.catalog)
            .with_algorithm(Algorithm::DpSub)
            .with_cancel_flag(flag)
            .on_budget_exceeded(BudgetAction::Degrade)
            .run()
            .unwrap_err();
        assert!(matches!(err, OptimizeError::Cancelled));
    }

    #[test]
    fn untripped_budgets_leave_results_bit_identical() {
        let w = workload::family_workload(GraphKind::Cycle, 9, 4);
        let plain = OptimizeRequest::new(&w.graph, &w.catalog)
            .with_algorithm(Algorithm::DpSub)
            .run()
            .unwrap();
        let budgeted = OptimizeRequest::new(&w.graph, &w.catalog)
            .with_algorithm(Algorithm::DpSub)
            .with_time_budget(Duration::from_secs(3600))
            .with_memory_budget(1 << 30)
            .on_budget_exceeded(BudgetAction::Degrade)
            .run()
            .unwrap();
        assert!(budgeted.degradation.is_none());
        assert_eq!(budgeted.result.cost.to_bits(), plain.result.cost.to_bits());
        assert_eq!(budgeted.result.tree, plain.result.tree);
        assert_eq!(budgeted.result.counters, plain.result.counters);
    }
}
