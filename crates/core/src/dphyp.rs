//! DPhyp: dynamic programming over query **hypergraphs**.
//!
//! The paper's concluding machinery — `EnumerateCsg` / `EnumerateCmp` —
//! generalizes from graphs to hypergraphs, which is how complex join
//! predicates (`R1.a + R2.b = R3.c`) and non-inner-join reordering
//! constraints are handled in modern optimizers. This module implements
//! that generalization (Moerkotte & Neumann's 2008 follow-up, "Dynamic
//! Programming Strikes Back"), built on
//! [`joinopt_qgraph::hypergraph::Hypergraph`]:
//!
//! * neighborhoods shrink complex edge sides to their minimum-index
//!   *representative*, keeping the subset enumeration polynomial in the
//!   neighborhood size;
//! * since a grown set may be non-connected (a representative stands
//!   for a side that is not yet complete), emissions are filtered by
//!   **DP-table membership** — the table contains exactly the buildable
//!   sets, so no explicit connectivity test is needed;
//! * on a hypergraph with only simple edges DPhyp degenerates to DPccp:
//!   identical plans, identical `InnerCounter` (verified by tests).
//!
//! Unlike the simple-graph algorithms, a reachability-connected
//! hypergraph may still admit **no** cross-product-free bushy tree (see
//! the hypergraph module docs); [`DpHyp::optimize`] reports
//! [`OptimizeError::NoPlanWithoutCrossProducts`] in that case.

use joinopt_cost::{Catalog, CostModel, HyperCardinalityEstimator, PlanStats};
use joinopt_plan::PlanArena;
use joinopt_qgraph::hypergraph::Hypergraph;
use joinopt_qgraph::QueryGraphError;
use joinopt_relset::RelSet;
use joinopt_telemetry::{Event, NoopObserver, Observer};

use crate::counters::Counters;
use crate::driver::Spans;
use crate::error::OptimizeError;
use crate::result::DpResult;
use crate::table::{DpTable, PlanTable, TableEntry};

/// The DPhyp join orderer for hypergraph workloads.
#[derive(Debug, Clone, Copy, Default)]
pub struct DpHyp;

impl DpHyp {
    /// Algorithm name, as used in reports.
    pub fn name(&self) -> &'static str {
        "DPhyp"
    }

    /// Computes an optimal bushy, cross-product-free join tree for the
    /// hypergraph `h`.
    ///
    /// # Errors
    ///
    /// * [`OptimizeError::EmptyQuery`] for zero relations;
    /// * [`OptimizeError::Graph`] for reachability-disconnected inputs;
    /// * [`OptimizeError::Cost`] for catalogs not matching `h`'s shape;
    /// * [`OptimizeError::NoPlanWithoutCrossProducts`] when connectivity
    ///   holds but no valid plan exists.
    pub fn optimize(
        &self,
        h: &Hypergraph,
        catalog: &Catalog,
        model: &dyn CostModel,
    ) -> Result<DpResult, OptimizeError> {
        self.optimize_observed(h, catalog, model, &NoopObserver)
    }

    /// [`DpHyp::optimize`] with telemetry, mirroring the driver-based
    /// algorithms' event sequence (phase spans, per-size DP levels,
    /// table/arena statistics).
    pub fn optimize_observed(
        &self,
        h: &Hypergraph,
        catalog: &Catalog,
        model: &dyn CostModel,
        obs: &dyn Observer,
    ) -> Result<DpResult, OptimizeError> {
        let spans = Spans::start(obs, self.name(), h.num_relations());
        spans.begin("init");
        let n = h.num_relations();
        if n == 0 {
            return Err(OptimizeError::EmptyQuery);
        }
        if !h.is_connected() {
            return Err(OptimizeError::Graph(QueryGraphError::Disconnected));
        }
        let est = HyperCardinalityEstimator::new(h, catalog)?;
        let observe = obs.enabled();
        let mut state = HypState {
            h,
            est,
            model,
            arena: PlanArena::with_capacity(4 * n),
            table: DpTable::with_capacity(4 * n),
            counters: Counters::new(),
            observe,
            probes: 0,
            hits: 0,
            level_new: Vec::new(),
        };
        for i in 0..n {
            let card = state.est.base_cardinality(i);
            let id = state.arena.add_scan(i, card);
            state.table.insert(
                RelSet::single(i),
                TableEntry {
                    plan: id,
                    stats: PlanStats {
                        cardinality: card,
                        cost: 0.0,
                    },
                },
            );
        }
        if observe {
            state.level_new = vec![0u64; n + 1];
            state.level_new[1] = n as u64;
        }
        spans.end("init");

        // Solve: primary connected subsets by descending start vertex.
        spans.begin("enumerate");
        for i in (0..n).rev() {
            let v = RelSet::single(i);
            state.emit_csg(v);
            state.enumerate_csg_rec(v, RelSet::prefix_through(i));
        }
        spans.end("enumerate");

        state.counters.csg_cmp_pairs = 2 * state.counters.ono_lohman;
        let full = h.all_relations();
        let Some(entry) = state.table.get(full) else {
            return Err(OptimizeError::NoPlanWithoutCrossProducts);
        };
        spans.begin("extract");
        let tree = state.arena.extract(entry.plan);
        spans.end("extract");
        if observe {
            for (size, &new_entries) in state.level_new.iter().enumerate() {
                if new_entries > 0 {
                    obs.on_event(Event::DpLevel { size, new_entries });
                }
            }
        }
        spans.table_stats(
            state.table.len(),
            state.table.capacity(),
            state.probes,
            state.hits,
        );
        spans.arena_stats(&state.arena);
        spans.finish(&state.counters);
        Ok(DpResult {
            cost: entry.stats.cost,
            cardinality: entry.stats.cardinality,
            tree,
            counters: state.counters,
            table_size: state.table.len(),
            plans_built: state.arena.len(),
        })
    }
}

struct HypState<'a> {
    h: &'a Hypergraph,
    est: HyperCardinalityEstimator,
    model: &'a dyn CostModel,
    arena: PlanArena,
    table: DpTable,
    counters: Counters,
    observe: bool,
    probes: u64,
    hits: u64,
    level_new: Vec<u64>,
}

impl HypState<'_> {
    /// `EnumerateCsgRec`: grow the primary set through representative
    /// neighborhoods; emit (as a primary) every grown set that is
    /// buildable (present in the table).
    fn enumerate_csg_rec(&mut self, s1: RelSet, x: RelSet) {
        let nb = self.h.neighborhood(s1, x);
        if nb.is_empty() {
            return;
        }
        for sp in nb.non_empty_subsets() {
            let s = s1 | sp;
            if self.table.contains(s) {
                self.emit_csg(s);
            }
        }
        for sp in nb.non_empty_subsets() {
            self.enumerate_csg_rec(s1 | sp, x | nb);
        }
    }

    /// `EmitCsg`: for a buildable primary `s1`, enumerate the complement
    /// components.
    fn emit_csg(&mut self, s1: RelSet) {
        let Some(min) = s1.min_index() else {
            return; // unreachable: primary sets are non-empty
        };
        let x = s1 | RelSet::prefix_through(min);
        let nb = self.h.neighborhood(s1, x);
        for i in nb.iter_descending() {
            let s2 = RelSet::single(i);
            if self.h.connects(s1, s2) {
                self.emit_csg_cmp(s1, s2);
            }
            // Exclude only the already-tried representatives (B_i(N)) —
            // the corrected EnumerateCmp exclusion (see qgraph::csg).
            self.enumerate_cmp_rec(s1, s2, x | (nb & RelSet::prefix_through(i)));
        }
    }

    /// `EnumerateCmpRec`: grow the complement; emit every grown set that
    /// is buildable and actually joinable with `s1`.
    fn enumerate_cmp_rec(&mut self, s1: RelSet, s2: RelSet, x: RelSet) {
        let nb = self.h.neighborhood(s2, x);
        if nb.is_empty() {
            return;
        }
        for sp in nb.non_empty_subsets() {
            let s = s2 | sp;
            if self.table.contains(s) && self.h.connects(s1, s) {
                self.emit_csg_cmp(s1, s);
            }
        }
        for sp in nb.non_empty_subsets() {
            self.enumerate_cmp_rec(s1, s2 | sp, x | nb);
        }
    }

    /// `EmitCsgCmp`: the DP step — cost both operand orders, update
    /// `BestPlan(s1 ∪ s2)`.
    fn emit_csg_cmp(&mut self, s1: RelSet, s2: RelSet) {
        self.counters.inner += 1;
        self.counters.ono_lohman += 1;
        let (Some(&e1), Some(&e2)) = (self.table.get(s1), self.table.get(s2)) else {
            return; // unreachable: emitted operands are buildable
        };
        let union = s1 | s2;
        let (out_card, incumbent) = match self.table.get(union) {
            Some(existing) => (existing.stats.cardinality, Some(existing.stats.cost)),
            None => (
                self.est
                    .join_cardinality(e1.stats.cardinality, e2.stats.cardinality, s1, s2),
                None,
            ),
        };
        if self.observe {
            self.probes += 1;
            if incumbent.is_some() {
                self.hits += 1;
            } else {
                self.level_new[union.len()] += 1;
            }
        }
        let c12 = self.model.join_cost(&e1.stats, &e2.stats, out_card);
        let (cost, left, right) = if self.model.is_symmetric() {
            (c12, &e1, &e2)
        } else {
            let c21 = self.model.join_cost(&e2.stats, &e1.stats, out_card);
            if c21 < c12 {
                (c21, &e2, &e1)
            } else {
                (c12, &e1, &e2)
            }
        };
        if incumbent.is_none_or(|best| cost < best) {
            let stats = PlanStats {
                cardinality: out_card,
                cost,
            };
            let plan = self.arena.add_join(left.plan, right.plan, stats);
            self.table.insert(union, TableEntry { plan, stats });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DpCcp, JoinOrderer};
    use joinopt_cost::{workload, Cout, HashJoin};
    use joinopt_qgraph::GraphKind;

    fn set(ix: impl IntoIterator<Item = usize>) -> RelSet {
        RelSet::from_indices(ix)
    }

    #[test]
    fn degenerates_to_dpccp_on_simple_graphs() {
        for kind in GraphKind::ALL {
            for n in 2..=9 {
                let w = workload::family_workload(kind, n, 11);
                let h = Hypergraph::from_query_graph(&w.graph);
                let hyp = DpHyp.optimize(&h, &w.catalog, &Cout).unwrap();
                let ccp = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
                let tol = 1e-9 * ccp.cost.abs().max(1.0);
                assert!((hyp.cost - ccp.cost).abs() <= tol, "{kind} n={n}");
                assert_eq!(
                    hyp.counters.inner, ccp.counters.inner,
                    "{kind} n={n}: DPhyp must enumerate exactly the csg-cmp-pairs"
                );
                assert_eq!(hyp.table_size, ccp.table_size, "{kind} n={n}");
            }
        }
    }

    #[test]
    fn handles_a_complex_predicate() {
        // R0 — R1 (simple), plus ({R0,R1}, {R2}): R2 can only join after
        // R0 ⋈ R1.
        let mut h = Hypergraph::new(3).unwrap();
        h.add_edge(set([0]), set([1])).unwrap();
        h.add_edge(set([0, 1]), set([2])).unwrap();
        let mut cat = Catalog::with_shape(3, 2);
        cat.set_cardinality(0, 1000.0).unwrap();
        cat.set_cardinality(1, 100.0).unwrap();
        cat.set_cardinality(2, 10.0).unwrap();
        cat.set_selectivity(0, 0.01).unwrap();
        cat.set_selectivity(1, 0.5).unwrap();
        let r = DpHyp.optimize(&h, &cat, &Cout).unwrap();
        // Only one shape is possible: (R0 ⋈ R1) ⋈ R2.
        assert_eq!(r.tree.to_string(), "((R0 ⋈ R1) ⋈ R2)");
        // card = 1000·100·0.01 = 1000; full = 1000·10·0.5 = 5000.
        assert_eq!(r.cardinality, 5000.0);
        assert_eq!(r.cost, 1000.0 + 5000.0);
        assert_eq!(r.counters.inner, 2); // ({R0},{R1}) and ({R0,R1},{R2})
    }

    #[test]
    fn unbuildable_hypergraph_reports_no_plan() {
        // Single edge ({R0}, {R1,R2}): reachability-connected, but
        // {R1,R2} is not buildable → no cross-product-free tree.
        let mut h = Hypergraph::new(3).unwrap();
        h.add_edge(set([0]), set([1, 2])).unwrap();
        let cat = Catalog::with_shape(3, 1);
        assert!(matches!(
            DpHyp.optimize(&h, &cat, &Cout),
            Err(OptimizeError::NoPlanWithoutCrossProducts)
        ));
    }

    #[test]
    fn rejects_empty_and_disconnected() {
        let h = Hypergraph::new(0).unwrap();
        assert!(matches!(
            DpHyp.optimize(&h, &Catalog::with_shape(0, 0), &Cout),
            Err(OptimizeError::EmptyQuery)
        ));
        let mut h = Hypergraph::new(3).unwrap();
        h.add_edge(set([0]), set([1])).unwrap();
        assert!(matches!(
            DpHyp.optimize(&h, &Catalog::with_shape(3, 1), &Cout),
            Err(OptimizeError::Graph(QueryGraphError::Disconnected))
        ));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut h = Hypergraph::new(2).unwrap();
        h.add_edge(set([0]), set([1])).unwrap();
        let cat = Catalog::with_shape(2, 5);
        assert!(matches!(
            DpHyp.optimize(&h, &cat, &Cout),
            Err(OptimizeError::Cost(_))
        ));
    }

    #[test]
    fn complex_predicates_with_asymmetric_model() {
        let mut h = Hypergraph::new(4).unwrap();
        h.add_edge(set([0]), set([1])).unwrap();
        h.add_edge(set([1]), set([2])).unwrap();
        h.add_edge(set([0, 2]), set([3])).unwrap();
        let mut cat = Catalog::with_shape(4, 3);
        for i in 0..4 {
            cat.set_cardinality(i, 10f64.powi(i as i32 + 1)).unwrap();
        }
        let r = DpHyp.optimize(&h, &cat, &HashJoin).unwrap();
        assert_eq!(r.tree.num_relations(), 4);
        assert!(r.cost.is_finite());
        // R3's join must come after both R0 and R2 are in.
        fn check_r3_join(t: &joinopt_plan::JoinTree) -> bool {
            match t {
                joinopt_plan::JoinTree::Scan { .. } => true,
                joinopt_plan::JoinTree::Join { left, right, .. } => {
                    let l = left.relations();
                    let r = right.relations();
                    let r3_here = (l | r).contains(3) && !l.contains(3) && !r.contains(3);
                    let _ = r3_here;
                    // The side providing R3 must be joined against a side
                    // containing both R0 and R2 (the only predicate for it).
                    if r.contains(3) && r.is_singleton() {
                        assert!(l.contains(0) && l.contains(2), "R3 joined too early: {t}");
                    }
                    if l.contains(3) && l.is_singleton() {
                        assert!(r.contains(0) && r.contains(2), "R3 joined too early: {t}");
                    }
                    check_r3_join(left) && check_r3_join(right)
                }
            }
        }
        check_r3_join(&r.tree);
    }

    #[test]
    fn single_relation_hypergraph() {
        let h = Hypergraph::new(1).unwrap();
        let r = DpHyp
            .optimize(&h, &Catalog::with_shape(1, 0), &Cout)
            .unwrap();
        assert_eq!(r.tree.num_joins(), 0);
        assert_eq!(r.counters.inner, 0);
    }
}
