//! DPsub: subset-driven enumeration (paper, Fig. 2 / Section 2.2).

use joinopt_cost::{Catalog, CostModel};
use joinopt_qgraph::QueryGraph;
use joinopt_relset::RelSet;
use joinopt_telemetry::Observer;

use crate::cancel::CancellationToken;
use crate::driver::Driver;
use crate::error::OptimizeError;
use crate::result::{DpResult, JoinOrderer};
use crate::table::{DenseDpTable, PlanTable};

/// Builds a DPsub driver with the Vance/Maier dense direct-addressed
/// table when `n` permits, else the sparse hash table, and runs `body`.
macro_rules! with_dpsub_driver {
    ($g:expr, $catalog:expr, $model:expr, $require_connected:expr, $name:expr, $obs:expr,
     $ctl:expr, $body:expr) => {{
        if $g.num_relations() <= DenseDpTable::MAX_RELATIONS {
            let table = DenseDpTable::new($g.num_relations());
            let d = Driver::with_table(
                $g,
                $catalog,
                $model,
                $require_connected,
                table,
                $name,
                $obs,
                $ctl,
            )?;
            $body(d)
        } else {
            let d = Driver::new($g, $catalog, $model, $require_connected, $name, $obs, $ctl)?;
            $body(d)
        }
    }};
}

/// DPsub as in Fig. 2, including the `*` connectedness pre-check on the
/// outer subset: the integer loop `i = 1 … 2ⁿ−1` enumerates every subset
/// (bit vector) of the relations in an order valid for dynamic
/// programming, and the Vance/Maier snippet enumerates the inner
/// subsets `S₁`.
///
/// Two implementation notes, both verified by the counter tests:
///
/// * Fig. 2 prints the outer loop bound as `i < 2ⁿ − 1`, which would
///   skip the full relation set and never build the final plan; the
///   intended bound is `i ≤ 2ⁿ − 1`.
/// * "connected S₁" is tested via table membership: the table contains
///   exactly the connected sets already enumerated (every connected set
///   has a valid decomposition), so the lookup is O(1) and equivalent to
///   a graph test. The `InnerCounter` semantics are unchanged — it is
///   incremented before any test, exactly as in the pseudocode.
#[derive(Debug, Clone, Copy, Default)]
pub struct DpSub;

impl JoinOrderer for DpSub {
    fn name(&self) -> &'static str {
        "DPsub"
    }

    fn optimize_controlled(
        &self,
        g: &QueryGraph,
        catalog: &Catalog,
        model: &dyn CostModel,
        obs: &dyn Observer,
        ctl: &CancellationToken,
    ) -> Result<DpResult, OptimizeError> {
        with_dpsub_driver!(g, catalog, model, true, self.name(), obs, ctl, run_dpsub)
    }
}

fn run_dpsub<T: PlanTable>(mut d: Driver<'_, T>) -> Result<DpResult, OptimizeError> {
    {
        let full = d.g.all_relations();

        for bits in 1..=full.bits() {
            let s = RelSet::from_bits(bits);
            if s.is_singleton() {
                continue; // already initialized; no proper subsets anyway
            }
            // The `*` check of Fig. 2.
            if !d.g.is_connected_set(s) {
                continue;
            }
            for s1 in s.non_empty_proper_subsets() {
                d.counters.inner += 1;
                let s2 = s - s1;
                // "connected S1/S2" via table membership (see above); the
                // fetched entries are reused for the join, so a successful
                // iteration pays no further lookups on its operands.
                let Some(e1) = d.probe(s1) else {
                    continue; // S1 not connected
                };
                let Some(e2) = d.probe(s2) else {
                    continue; // S2 not connected
                };
                if !d.g.sets_connected(s1, s2) {
                    continue;
                }
                d.counters.csg_cmp_pairs += 1;
                // Both orientations of each pair are enumerated by the
                // subset loop itself (S1 and its complement), so each
                // iteration costs a single orientation, as in Fig. 2.
                d.emit_entries_one_order(e1, e2, s1, s2)?;
            }
        }
        d.counters.ono_lohman = d.counters.csg_cmp_pairs / 2;
        d.finish()
    }
}

/// DPsub **without** the `*` connectedness pre-check: the inner subset
/// loop runs even for disconnected outer sets (every test then fails).
/// Ablation variant; on cliques it is identical to [`DpSub`], on chains
/// dramatically worse.
#[derive(Debug, Clone, Copy, Default)]
pub struct DpSubUnfiltered;

impl JoinOrderer for DpSubUnfiltered {
    fn name(&self) -> &'static str {
        "DPsub-nofilter"
    }

    fn optimize_controlled(
        &self,
        g: &QueryGraph,
        catalog: &Catalog,
        model: &dyn CostModel,
        obs: &dyn Observer,
        ctl: &CancellationToken,
    ) -> Result<DpResult, OptimizeError> {
        with_dpsub_driver!(
            g,
            catalog,
            model,
            true,
            self.name(),
            obs,
            ctl,
            run_dpsub_unfiltered
        )
    }
}

fn run_dpsub_unfiltered<T: PlanTable>(mut d: Driver<'_, T>) -> Result<DpResult, OptimizeError> {
    {
        let full = d.g.all_relations();

        for bits in 1..=full.bits() {
            let s = RelSet::from_bits(bits);
            if s.is_singleton() {
                continue;
            }
            for s1 in s.non_empty_proper_subsets() {
                d.counters.inner += 1;
                let s2 = s - s1;
                let (Some(e1), Some(e2)) = (d.probe(s1), d.probe(s2)) else {
                    continue;
                };
                if !d.g.sets_connected(s1, s2) {
                    continue;
                }
                d.counters.csg_cmp_pairs += 1;
                d.emit_entries_one_order(e1, e2, s1, s2)?;
            }
        }
        d.counters.ono_lohman = d.counters.csg_cmp_pairs / 2;
        d.finish()
    }
}

/// The Vance/Maier original: optimal bushy trees **with** cross
/// products. No connectivity tests at all — every subset of the
/// relations receives a plan, and disconnected splits become cross
/// products (cut selectivity 1). Exists both as the historical baseline
/// DPsub was derived from and to demonstrate how much the search space
/// grows (Section 1 cites this as the motivation for excluding cross
/// products).
#[derive(Debug, Clone, Copy, Default)]
pub struct DpSubCrossProducts;

impl JoinOrderer for DpSubCrossProducts {
    fn name(&self) -> &'static str {
        "DPsub-cp"
    }

    fn optimize_controlled(
        &self,
        g: &QueryGraph,
        catalog: &Catalog,
        model: &dyn CostModel,
        obs: &dyn Observer,
        ctl: &CancellationToken,
    ) -> Result<DpResult, OptimizeError> {
        // Cross products make disconnected graphs optimizable.
        with_dpsub_driver!(
            g,
            catalog,
            model,
            false,
            self.name(),
            obs,
            ctl,
            run_dpsub_cross_products
        )
    }
}

fn run_dpsub_cross_products<T: PlanTable>(mut d: Driver<'_, T>) -> Result<DpResult, OptimizeError> {
    {
        let full = d.g.all_relations();

        for bits in 1..=full.bits() {
            let s = RelSet::from_bits(bits);
            if s.is_singleton() {
                continue;
            }
            for s1 in s.non_empty_proper_subsets() {
                d.counters.inner += 1;
                let s2 = s - s1;
                d.counters.csg_cmp_pairs += 1;
                d.emit_pair_one_order(s1, s2)?;
            }
        }
        d.counters.ono_lohman = d.counters.csg_cmp_pairs / 2;
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinopt_cost::{workload, Cout};
    use joinopt_qgraph::{formulas, generators, GraphKind};

    #[test]
    fn inner_counter_matches_figure3_small() {
        let expect = [
            (GraphKind::Chain, 2, 2),
            (GraphKind::Chain, 5, 84),
            (GraphKind::Cycle, 5, 140),
            (GraphKind::Star, 5, 130),
            (GraphKind::Clique, 5, 180),
        ];
        for (kind, n, want) in expect {
            let w = workload::family_workload(kind, n, 1);
            let r = DpSub.optimize(&w.graph, &w.catalog, &Cout).unwrap();
            assert_eq!(r.counters.inner, want, "{kind} n={n}");
        }
    }

    #[test]
    fn pair_counter_is_graph_property() {
        for kind in GraphKind::ALL {
            for n in 2..=9 {
                let w = workload::family_workload(kind, n, 7);
                let r = DpSub.optimize(&w.graph, &w.catalog, &Cout).unwrap();
                assert_eq!(
                    u128::from(r.counters.csg_cmp_pairs),
                    formulas::ccp_total(kind, n as u64),
                    "{kind} n={n}"
                );
            }
        }
    }

    #[test]
    fn unfiltered_counter_is_graph_independent() {
        // Without the `*` check the inner counter is 3ⁿ − 2ⁿ⁺¹ + 1 for
        // every graph shape.
        for kind in GraphKind::ALL {
            let n = 8u32;
            let w = workload::family_workload(kind, n as usize, 2);
            let r = DpSubUnfiltered
                .optimize(&w.graph, &w.catalog, &Cout)
                .unwrap();
            let want = 3u64.pow(n) - (1 << (n + 1)) + 1;
            assert_eq!(r.counters.inner, want, "{kind}");
        }
    }

    #[test]
    fn unfiltered_equals_filtered_on_cliques() {
        let w = workload::family_workload(GraphKind::Clique, 8, 3);
        let a = DpSub.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        let b = DpSubUnfiltered
            .optimize(&w.graph, &w.catalog, &Cout)
            .unwrap();
        assert_eq!(a.counters.inner, b.counters.inner);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn cross_product_variant_never_worse() {
        // Allowing cross products can only improve (or match) the cost.
        for kind in GraphKind::ALL {
            let w = workload::family_workload(kind, 7, 11);
            let without = DpSub.optimize(&w.graph, &w.catalog, &Cout).unwrap();
            let with = DpSubCrossProducts
                .optimize(&w.graph, &w.catalog, &Cout)
                .unwrap();
            assert!(with.cost <= without.cost + 1e-9, "{kind}");
            // And it explores the full 3ⁿ-ish space:
            let n = 7u32;
            assert_eq!(with.counters.inner, 3u64.pow(n) - (1 << (n + 1)) + 1);
            assert_eq!(with.table_size, (1 << n) - 1);
        }
    }

    #[test]
    fn cross_product_variant_handles_disconnected_graphs() {
        let g = QueryGraph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let cat = Catalog::new(&g);
        assert!(DpSub.optimize(&g, &cat, &Cout).is_err());
        let r = DpSubCrossProducts.optimize(&g, &cat, &Cout).unwrap();
        assert_eq!(r.tree.num_relations(), 4);
    }

    #[test]
    fn agrees_with_dpsize_on_random_workloads() {
        use crate::dpsize::DpSize;
        for seed in 0..10 {
            let w = workload::random_workload(8, 0.35, seed);
            let a = DpSub.optimize(&w.graph, &w.catalog, &Cout).unwrap();
            let b = DpSize.optimize(&w.graph, &w.catalog, &Cout).unwrap();
            assert!(
                (a.cost - b.cost).abs() <= 1e-9 * a.cost.abs().max(1.0),
                "seed {seed}: {} vs {}",
                a.cost,
                b.cost
            );
            assert_eq!(
                a.counters.csg_cmp_pairs, b.counters.csg_cmp_pairs,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn table_covers_exactly_connected_sets() {
        let g = generators::cycle(6).unwrap();
        let w = Catalog::new(&g);
        let r = DpSub.optimize(&g, &w, &Cout).unwrap();
        assert_eq!(
            u128::from(r.table_size as u64),
            formulas::csg_count(GraphKind::Cycle, 6)
        );
    }
}
