//! DPccp: csg-cmp-pair driven enumeration (paper, Fig. 4 / Section 3).

use joinopt_cost::{Catalog, CostModel};
use joinopt_qgraph::{csg, QueryGraph};
use joinopt_telemetry::Observer;

use crate::cancel::CancellationToken;
use crate::driver::Driver;
use crate::error::OptimizeError;
use crate::result::{DpResult, JoinOrderer};

/// The paper's new algorithm: iterate **exactly** over the csg-cmp-pairs
/// of the query graph — the lower bound for any dynamic-programming join
/// enumerator — using `EnumerateCsg` / `EnumerateCmp`
/// ([`joinopt_qgraph::csg`]), and fill the `BestPlan` table.
///
/// Every unordered pair is produced once, so commutativity is handled
/// explicitly by costing both operand orders (Fig. 4 calls
/// `CreateJoinTree` twice). After termination,
/// `InnerCounter = OnoLohmanCounter = #ccp / 2` by construction — there
/// is no wasted innermost-loop work, which is what makes DPccp adapt to
/// every query-graph shape.
#[derive(Debug, Clone, Copy, Default)]
pub struct DpCcp;

impl JoinOrderer for DpCcp {
    fn name(&self) -> &'static str {
        "DPccp"
    }

    fn optimize_controlled(
        &self,
        g: &QueryGraph,
        catalog: &Catalog,
        model: &dyn CostModel,
        obs: &dyn Observer,
        ctl: &CancellationToken,
    ) -> Result<DpResult, OptimizeError> {
        let mut d = Driver::new(g, catalog, model, true, self.name(), obs, ctl)?;
        csg::try_for_each_ccp(g, |s1, s2| {
            d.counters.inner += 1;
            d.counters.ono_lohman += 1;
            d.emit_pair_both_orders(s1, s2).map(|_| ())
        })?;
        d.counters.csg_cmp_pairs = 2 * d.counters.ono_lohman;
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpsize::DpSize;
    use crate::dpsub::DpSub;
    use joinopt_cost::{workload, Cout, HashJoin, MinOverPhysical};
    use joinopt_qgraph::{formulas, GraphKind};

    #[test]
    fn inner_counter_equals_ono_lohman_bound() {
        for kind in GraphKind::ALL {
            for n in 2..=10 {
                let w = workload::family_workload(kind, n, 1);
                let r = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
                assert_eq!(
                    u128::from(r.counters.inner),
                    formulas::ccp_distinct(kind, n as u64),
                    "{kind} n={n}"
                );
                assert_eq!(r.counters.inner, r.counters.ono_lohman);
                assert_eq!(r.counters.csg_cmp_pairs, 2 * r.counters.ono_lohman);
                assert!((r.counters.hit_rate() - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn agrees_with_dpsize_and_dpsub() {
        for kind in GraphKind::ALL {
            for seed in 0..5 {
                let w = workload::family_workload(kind, 8, seed);
                let ccp = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
                let size = DpSize.optimize(&w.graph, &w.catalog, &Cout).unwrap();
                let sub = DpSub.optimize(&w.graph, &w.catalog, &Cout).unwrap();
                let tol = 1e-9 * ccp.cost.abs().max(1.0);
                assert!((ccp.cost - size.cost).abs() <= tol, "{kind} seed {seed}");
                assert!((ccp.cost - sub.cost).abs() <= tol, "{kind} seed {seed}");
                assert_eq!(ccp.counters.csg_cmp_pairs, size.counters.csg_cmp_pairs);
                assert_eq!(ccp.counters.csg_cmp_pairs, sub.counters.csg_cmp_pairs);
            }
        }
    }

    #[test]
    fn asymmetric_cost_model_agreement() {
        // Hash join distinguishes build/probe; all three enumerators
        // must still find the same optimum (they all cost both orders,
        // directly or via enumeration symmetry).
        for seed in 0..8 {
            let w = workload::random_workload(7, 0.4, seed);
            let ccp = DpCcp.optimize(&w.graph, &w.catalog, &HashJoin).unwrap();
            let size = DpSize.optimize(&w.graph, &w.catalog, &HashJoin).unwrap();
            let sub = DpSub.optimize(&w.graph, &w.catalog, &HashJoin).unwrap();
            let tol = 1e-9 * ccp.cost.abs().max(1.0);
            assert!((ccp.cost - size.cost).abs() <= tol, "seed {seed}");
            assert!((ccp.cost - sub.cost).abs() <= tol, "seed {seed}");
        }
    }

    #[test]
    fn min_over_physical_agreement() {
        for seed in 0..5 {
            let w = workload::random_workload(7, 0.3, seed + 100);
            let ccp = DpCcp
                .optimize(&w.graph, &w.catalog, &MinOverPhysical)
                .unwrap();
            let sub = DpSub
                .optimize(&w.graph, &w.catalog, &MinOverPhysical)
                .unwrap();
            let tol = 1e-9 * ccp.cost.abs().max(1.0);
            assert!((ccp.cost - sub.cost).abs() <= tol, "seed {seed}");
        }
    }

    #[test]
    fn produces_bushy_plans_when_beneficial() {
        // On a star the optimum is (almost) always left-deep, but on
        // chains with suitable statistics bushy shapes win. Check that at
        // least one of a batch of random chain workloads yields a
        // properly bushy optimal plan — the shape only bushy enumeration
        // can deliver.
        let mut bushy_seen = false;
        for seed in 0..30 {
            let w = workload::family_workload(GraphKind::Chain, 8, seed);
            let r = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
            bushy_seen |= r.tree.is_properly_bushy();
        }
        assert!(
            bushy_seen,
            "no bushy optimum in 30 chain workloads — suspicious"
        );
    }

    #[test]
    fn rejects_disconnected_and_empty() {
        let g = QueryGraph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let cat = Catalog::new(&g);
        assert!(DpCcp.optimize(&g, &cat, &Cout).is_err());
        let empty = QueryGraph::new(0).unwrap();
        assert!(DpCcp
            .optimize(&empty, &Catalog::new(&empty), &Cout)
            .is_err());
    }

    #[test]
    fn single_relation() {
        let w = workload::family_workload(GraphKind::Chain, 1, 0);
        let r = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        assert_eq!(r.counters.inner, 0);
        assert_eq!(r.tree.num_relations(), 1);
    }

    #[test]
    fn plan_tree_is_consistent() {
        let w = workload::family_workload(GraphKind::Cycle, 9, 4);
        let r = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        assert_eq!(r.tree.relations(), w.graph.all_relations());
        assert_eq!(r.tree.num_joins(), 8);
        assert_eq!(r.tree.cost(), r.cost);
        assert_eq!(r.tree.cardinality(), r.cardinality);
    }
}
