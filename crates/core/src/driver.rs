//! Shared plumbing for the DP algorithms: singleton initialization, the
//! `CreateJoinTree` + `BestPlan` update step, result extraction, and the
//! telemetry instrumentation every driver-based enumerator shares.

use joinopt_cost::{ensure_finite, CardinalityEstimator, Catalog, CostModel, PlanStats};
use joinopt_plan::{PlanArena, PlanId};
use joinopt_qgraph::QueryGraph;
use joinopt_relset::RelSet;
use joinopt_telemetry::{Event, Observer};

use crate::cancel::CancellationToken;
use crate::counters::Counters;
use crate::error::OptimizeError;
use crate::failpoint;
use crate::result::DpResult;
use crate::table::{DpTable, PlanTable, TableEntry};

/// Lightweight span emitter for the algorithms that do not run on the
/// [`Driver`] (heuristics, top-down search, DPhyp): produces the same
/// `run_start` → `init`/`enumerate`/`extract` → statistics → `run_end`
/// skeleton at span granularity. All methods are no-ops when the
/// observer is disabled.
pub(crate) struct Spans<'a> {
    obs: &'a dyn Observer,
    on: bool,
}

impl<'a> Spans<'a> {
    /// Emits `run_start` (when observing) and returns the emitter.
    ///
    /// Call before validation so failed runs still leave a `run_start`
    /// in the trace (with no matching `run_end`).
    pub fn start(obs: &'a dyn Observer, algorithm: &'static str, relations: usize) -> Spans<'a> {
        let on = obs.enabled();
        if on {
            obs.on_event(Event::RunStart {
                algorithm,
                relations,
            });
        }
        Spans { obs, on }
    }

    /// Opens the named phase span.
    pub fn begin(&self, phase: &'static str) {
        if self.on {
            self.obs.on_event(Event::PhaseStart { phase });
        }
    }

    /// Closes the named phase span.
    pub fn end(&self, phase: &'static str) {
        if self.on {
            self.obs.on_event(Event::PhaseEnd { phase });
        }
    }

    /// Emits `table_stats` for algorithms with memo/DP storage.
    pub fn table_stats(&self, entries: usize, capacity: usize, probes: u64, hits: u64) {
        if self.on {
            self.obs.on_event(Event::TableStats {
                entries,
                capacity,
                probes,
                hits,
            });
        }
    }

    /// Emits `arena_stats` for the given arena.
    pub fn arena_stats(&self, arena: &PlanArena) {
        if self.on {
            self.obs.on_event(Event::ArenaStats {
                nodes: arena.len(),
                bytes: arena.bytes(),
            });
        }
    }

    /// Emits `final_counters` and `run_end`.
    pub fn finish(&self, counters: &Counters) {
        if self.on {
            self.obs.on_event(Event::FinalCounters {
                inner: counters.inner,
                csg_cmp_pairs: counters.csg_cmp_pairs,
                ono_lohman: counters.ono_lohman,
            });
            self.obs.on_event(Event::RunEnd);
        }
    }
}

/// Mutable state threaded through one optimizer run, generic over the
/// `BestPlan` storage (sparse hash table by default; DPsub swaps in the
/// dense direct-addressed table for small `n`).
///
/// The driver owns all telemetry emission for the span skeleton
/// (`init` → `enumerate` → `extract`) and the end-of-run statistics
/// events. All instrumentation is guarded by `observe`, cached once from
/// [`Observer::enabled`]: with the no-op observer the whole machinery
/// reduces to one predictable branch per probe and allocates nothing
/// (`level_new` stays an empty `Vec`).
pub(crate) struct Driver<'a, T: PlanTable = DpTable> {
    pub g: &'a QueryGraph,
    pub est: CardinalityEstimator,
    pub model: &'a dyn CostModel,
    pub arena: PlanArena,
    pub table: T,
    pub counters: Counters,
    obs: &'a dyn Observer,
    observe: bool,
    /// Whether per-candidate provenance events are wanted, cached once
    /// from [`Observer::wants_provenance`] like `observe`.
    provenance: bool,
    /// Stop conditions polled by every emit call.
    ctl: &'a CancellationToken,
    /// Pacing state for [`CancellationToken::checkpoint`].
    pace: u32,
    /// Table + arena bytes already charged against the memory budget.
    charged: usize,
    /// `BestPlan` lookups performed (union probes + operand fetches).
    probes: u64,
    /// Probes that found an existing entry.
    hits: u64,
    /// New table entries per relation-set size (index = popcount).
    /// Empty when not observing.
    level_new: Vec<u64>,
}

impl<'a> Driver<'a, DpTable> {
    /// Validates inputs and initializes `BestPlan({R_i}) = R_i` for all
    /// relations, with the default sparse table.
    ///
    /// `require_connected` is lifted only by the cross-product variant.
    pub fn new(
        g: &'a QueryGraph,
        catalog: &Catalog,
        model: &'a dyn CostModel,
        require_connected: bool,
        algorithm: &'static str,
        obs: &'a dyn Observer,
        ctl: &'a CancellationToken,
    ) -> Result<Driver<'a, DpTable>, OptimizeError> {
        let table = DpTable::with_capacity(4 * g.num_relations());
        Driver::with_table(
            g,
            catalog,
            model,
            require_connected,
            table,
            algorithm,
            obs,
            ctl,
        )
    }
}

impl<'a, T: PlanTable> Driver<'a, T> {
    /// [`Driver::new`] with caller-supplied `BestPlan` storage.
    #[allow(clippy::too_many_arguments)]
    pub fn with_table(
        g: &'a QueryGraph,
        catalog: &Catalog,
        model: &'a dyn CostModel,
        require_connected: bool,
        mut table: T,
        algorithm: &'static str,
        obs: &'a dyn Observer,
        ctl: &'a CancellationToken,
    ) -> Result<Driver<'a, T>, OptimizeError> {
        let observe = obs.enabled();
        let n = g.num_relations();
        if observe {
            // Emitted before validation so failed runs still leave a
            // `run_start` in the trace (with no matching `run_end`).
            obs.on_event(Event::RunStart {
                algorithm,
                relations: n,
            });
            obs.on_event(Event::PhaseStart { phase: "init" });
        }
        if n == 0 {
            return Err(OptimizeError::EmptyQuery);
        }
        if require_connected {
            g.require_connected()?;
        }
        ctl.check()?;
        failpoint::check("estimator")?;
        let est = CardinalityEstimator::new(g, catalog)?;
        let mut arena = PlanArena::with_capacity(4 * n);
        for i in 0..n {
            let card = est.base_cardinality(i);
            let id = arena.add_scan(i, card);
            table.insert(
                RelSet::single(i),
                TableEntry {
                    plan: id,
                    stats: PlanStats {
                        cardinality: card,
                        cost: 0.0,
                    },
                },
            );
        }
        let mut level_new = Vec::new();
        if observe {
            level_new = vec![0u64; n + 1];
            level_new[1] = n as u64;
            obs.on_event(Event::PhaseEnd { phase: "init" });
            obs.on_event(Event::PhaseStart { phase: "enumerate" });
        }
        let charged = table.bytes() + arena.bytes();
        ctl.charge(charged)?;
        Ok(Driver {
            g,
            est,
            model,
            arena,
            table,
            counters: Counters::new(),
            obs,
            observe,
            provenance: observe && obs.wants_provenance(),
            ctl,
            pace: 0,
            charged,
            probes: 0,
            hits: 0,
            level_new,
        })
    }

    /// Re-charges the memory budget with any growth of the DP table or
    /// plan arena since the last call.
    #[inline]
    fn charge_memory(&mut self) -> Result<(), OptimizeError> {
        let now = self.table.bytes() + self.arena.bytes();
        if now > self.charged {
            self.ctl.charge(now - self.charged)?;
            self.charged = now;
        }
        Ok(())
    }

    /// `CreateJoinTree` with the arena-allocation failpoint applied.
    #[inline]
    fn add_join(
        &mut self,
        left: PlanId,
        right: PlanId,
        stats: PlanStats,
    ) -> Result<PlanId, OptimizeError> {
        failpoint::check("arena-alloc")?;
        Ok(self.arena.add_join(left, right, stats))
    }

    /// Counted `BestPlan` lookup: like `table.get`, but feeds the
    /// probe/hit statistics when observing. DPsub routes its operand
    /// connectivity-by-membership tests through this.
    #[inline]
    pub fn probe(&mut self, s: RelSet) -> Option<TableEntry> {
        let entry = self.table.get(s).copied();
        if self.observe {
            self.probes += 1;
            self.hits += u64::from(entry.is_some());
        }
        entry
    }

    /// Records a probe of the union set and, when the probe missed (a
    /// set reached for the first time), its size-histogram entry.
    #[inline]
    fn note_union_probe(&mut self, union: RelSet, hit: bool) {
        if self.observe {
            self.probes += 1;
            if hit {
                self.hits += 1;
            } else {
                self.level_new[union.len()] += 1;
            }
        }
    }

    /// Emits one provenance candidate when the observer opted in.
    #[inline]
    fn note_candidate(
        &self,
        union: RelSet,
        left: RelSet,
        right: RelSet,
        cost: f64,
        accepted: bool,
    ) {
        if self.provenance {
            self.obs.on_event(Event::PlanCandidate {
                set: union.bits(),
                left: left.bits(),
                right: right.bits(),
                cost,
                accepted,
            });
        }
    }

    /// Fetches the operand entry for `s`, failing with an internal
    /// error if the enumerator broke the "operands are built first"
    /// invariant instead of panicking into the caller.
    #[inline]
    fn operand(&self, s: RelSet) -> Result<TableEntry, OptimizeError> {
        match self.table.get(s) {
            Some(e) => Ok(*e),
            None => Err(OptimizeError::Internal(format!(
                "BestPlan({s}) missing for an emitted pair"
            ))),
        }
    }

    /// `CreateJoinTree(p1, p2)` + `BestPlan` update for the oriented pair
    /// `(s1, s2)`: computes the candidate's cost and registers it if it
    /// improves the table. Returns `true` iff the union set was new.
    ///
    /// Both operands must already have table entries. Every call polls
    /// the cancellation token (paced) and charges table/arena growth
    /// against the memory budget.
    #[inline]
    pub fn emit_pair_one_order(&mut self, s1: RelSet, s2: RelSet) -> Result<bool, OptimizeError> {
        let e1 = self.operand(s1)?;
        let e2 = self.operand(s2)?;
        self.emit_entries_one_order(e1, e2, s1, s2)
    }

    /// [`Driver::emit_pair_one_order`] with the operands' table entries
    /// already fetched — lets DPsub reuse the lookups its connectedness
    /// tests performed.
    ///
    /// The union's output cardinality is a property of the *set*, not of
    /// the decomposition, so it is computed from the cut selectivities
    /// only the first time the set is reached; later pairs for the same
    /// set reuse the cached value (one table probe instead of an
    /// O(cut-size) product).
    #[inline]
    pub fn emit_entries_one_order(
        &mut self,
        e1: TableEntry,
        e2: TableEntry,
        s1: RelSet,
        s2: RelSet,
    ) -> Result<bool, OptimizeError> {
        self.ctl.checkpoint(&mut self.pace)?;
        let union = s1 | s2;
        match self.table.get(union) {
            Some(existing) => {
                let existing = *existing;
                self.note_union_probe(union, true);
                let out_card = existing.stats.cardinality;
                let cost =
                    ensure_finite("cost", self.model.join_cost(&e1.stats, &e2.stats, out_card))?;
                let accepted = cost < existing.stats.cost;
                self.note_candidate(union, s1, s2, cost, accepted);
                if accepted {
                    let stats = PlanStats {
                        cardinality: out_card,
                        cost,
                    };
                    let plan = self.add_join(e1.plan, e2.plan, stats)?;
                    failpoint::check("table-insert")?;
                    self.table.insert(union, TableEntry { plan, stats });
                    self.charge_memory()?;
                }
                Ok(false)
            }
            None => {
                self.note_union_probe(union, false);
                let out_card = ensure_finite(
                    "cardinality",
                    self.est
                        .join_cardinality(e1.stats.cardinality, e2.stats.cardinality, s1, s2),
                )?;
                let cost =
                    ensure_finite("cost", self.model.join_cost(&e1.stats, &e2.stats, out_card))?;
                self.note_candidate(union, s1, s2, cost, true);
                let stats = PlanStats {
                    cardinality: out_card,
                    cost,
                };
                let plan = self.add_join(e1.plan, e2.plan, stats)?;
                failpoint::check("table-insert")?;
                self.table.insert(union, TableEntry { plan, stats });
                self.charge_memory()?;
                Ok(true)
            }
        }
    }

    /// Like [`Driver::emit_pair_one_order`] but considers both operand
    /// orders (DPccp's explicit commutativity handling; also used by the
    /// optimized DPsize, which enumerates unordered pairs). For symmetric
    /// cost models the second evaluation is skipped.
    #[inline]
    pub fn emit_pair_both_orders(&mut self, s1: RelSet, s2: RelSet) -> Result<bool, OptimizeError> {
        self.ctl.checkpoint(&mut self.pace)?;
        let e1 = self.operand(s1)?;
        let e2 = self.operand(s2)?;
        let union = s1 | s2;
        let (out_card, incumbent) = match self.table.get(union) {
            Some(existing) => (existing.stats.cardinality, Some(existing.stats.cost)),
            None => (
                ensure_finite(
                    "cardinality",
                    self.est
                        .join_cardinality(e1.stats.cardinality, e2.stats.cardinality, s1, s2),
                )?,
                None,
            ),
        };
        self.note_union_probe(union, incumbent.is_some());
        let c12 = ensure_finite("cost", self.model.join_cost(&e1.stats, &e2.stats, out_card))?;
        let (cost, left, right, left_set, right_set) = if self.model.is_symmetric() {
            (c12, &e1, &e2, s1, s2)
        } else {
            let c21 = ensure_finite("cost", self.model.join_cost(&e2.stats, &e1.stats, out_card))?;
            if c21 < c12 {
                (c21, &e2, &e1, s2, s1)
            } else {
                (c12, &e1, &e2, s1, s2)
            }
        };
        let accepted = incumbent.is_none_or(|best| cost < best);
        self.note_candidate(union, left_set, right_set, cost, accepted);
        if accepted {
            let stats = PlanStats {
                cardinality: out_card,
                cost,
            };
            let (left, right) = (left.plan, right.plan);
            let plan = self.add_join(left, right, stats)?;
            failpoint::check("table-insert")?;
            self.table.insert(union, TableEntry { plan, stats });
            self.charge_memory()?;
        }
        Ok(incumbent.is_none())
    }

    /// Extracts the final result for the full relation set.
    ///
    /// When observing, closes the `enumerate` span, wraps extraction in
    /// the `extract` span, then emits the end-of-run statistics events
    /// (`dp_level` per non-empty size, `table_stats`, `arena_stats`,
    /// `final_counters`) and `run_end` — so the caller must finalize its
    /// counter conventions *before* calling this.
    pub fn finish(self) -> Result<DpResult, OptimizeError> {
        if self.observe {
            self.obs.on_event(Event::PhaseEnd { phase: "enumerate" });
            self.obs.on_event(Event::PhaseStart { phase: "extract" });
        }
        let full = self.g.all_relations();
        let Some(entry) = self.table.get(full) else {
            return Err(OptimizeError::Internal(
                "enumeration finished without a plan for the full relation set".into(),
            ));
        };
        let tree = self.arena.extract(entry.plan);
        if self.observe {
            self.obs.on_event(Event::PhaseEnd { phase: "extract" });
            for (size, &new_entries) in self.level_new.iter().enumerate() {
                if new_entries > 0 {
                    self.obs.on_event(Event::DpLevel { size, new_entries });
                }
            }
            self.obs.on_event(Event::TableStats {
                entries: self.table.len(),
                capacity: self.table.capacity(),
                probes: self.probes,
                hits: self.hits,
            });
            self.obs.on_event(Event::ArenaStats {
                nodes: self.arena.len(),
                bytes: self.arena.bytes(),
            });
            self.obs.on_event(Event::FinalCounters {
                inner: self.counters.inner,
                csg_cmp_pairs: self.counters.csg_cmp_pairs,
                ono_lohman: self.counters.ono_lohman,
            });
            self.obs.on_event(Event::RunEnd);
        }
        Ok(DpResult {
            cost: entry.stats.cost,
            cardinality: entry.stats.cardinality,
            tree,
            counters: self.counters,
            table_size: self.table.len(),
            plans_built: self.arena.len(),
        })
    }
}
