//! Shared plumbing for the DP algorithms: singleton initialization, the
//! `CreateJoinTree` + `BestPlan` update step, and result extraction.

use joinopt_cost::{CardinalityEstimator, Catalog, CostModel, PlanStats};
use joinopt_plan::PlanArena;
use joinopt_qgraph::QueryGraph;
use joinopt_relset::RelSet;

use crate::counters::Counters;
use crate::error::OptimizeError;
use crate::result::DpResult;
use crate::table::{DpTable, PlanTable, TableEntry};

/// Mutable state threaded through one optimizer run, generic over the
/// `BestPlan` storage (sparse hash table by default; DPsub swaps in the
/// dense direct-addressed table for small `n`).
pub(crate) struct Driver<'a, T: PlanTable = DpTable> {
    pub g: &'a QueryGraph,
    pub est: CardinalityEstimator,
    pub model: &'a dyn CostModel,
    pub arena: PlanArena,
    pub table: T,
    pub counters: Counters,
}

impl<'a> Driver<'a, DpTable> {
    /// Validates inputs and initializes `BestPlan({R_i}) = R_i` for all
    /// relations, with the default sparse table.
    ///
    /// `require_connected` is lifted only by the cross-product variant.
    pub fn new(
        g: &'a QueryGraph,
        catalog: &Catalog,
        model: &'a dyn CostModel,
        require_connected: bool,
    ) -> Result<Driver<'a, DpTable>, OptimizeError> {
        let table = DpTable::with_capacity(4 * g.num_relations());
        Driver::with_table(g, catalog, model, require_connected, table)
    }
}

impl<'a, T: PlanTable> Driver<'a, T> {
    /// [`Driver::new`] with caller-supplied `BestPlan` storage.
    pub fn with_table(
        g: &'a QueryGraph,
        catalog: &Catalog,
        model: &'a dyn CostModel,
        require_connected: bool,
        mut table: T,
    ) -> Result<Driver<'a, T>, OptimizeError> {
        let n = g.num_relations();
        if n == 0 {
            return Err(OptimizeError::EmptyQuery);
        }
        if require_connected {
            g.require_connected()?;
        }
        let est = CardinalityEstimator::new(g, catalog)?;
        let mut arena = PlanArena::with_capacity(4 * n);
        for i in 0..n {
            let card = est.base_cardinality(i);
            let id = arena.add_scan(i, card);
            table.insert(
                RelSet::single(i),
                TableEntry { plan: id, stats: PlanStats { cardinality: card, cost: 0.0 } },
            );
        }
        Ok(Driver { g, est, model, arena, table, counters: Counters::new() })
    }

    /// `CreateJoinTree(p1, p2)` + `BestPlan` update for the oriented pair
    /// `(s1, s2)`: computes the candidate's cost and registers it if it
    /// improves the table. Returns `true` iff the union set was new.
    ///
    /// Both operands must already have table entries.
    #[inline]
    pub fn emit_pair_one_order(&mut self, s1: RelSet, s2: RelSet) -> bool {
        let e1 = *self.table.get(s1).expect("BestPlan(S1) must exist");
        let e2 = *self.table.get(s2).expect("BestPlan(S2) must exist");
        self.emit_entries_one_order(e1, e2, s1, s2)
    }

    /// [`Driver::emit_pair_one_order`] with the operands' table entries
    /// already fetched — lets DPsub reuse the lookups its connectedness
    /// tests performed.
    ///
    /// The union's output cardinality is a property of the *set*, not of
    /// the decomposition, so it is computed from the cut selectivities
    /// only the first time the set is reached; later pairs for the same
    /// set reuse the cached value (one table probe instead of an
    /// O(cut-size) product).
    #[inline]
    pub fn emit_entries_one_order(
        &mut self,
        e1: TableEntry,
        e2: TableEntry,
        s1: RelSet,
        s2: RelSet,
    ) -> bool {
        let union = s1 | s2;
        match self.table.get(union) {
            Some(existing) => {
                let out_card = existing.stats.cardinality;
                let cost = self.model.join_cost(&e1.stats, &e2.stats, out_card);
                if cost < existing.stats.cost {
                    let stats = PlanStats { cardinality: out_card, cost };
                    let plan = self.arena.add_join(e1.plan, e2.plan, stats);
                    self.table.insert(union, TableEntry { plan, stats });
                }
                false
            }
            None => {
                let out_card = self
                    .est
                    .join_cardinality(e1.stats.cardinality, e2.stats.cardinality, s1, s2);
                let cost = self.model.join_cost(&e1.stats, &e2.stats, out_card);
                let stats = PlanStats { cardinality: out_card, cost };
                let plan = self.arena.add_join(e1.plan, e2.plan, stats);
                self.table.insert(union, TableEntry { plan, stats });
                true
            }
        }
    }

    /// Like [`Driver::emit_pair_one_order`] but considers both operand
    /// orders (DPccp's explicit commutativity handling; also used by the
    /// optimized DPsize, which enumerates unordered pairs). For symmetric
    /// cost models the second evaluation is skipped.
    #[inline]
    pub fn emit_pair_both_orders(&mut self, s1: RelSet, s2: RelSet) -> bool {
        let e1 = *self.table.get(s1).expect("BestPlan(S1) must exist");
        let e2 = *self.table.get(s2).expect("BestPlan(S2) must exist");
        let union = s1 | s2;
        let (out_card, incumbent) = match self.table.get(union) {
            Some(existing) => (existing.stats.cardinality, Some(existing.stats.cost)),
            None => (
                self.est
                    .join_cardinality(e1.stats.cardinality, e2.stats.cardinality, s1, s2),
                None,
            ),
        };
        let c12 = self.model.join_cost(&e1.stats, &e2.stats, out_card);
        let (cost, left, right) = if self.model.is_symmetric() {
            (c12, &e1, &e2)
        } else {
            let c21 = self.model.join_cost(&e2.stats, &e1.stats, out_card);
            if c21 < c12 {
                (c21, &e2, &e1)
            } else {
                (c12, &e1, &e2)
            }
        };
        if incumbent.is_none_or(|best| cost < best) {
            let stats = PlanStats { cardinality: out_card, cost };
            let plan = self.arena.add_join(left.plan, right.plan, stats);
            self.table.insert(union, TableEntry { plan, stats });
        }
        incumbent.is_none()
    }

    /// Extracts the final result for the full relation set.
    pub fn finish(self) -> Result<DpResult, OptimizeError> {
        let full = self.g.all_relations();
        let entry = self
            .table
            .get(full)
            .expect("a connected graph always yields a full plan");
        let tree = self.arena.extract(entry.plan);
        Ok(DpResult {
            cost: entry.stats.cost,
            cardinality: entry.stats.cardinality,
            tree,
            counters: self.counters,
            table_size: self.table.len(),
            plans_built: self.arena.len(),
        })
    }
}
