//! Level-synchronous parallel DPsub and the pooled [`Session`].
//!
//! DPsub's subset loop `i = 1 … 2ⁿ−1` looks inherently sequential, but
//! its *dependency* structure is not: the best plan for a set `S`
//! depends only on sets that are strictly smaller than `S`. Stratifying
//! the enumeration by cardinality therefore yields a sequence of
//! *levels* — all sets of size `k` — whose members are mutually
//! independent and can be evaluated on any number of workers, provided
//! the workers only read plans from levels `< k` and their results are
//! merged before level `k + 1` starts (the same observation DPconv
//! exploits to restructure exact join ordering).
//!
//! The engine here evaluates each level across scoped [`std::thread`]
//! workers over disjoint, contiguous ranges of the size-`k` subsets
//! (enumerated in ascending numeric order by Gosper's hack). Workers
//! never touch the plan arena: each returns, per set it owns, the best
//! decomposition `(cost, S₁)` found by replaying DPsub's inner loop for
//! that set. The main thread merges worker outputs at the level barrier
//! in ascending set order, materializing exactly one arena node per set.
//!
//! # Determinism
//!
//! Results are **bit-identical to sequential DPsub at any thread
//! count**, because every choice the sequential algorithm makes is a
//! pure per-set function:
//!
//! * Each set is owned by exactly one worker, which replays the inner
//!   subset loop in the same ascending Vance/Maier order the sequential
//!   algorithm uses. Ties on cost keep the first candidate (strict `<`),
//!   so the winning decomposition is identical: min over
//!   `(cost, canonical S₁ order)`.
//! * The union's output cardinality is computed from the *first*
//!   successful decomposition (the sequential implementation caches it
//!   from the first table miss), so even floating-point rounding is
//!   reproduced exactly.
//! * The merge materializes plans in ascending set order per level, so
//!   arena ids do not depend on the thread count.
//!
//! The only observable difference from the sequential [`crate::DpSub`]
//! is `plans_built`: the sequential driver materializes an arena node
//! per *improvement*, the engine exactly one per set (the final best).
//! Plan, cost, cardinality, counters and table size are identical.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use joinopt_cost::{ensure_finite, CardinalityEstimator, Catalog, CostModel, PlanStats};
use joinopt_plan::{PlanArena, PlanId};
use joinopt_qgraph::QueryGraph;
use joinopt_relset::RelSet;
use joinopt_telemetry::{current_thread_id, Event, Observer};

use crate::cancel::CancellationToken;
use crate::counters::Counters;
use crate::error::OptimizeError;
use crate::failpoint;
use crate::result::DpResult;
use crate::table::DenseDpTable;

/// Which DPsub variant the engine runs (same semantics and counter
/// conventions as the sequential [`crate::DpSub`],
/// [`crate::DpSubUnfiltered`] and [`crate::DpSubCrossProducts`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DpSubVariant {
    /// Fig. 2 with the `*` connectedness pre-check.
    Filtered,
    /// Fig. 2 without the pre-check (ablation).
    Unfiltered,
    /// Vance/Maier with cross products (no connectivity tests).
    CrossProducts,
}

impl DpSubVariant {
    fn requires_connected(self) -> bool {
        !matches!(self, DpSubVariant::CrossProducts)
    }
}

/// Largest `n` the engine accepts: the level tables are
/// direct-addressed (`Θ(2ⁿ)` slots), exactly like the sequential
/// DPsub's [`DenseDpTable`]. Beyond this DPsub is infeasible anyway;
/// the request layer falls back to the sequential sparse-table path.
pub(crate) const MAX_ENGINE_RELATIONS: usize = DenseDpTable::MAX_RELATIONS;

/// Levels smaller than this run inline on the merge thread — spawning
/// workers for a handful of sets costs more than it saves.
const SPAWN_MIN_SETS: usize = 128;

/// One accepted plan produced by a worker, waiting to be materialized
/// at the level barrier.
#[derive(Debug, Clone, Copy)]
struct NewEntry {
    /// The union set (raw bits).
    set: u64,
    /// Winning left operand (raw bits); the right one is `set − s1`.
    s1: u64,
    /// Cardinality and cost of the winning plan.
    stats: PlanStats,
}

/// Per-worker instrumentation totals, merged at the barrier.
#[derive(Debug, Clone, Copy, Default)]
struct WorkerTotals {
    inner: u64,
    ccp: u64,
    probes: u64,
    hits: u64,
}

/// Every monotonic clock read the engine performs for profiling goes
/// through this counter, so the zero-overhead guard test can assert
/// that an unobserved run reads the clock exactly zero times.
static CLOCK_READS: AtomicU64 = AtomicU64::new(0);

#[inline]
fn clock_now() -> Instant {
    CLOCK_READS.fetch_add(1, Ordering::Relaxed);
    Instant::now()
}

#[inline]
fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(clock_now().duration_since(since).as_nanos()).unwrap_or(u64::MAX)
}

/// Total profiling clock reads the engine has performed in this
/// process. Test instrumentation for the zero-overhead guarantee — not
/// a public API.
#[doc(hidden)]
pub fn engine_clock_reads() -> u64 {
    CLOCK_READS.load(Ordering::Relaxed)
}

/// Every provenance candidate a worker buffers goes through this
/// counter (one bulk add per chunk), so the zero-overhead guard test
/// can assert that a run without a provenance-wanting observer buffers
/// exactly zero candidates.
static PROVENANCE_CANDIDATES: AtomicU64 = AtomicU64::new(0);

/// Total provenance candidates the engine has buffered in this
/// process. Test instrumentation for the zero-overhead guarantee — not
/// a public API.
#[doc(hidden)]
pub fn engine_provenance_candidates() -> u64 {
    PROVENANCE_CANDIDATES.load(Ordering::Relaxed)
}

/// One evaluated candidate split, buffered by a worker when the
/// observer requests provenance and replayed as
/// [`Event::PlanCandidate`] by the merge thread in worker order — so
/// the provenance stream stays single-threaded and deterministic at
/// any thread count.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    set: u64,
    s1: u64,
    s2: u64,
    cost: f64,
    accepted: bool,
}

/// What one worker hands back at the level barrier: its counter totals
/// plus (only when observed) its chunk-profiling sample.
#[derive(Debug, Clone, Copy, Default)]
struct ChunkReport {
    totals: WorkerTotals,
    /// Sets of the level this worker owned.
    sets: usize,
    /// Wall time spent in the chunk (0 when unobserved).
    service_ns: u64,
    /// The worker's [`current_thread_id`] (0 when unobserved).
    thread_id: u64,
}

/// A reusable optimization session: pools the engine's DP-table and
/// plan-arena allocations across repeated
/// [`OptimizeRequest`](crate::OptimizeRequest) calls, amortizing the
/// `Θ(2ⁿ)` table initialization and arena growth over a workload
/// instead of paying them per query.
///
/// Reuse is observable through the existing telemetry events: on a
/// fresh session the first run's `arena_stats.bytes` reflects the
/// growth reallocations, while subsequent runs of same-sized queries
/// report an arena that never grew ([`Session::pooled_bytes`] exposes
/// the same number programmatically).
///
/// ```
/// use joinopt_core::{OptimizeRequest, Session};
/// use joinopt_cost::workload;
/// use joinopt_qgraph::GraphKind;
///
/// let mut session = Session::new();
/// for seed in 0..4 {
///     let w = workload::family_workload(GraphKind::Clique, 8, seed);
///     let outcome = OptimizeRequest::new(&w.graph, &w.catalog)
///         .run_in(&mut session)
///         .unwrap();
///     assert_eq!(outcome.result.tree.num_relations(), 8);
/// }
/// assert_eq!(session.runs(), 4);
/// ```
#[derive(Debug, Default)]
pub struct Session {
    /// Best (cardinality, cost) per set, direct-addressed by bits.
    stats: Vec<PlanStats>,
    /// Presence bitmap over `stats`/`plans`.
    present: Vec<u64>,
    /// Arena id of the best plan per set, direct-addressed by bits.
    plans: Vec<PlanId>,
    /// Pooled plan arena, cleared (not shrunk) between runs.
    arena: PlanArena,
    /// Scratch: the current level's subsets, ascending.
    level_sets: Vec<u64>,
    /// Scratch: per-worker output buffers.
    outputs: Vec<Vec<NewEntry>>,
    /// Pooled dense state for DPconv runs (connectivity bitmap,
    /// cardinality/cost tables, witness array, rank lists).
    dpconv: crate::dpconv::DpConvScratch,
    /// Number of optimization runs served.
    runs: u64,
}

impl Session {
    /// Creates an empty session; buffers grow on first use.
    pub fn new() -> Session {
        Session::default()
    }

    /// Number of optimization runs this session has served.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Bytes currently held by the pooled buffers (tables, bitmap,
    /// arena) — the allocation a fresh run gets for free.
    pub fn pooled_bytes(&self) -> usize {
        self.stats.capacity() * std::mem::size_of::<PlanStats>()
            + self.present.capacity() * std::mem::size_of::<u64>()
            + self.plans.capacity() * std::mem::size_of::<PlanId>()
            + self.arena.bytes()
            + self.dpconv.bytes()
    }

    /// The pooled DPconv scratch, counting the hand-out as a served run.
    pub(crate) fn dpconv_scratch(&mut self) -> &mut crate::dpconv::DpConvScratch {
        self.runs += 1;
        &mut self.dpconv
    }

    /// Readies the pooled buffers for a run over `n` relations: grows
    /// the direct-addressed tables if needed, clears presence and the
    /// arena, and never shrinks.
    fn prepare(&mut self, n: usize) {
        let size = 1usize << n;
        if self.stats.len() < size {
            self.stats.resize(size, PlanStats::base(0.0));
            self.plans.resize(size, PlanId::SENTINEL);
        }
        let words = size.div_ceil(64);
        if self.present.len() < words {
            self.present.resize(words, 0);
        }
        self.present[..words].fill(0);
        self.arena.clear();
        self.runs += 1;
    }
}

#[inline]
fn is_present(present: &[u64], bits: u64) -> bool {
    let idx = bits as usize;
    (present[idx >> 6] >> (idx & 63)) & 1 == 1
}

#[inline]
fn mark_present(present: &mut [u64], bits: u64) {
    let idx = bits as usize;
    present[idx >> 6] |= 1u64 << (idx & 63);
}

/// Shared read-only state a level's workers operate on.
struct LevelShared<'a> {
    g: &'a QueryGraph,
    est: &'a CardinalityEstimator,
    model: &'a dyn CostModel,
    stats: &'a [PlanStats],
    present: &'a [u64],
    variant: DpSubVariant,
    observe: bool,
}

/// Replays DPsub's inner loop for every set in `sets`, appending the
/// accepted plans to `out` in input (ascending) order.
///
/// This is the exact per-set computation of the sequential algorithms,
/// including counter and probe conventions — see the module docs for
/// why the result is bit-identical. Every worker polls `ctl` inside
/// its inner subset loop (paced), so a tripped budget or a flipped
/// cancel flag stops the level mid-chunk instead of at the next
/// barrier.
fn process_chunk(
    sh: &LevelShared<'_>,
    sets: &[u64],
    out: &mut Vec<NewEntry>,
    mut cands: Option<&mut Vec<Candidate>>,
    ctl: &CancellationToken,
) -> Result<ChunkReport, OptimizeError> {
    let chunk_start = sh.observe.then(clock_now);
    let mut t = WorkerTotals::default();
    let mut pace = 0u32;
    for &bits in sets {
        let s = RelSet::from_bits(bits);
        // The `*` check of Fig. 2 (outer connectedness pre-check).
        if sh.variant == DpSubVariant::Filtered && !sh.g.is_connected_set(s) {
            continue;
        }
        let mut best: Option<(f64, u64)> = None;
        let mut card = 0.0f64;
        for s1 in s.non_empty_proper_subsets() {
            t.inner += 1;
            ctl.checkpoint(&mut pace)?;
            let s2 = s - s1;
            match sh.variant {
                DpSubVariant::Filtered => {
                    // "connected S1/S2" via table membership, with the
                    // sequential short-circuit probe accounting.
                    let p1 = is_present(sh.present, s1.bits());
                    if sh.observe {
                        t.probes += 1;
                        t.hits += u64::from(p1);
                    }
                    if !p1 {
                        continue;
                    }
                    let p2 = is_present(sh.present, s2.bits());
                    if sh.observe {
                        t.probes += 1;
                        t.hits += u64::from(p2);
                    }
                    if !p2 {
                        continue;
                    }
                    if !sh.g.sets_connected(s1, s2) {
                        continue;
                    }
                }
                DpSubVariant::Unfiltered => {
                    // The ablation probes both operands unconditionally.
                    let p1 = is_present(sh.present, s1.bits());
                    let p2 = is_present(sh.present, s2.bits());
                    if sh.observe {
                        t.probes += 2;
                        t.hits += u64::from(p1) + u64::from(p2);
                    }
                    if !(p1 && p2) {
                        continue;
                    }
                    if !sh.g.sets_connected(s1, s2) {
                        continue;
                    }
                }
                DpSubVariant::CrossProducts => {
                    // Every split is valid; all smaller sets have plans.
                }
            }
            t.ccp += 1;
            // Union probe: a hit once a previous pair registered the set.
            if sh.observe {
                t.probes += 1;
                t.hits += u64::from(best.is_some());
            }
            let st1 = sh.stats[s1.bits() as usize];
            let st2 = sh.stats[s2.bits() as usize];
            if best.is_none() {
                // The set's output cardinality, computed (like the
                // sequential table's first miss) from the first
                // successful decomposition and reused afterwards.
                card = ensure_finite(
                    "cardinality",
                    sh.est
                        .join_cardinality(st1.cardinality, st2.cardinality, s1, s2),
                )?;
            }
            let cost = ensure_finite("cost", sh.model.join_cost(&st1, &st2, card))?;
            let accepted = match &mut best {
                None => {
                    best = Some((cost, s1.bits()));
                    true
                }
                Some((bc, bs)) => {
                    // Strict improvement only: ties keep the first
                    // (canonically smallest) S1, as in the sequential run.
                    // The behavioral failpoint inverts the tie policy
                    // (keep-last) so the conformance harness can prove
                    // its engine-vs-sequential check catches the drift.
                    if cost < *bc || (cost == *bc && failpoint::flag("engine-tiebreak-invert")) {
                        *bc = cost;
                        *bs = s1.bits();
                        true
                    } else {
                        false
                    }
                }
            };
            if let Some(buf) = cands.as_deref_mut() {
                buf.push(Candidate {
                    set: bits,
                    s1: s1.bits(),
                    s2: s2.bits(),
                    cost,
                    accepted,
                });
            }
        }
        if let Some((cost, s1)) = best {
            out.push(NewEntry {
                set: bits,
                s1,
                stats: PlanStats {
                    cardinality: card,
                    cost,
                },
            });
        }
    }
    if let Some(buf) = &cands {
        // Buffers are cleared at the level barrier, so the length is
        // exactly this chunk's contribution.
        PROVENANCE_CANDIDATES.fetch_add(buf.len() as u64, Ordering::Relaxed);
    }
    Ok(match chunk_start {
        Some(start) => ChunkReport {
            totals: t,
            sets: sets.len(),
            service_ns: elapsed_ns(start),
            thread_id: current_thread_id(),
        },
        None => ChunkReport {
            totals: t,
            ..ChunkReport::default()
        },
    })
}

/// Appends all size-`k` subsets of an `n`-relation universe to `out`,
/// ascending (Gosper's hack).
fn push_level_sets(n: usize, k: usize, out: &mut Vec<u64>) {
    debug_assert!((1..=n).contains(&k) && n < 64);
    let limit = 1u64 << n;
    let mut v = (1u64 << k) - 1;
    while v < limit {
        out.push(v);
        if k == n {
            break; // the full set is the only member of its level
        }
        let c = v & v.wrapping_neg();
        let r = v + c;
        v = (((r ^ v) >> 2) / c) | r;
    }
}

/// Runs level-synchronous DPsub over `threads` workers using the
/// pooled buffers of `session`.
///
/// `ctl` is consulted at every level barrier (full check) and inside
/// every worker's inner loop (paced checkpoint); the pooled buffers and
/// all arena growth are charged against its memory budget. All workers
/// of a level are joined before an error returns, and a panicking
/// worker surfaces as [`OptimizeError::Internal`] instead of unwinding
/// into the caller.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_level_synchronous(
    g: &QueryGraph,
    catalog: &Catalog,
    model: &dyn CostModel,
    variant: DpSubVariant,
    threads: usize,
    session: &mut Session,
    algorithm: &'static str,
    obs: &dyn Observer,
    ctl: &CancellationToken,
) -> Result<DpResult, OptimizeError> {
    let observe = obs.enabled();
    let provenance = observe && obs.wants_provenance();
    let n = g.num_relations();
    debug_assert!(n <= MAX_ENGINE_RELATIONS, "engine capped at dense-table n");
    if observe {
        // As in the sequential driver: emitted before validation so
        // failed runs still leave a `run_start` in the trace.
        obs.on_event(Event::RunStart {
            algorithm,
            relations: n,
        });
        obs.on_event(Event::PhaseStart { phase: "init" });
    }
    if n == 0 {
        return Err(OptimizeError::EmptyQuery);
    }
    if variant.requires_connected() {
        g.require_connected()?;
    }
    ctl.check()?;
    failpoint::check("estimator")?;
    let est = CardinalityEstimator::new(g, catalog)?;
    session.prepare(n);
    ctl.charge(session.pooled_bytes())?;
    let mut charged = session.pooled_bytes();

    // Level 1: singleton plans.
    for i in 0..n {
        let card = est.base_cardinality(i);
        let id = session.arena.add_scan(i, card);
        let bits = 1u64 << i;
        session.stats[bits as usize] = PlanStats::base(card);
        session.plans[bits as usize] = id;
        mark_present(&mut session.present, bits);
    }
    let mut table_entries = n;
    let mut level_new: Vec<u64> = Vec::new();
    if observe {
        level_new = vec![0u64; n + 1];
        level_new[1] = n as u64;
        obs.on_event(Event::PhaseEnd { phase: "init" });
        obs.on_event(Event::PhaseStart { phase: "enumerate" });
    }

    let workers = threads.max(1);
    if session.outputs.len() < workers {
        session.outputs.resize_with(workers, Vec::new);
    }
    let mut totals = WorkerTotals::default();
    // This level's chunk reports, in worker order (reused across
    // levels; capacity is bounded by the worker count).
    let mut level_reports: Vec<ChunkReport> = Vec::with_capacity(workers);
    // Per-worker provenance buffers, allocated only when the observer
    // asks for provenance — an unobserved (or merely metrics-observed)
    // run performs no provenance work at all.
    let mut cand_outputs: Vec<Vec<Candidate>> = if provenance {
        (0..workers).map(|_| Vec::new()).collect()
    } else {
        Vec::new()
    };

    // Levels 2..=n, with a barrier (the merge) between levels.
    // (`level_new[k]` is bumped during the merge — the index is the
    // level itself, not an iteration artifact.)
    #[allow(clippy::needless_range_loop)]
    for k in 2..=n {
        ctl.check()?;
        session.level_sets.clear();
        push_level_sets(n, k, &mut session.level_sets);
        let level_len = session.level_sets.len();
        let spawned = if workers > 1 && level_len >= SPAWN_MIN_SETS {
            workers
        } else {
            1
        };
        {
            let shared = LevelShared {
                g,
                est: &est,
                model,
                stats: &session.stats,
                present: &session.present,
                variant,
                observe,
            };
            let sets = &session.level_sets;
            let outs = &mut session.outputs[..spawned];
            for out in outs.iter_mut() {
                out.clear();
            }
            for cands in cand_outputs.iter_mut() {
                cands.clear();
            }
            level_reports.clear();
            if spawned == 1 {
                level_reports.push(process_chunk(
                    &shared,
                    sets,
                    &mut outs[0],
                    cand_outputs.first_mut(),
                    ctl,
                )?);
            } else {
                // Contiguous ranges keep each worker's output ascending,
                // so concatenation in worker order restores the global
                // ascending set order the merge relies on.
                let shared = &shared;
                let mut cand_slots = cand_outputs.iter_mut();
                let chunk_results = std::thread::scope(|scope| {
                    let mut handles = Vec::with_capacity(spawned);
                    let mut results = Vec::with_capacity(spawned);
                    for (w, out) in outs.iter_mut().enumerate() {
                        let cands = cand_slots.next();
                        let lo = level_len * w / spawned;
                        let hi = level_len * (w + 1) / spawned;
                        let chunk = &sets[lo..hi];
                        match failpoint::check("worker-spawn") {
                            Ok(()) => handles.push(
                                scope.spawn(move || process_chunk(shared, chunk, out, cands, ctl)),
                            ),
                            Err(e) => results.push(Err(e)),
                        }
                    }
                    // Join every handle before surfacing an error: a
                    // scoped thread left unjoined would re-raise its
                    // panic when the scope closes.
                    for h in handles {
                        results.push(match h.join() {
                            Ok(r) => r,
                            Err(_) => {
                                Err(OptimizeError::Internal("a level worker panicked".into()))
                            }
                        });
                    }
                    results
                });
                for r in chunk_results {
                    match r {
                        Ok(cr) => level_reports.push(cr),
                        // Prefer the token's latched trip over whichever
                        // worker error happened to be collected first —
                        // deterministic cause at any thread count.
                        Err(e) => return Err(ctl.trip_error().unwrap_or(e)),
                    }
                }
            }
        }
        for cr in &level_reports {
            totals.merge(cr.totals);
        }
        // Replay the workers' buffered candidates in worker order (so
        // concatenation restores ascending set order): the provenance
        // stream is emitted from this one thread, deterministic at any
        // thread count, and observers need not be `Sync`. Emitted
        // before the merge clock starts so `merge_ns` stays a pure
        // materialization measurement.
        if provenance {
            for cands in cand_outputs.iter().take(spawned) {
                for c in cands {
                    obs.on_event(Event::PlanCandidate {
                        set: c.set,
                        left: c.s1,
                        right: c.s2,
                        cost: c.cost,
                        accepted: c.accepted,
                    });
                }
            }
        }
        // Barrier: materialize this level's winners, ascending. Split
        // borrows: worker outputs are read while the tables and arena
        // mutate.
        let merge_start = observe.then(clock_now);
        {
            let Session {
                stats,
                present,
                plans,
                arena,
                outputs,
                ..
            } = &mut *session;
            for chunk_out in outputs.iter().take(spawned) {
                for e in chunk_out {
                    let s2 = e.set & !e.s1;
                    let plan = arena.add_join(plans[e.s1 as usize], plans[s2 as usize], e.stats);
                    stats[e.set as usize] = e.stats;
                    plans[e.set as usize] = plan;
                    mark_present(present, e.set);
                    table_entries += 1;
                    if observe {
                        level_new[k] += 1;
                    }
                }
            }
        }
        // The per-level profile: one `worker_chunk` per worker (in
        // worker order, so the stream is deterministic) and a
        // `level_sync` rollup. Emitted from the merge thread — workers
        // hand their samples back instead of emitting, so observers
        // need not be `Sync`.
        if let Some(start) = merge_start {
            let merge_ns = elapsed_ns(start);
            let mut max_service_ns = 0u64;
            let mut total_service_ns = 0u64;
            for (w, cr) in level_reports.iter().enumerate() {
                obs.on_event(Event::WorkerChunk {
                    level: k,
                    worker: w,
                    thread_id: cr.thread_id,
                    sets: cr.sets,
                    service_ns: cr.service_ns,
                    inner: cr.totals.inner,
                    pairs: cr.totals.ccp,
                });
                max_service_ns = max_service_ns.max(cr.service_ns);
                total_service_ns += cr.service_ns;
            }
            obs.on_event(Event::LevelSync {
                level: k,
                workers: spawned,
                merge_ns,
                max_service_ns,
                total_service_ns,
                idle_ns: spawned as u64 * max_service_ns - total_service_ns,
            });
        }
        // Charge pooled-buffer growth (arena reallocation, out-buffer
        // capacity) accumulated during this level.
        if session.pooled_bytes() > charged {
            ctl.charge(session.pooled_bytes() - charged)?;
            charged = session.pooled_bytes();
        }
    }

    let mut counters = Counters::new();
    counters.inner = totals.inner;
    counters.csg_cmp_pairs = totals.ccp;
    counters.ono_lohman = totals.ccp / 2;

    if observe {
        obs.on_event(Event::PhaseEnd { phase: "enumerate" });
        obs.on_event(Event::PhaseStart { phase: "extract" });
    }
    let full = g.all_relations();
    debug_assert!(is_present(&session.present, full.bits()));
    let entry_stats = session.stats[full.bits() as usize];
    let tree = session.arena.extract(session.plans[full.bits() as usize]);
    if observe {
        obs.on_event(Event::PhaseEnd { phase: "extract" });
        for (size, &new_entries) in level_new.iter().enumerate() {
            if new_entries > 0 {
                obs.on_event(Event::DpLevel { size, new_entries });
            }
        }
        obs.on_event(Event::TableStats {
            entries: table_entries,
            capacity: 1usize << n,
            probes: totals.probes,
            hits: totals.hits,
        });
        obs.on_event(Event::ArenaStats {
            nodes: session.arena.len(),
            bytes: session.arena.bytes(),
        });
        obs.on_event(Event::FinalCounters {
            inner: counters.inner,
            csg_cmp_pairs: counters.csg_cmp_pairs,
            ono_lohman: counters.ono_lohman,
        });
        obs.on_event(Event::RunEnd);
    }
    Ok(DpResult {
        cost: entry_stats.cost,
        cardinality: entry_stats.cardinality,
        tree,
        counters,
        table_size: table_entries,
        plans_built: session.arena.len(),
    })
}

impl WorkerTotals {
    fn merge(&mut self, other: WorkerTotals) {
        self.inner += other.inner;
        self.ccp += other.ccp;
        self.probes += other.probes;
        self.hits += other.hits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinopt_cost::{workload, Cout};
    use joinopt_qgraph::GraphKind;
    use joinopt_telemetry::NoopObserver;

    fn run(
        kind: GraphKind,
        n: usize,
        seed: u64,
        variant: DpSubVariant,
        threads: usize,
    ) -> DpResult {
        let w = workload::family_workload(kind, n, seed);
        let mut session = Session::new();
        run_level_synchronous(
            &w.graph,
            &w.catalog,
            &Cout,
            variant,
            threads,
            &mut session,
            "DPsub",
            &NoopObserver,
            &CancellationToken::unlimited(),
        )
        .unwrap()
    }

    #[test]
    fn gosper_enumerates_levels_completely_and_ascending() {
        let mut all = Vec::new();
        for k in 1..=6 {
            let mut level = Vec::new();
            push_level_sets(6, k, &mut level);
            assert!(level.windows(2).all(|w| w[0] < w[1]), "k={k} not ascending");
            assert!(
                level.iter().all(|b| b.count_ones() as usize == k),
                "k={k} has wrong popcounts"
            );
            all.extend(level);
        }
        all.sort_unstable();
        assert_eq!(all.len(), (1 << 6) - 1, "all non-empty subsets visited");
    }

    #[test]
    fn matches_sequential_dpsub_exactly() {
        use crate::dpsub::DpSub;
        use crate::result::JoinOrderer as _;
        for kind in GraphKind::ALL {
            let w = workload::family_workload(kind, 9, 3);
            let seq = DpSub.optimize(&w.graph, &w.catalog, &Cout).unwrap();
            for threads in [1, 2, 4] {
                let par = run(kind, 9, 3, DpSubVariant::Filtered, threads);
                assert_eq!(seq.cost.to_bits(), par.cost.to_bits(), "{kind} t={threads}");
                assert_eq!(
                    seq.cardinality.to_bits(),
                    par.cardinality.to_bits(),
                    "{kind} t={threads}"
                );
                assert_eq!(seq.tree, par.tree, "{kind} t={threads}");
                assert_eq!(seq.counters, par.counters, "{kind} t={threads}");
                assert_eq!(seq.table_size, par.table_size, "{kind} t={threads}");
            }
        }
    }

    #[test]
    fn session_reuse_is_deterministic_and_pools_allocations() {
        let w = workload::family_workload(GraphKind::Cycle, 10, 1);
        let mut session = Session::new();
        let first = run_level_synchronous(
            &w.graph,
            &w.catalog,
            &Cout,
            DpSubVariant::Filtered,
            2,
            &mut session,
            "DPsub",
            &NoopObserver,
            &CancellationToken::unlimited(),
        )
        .unwrap();
        let pooled = session.pooled_bytes();
        assert!(pooled > 0);
        for _ in 0..3 {
            let again = run_level_synchronous(
                &w.graph,
                &w.catalog,
                &Cout,
                DpSubVariant::Filtered,
                2,
                &mut session,
                "DPsub",
                &NoopObserver,
                &CancellationToken::unlimited(),
            )
            .unwrap();
            assert_eq!(first.cost.to_bits(), again.cost.to_bits());
            assert_eq!(first.tree, again.tree);
            // No regrowth: the pool already fits the workload.
            assert_eq!(session.pooled_bytes(), pooled);
        }
        assert_eq!(session.runs(), 4);
    }

    #[test]
    fn zero_time_budget_aborts_the_engine() {
        let w = workload::family_workload(GraphKind::Clique, 12, 0);
        let mut session = Session::new();
        let budget = std::time::Duration::ZERO;
        let ctl = CancellationToken::new(None, Some(budget), None);
        let err = run_level_synchronous(
            &w.graph,
            &w.catalog,
            &Cout,
            DpSubVariant::Filtered,
            2,
            &mut session,
            "DPsub",
            &NoopObserver,
            &ctl,
        )
        .unwrap_err();
        assert_eq!(err, OptimizeError::TimeBudgetExceeded { budget });
    }

    #[test]
    fn cancel_flag_stops_workers_inside_a_level() {
        use crate::cancel::CancelFlag;
        let w = workload::family_workload(GraphKind::Clique, 14, 0);
        let mut session = Session::new();
        let flag = CancelFlag::new();
        flag.cancel(); // pre-cancelled: the first checkpoint anywhere trips
        let ctl = CancellationToken::new(Some(flag), None, None);
        let err = run_level_synchronous(
            &w.graph,
            &w.catalog,
            &Cout,
            DpSubVariant::Filtered,
            4,
            &mut session,
            "DPsub",
            &NoopObserver,
            &ctl,
        )
        .unwrap_err();
        assert_eq!(err, OptimizeError::Cancelled);
    }

    #[test]
    fn memory_budget_trips_on_the_pooled_footprint() {
        let w = workload::family_workload(GraphKind::Clique, 12, 0);
        let mut session = Session::new();
        let ctl = CancellationToken::new(None, None, Some(1024));
        let err = run_level_synchronous(
            &w.graph,
            &w.catalog,
            &Cout,
            DpSubVariant::Filtered,
            2,
            &mut session,
            "DPsub",
            &NoopObserver,
            &ctl,
        )
        .unwrap_err();
        assert!(matches!(err, OptimizeError::MemoryBudgetExceeded { .. }));
        assert!(ctl.memory_used() > 1024);
    }
}
