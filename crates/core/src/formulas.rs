//! Closed forms for the algorithms' `InnerCounter` values
//! (paper, Sections 2.1 and 2.2), plus profile-based predictions that
//! work for arbitrary query graphs.
//!
//! # Errata relative to the paper
//!
//! Verified against instrumented runs and Figure 3 (which is
//! self-consistent):
//!
//! * `I_DPsize^chain`, odd case: the printed constant `+11` yields
//!   non-integers (e.g. 3506/48 at n = 5); the correct constant is `+9`
//!   (n = 5 → 73, n = 15 → 5628, matching Figure 3).
//! * `I_DPsub^chain`, Eq. (1): the printed `n^n` is a typo for `n²`.
//!
//! The DPsize formulas describe the *optimized* variant ([`crate::DpSize`]),
//! which enumerates unordered size splits and unordered plan pairs when
//! `s₁ = s₂`.

// The `expect`s below assert integer-exactness invariants of the
// paper's closed forms (verified against Figure 3), not fallible
// runtime conditions: on any argument large enough to break them the
// `1 << n` shifts would already have overflowed. Plumbing `Result`
// through pure arithmetic would only obscure the formulas.
#![allow(clippy::expect_used)]

use joinopt_qgraph::formulas::{binomial, ccp_distinct, pow3};
use joinopt_qgraph::profile::CsgProfile;
use joinopt_qgraph::GraphKind;

/// `I_DPsize(n)`: DPsize's `InnerCounter` after termination.
pub fn dpsize_inner(kind: GraphKind, n: u64) -> u128 {
    match kind {
        GraphKind::Chain => dpsize_chain(n),
        GraphKind::Cycle => {
            if n <= 2 {
                dpsize_chain(n)
            } else {
                dpsize_cycle(n)
            }
        }
        GraphKind::Star => {
            if n <= 2 {
                dpsize_chain(n)
            } else {
                dpsize_star(n)
            }
        }
        GraphKind::Clique => {
            if n <= 2 {
                dpsize_chain(n)
            } else {
                dpsize_clique(n)
            }
        }
    }
}

fn dpsize_chain(n: u64) -> u128 {
    let n = i128::from(n);
    let v = if n % 2 == 0 {
        5 * n.pow(4) + 6 * n.pow(3) - 14 * n.pow(2) - 12 * n
    } else {
        // Paper prints +11; the integer-exact constant is +9.
        5 * n.pow(4) + 6 * n.pow(3) - 14 * n.pow(2) - 6 * n + 9
    };
    u128::try_from(v / 48).expect("non-negative for n ≥ 1")
}

fn dpsize_cycle(n: u64) -> u128 {
    let n = i128::from(n);
    let v = if n % 2 == 0 {
        n.pow(4) - n.pow(3) - n.pow(2)
    } else {
        n.pow(4) - n.pow(3) - n.pow(2) + n
    };
    u128::try_from(v / 4).expect("non-negative for n ≥ 2")
}

fn dpsize_star(n: u64) -> u128 {
    // All terms scaled by 8 to keep the arithmetic integral:
    // I = 2^{2n−4} − C(2(n−1), n−1)/4 [+ C(n−1, (n−1)/2)/4 if odd] + q(n)
    // q(n) = n·2^{n−1} − 5·2^{n−3} + (n² − 5n + 4)/2
    let ni = i128::from(n);
    let mut v8: i128 = 8 * (1i128 << (2 * n - 4));
    v8 -= 2 * i128::try_from(binomial(2 * (n - 1), n - 1)).expect("fits");
    if !n.is_multiple_of(2) {
        v8 += 2 * i128::try_from(binomial(n - 1, (n - 1) / 2)).expect("fits");
    }
    v8 += ni * (1i128 << (n + 2)); // 8 · n·2^{n−1}
    v8 -= 5 * (1i128 << n); // 8 · 5·2^{n−3}
    v8 += 4 * (ni * ni - 5 * ni + 4); // 8 · (n²−5n+4)/2
    u128::try_from(v8 / 8).expect("non-negative for n ≥ 3")
}

fn dpsize_clique(n: u64) -> u128 {
    // Scaled by 4:
    // I = 2^{2n−2} − 5·2^{n−2} + C(2n, n)/4 [− C(n, n/2)/4 if even] + 1
    let mut v4: i128 = 4 * (1i128 << (2 * n - 2));
    v4 -= 5 * (1i128 << n);
    v4 += i128::try_from(binomial(2 * n, n)).expect("fits");
    if n.is_multiple_of(2) {
        v4 -= i128::try_from(binomial(n, n / 2)).expect("fits");
    }
    v4 += 4;
    u128::try_from(v4 / 4).expect("non-negative for n ≥ 2")
}

/// `I_DPsub(n)`: DPsub's `InnerCounter` after termination
/// (Eqs. (1)–(4), with Eq. (1)'s typo corrected).
pub fn dpsub_inner(kind: GraphKind, n: u64) -> u128 {
    let ni = i128::from(n);
    let v: i128 = match kind {
        // 2^{n+2} − n² − 3n − 4   [paper prints n^n]
        GraphKind::Chain => (1i128 << (n + 2)) - ni * ni - 3 * ni - 4,
        // n·2ⁿ + 2ⁿ − 2n² − 2
        GraphKind::Cycle => {
            if n <= 2 {
                return dpsub_inner(GraphKind::Chain, n);
            }
            ni * (1i128 << n) + (1i128 << n) - 2 * ni * ni - 2
        }
        // 2·3^{n−1} − 2ⁿ
        GraphKind::Star => {
            if n == 0 {
                return 0;
            }
            2 * i128::try_from(pow3(n - 1)).expect("fits") - (1i128 << n)
        }
        // 3ⁿ − 2^{n+1} + 1
        GraphKind::Clique => i128::try_from(pow3(n)).expect("fits") - (1i128 << (n + 1)) + 1,
    };
    u128::try_from(v).expect("non-negative for n ≥ 1")
}

/// `I_DPccp(n) = #ccp/2`: DPccp performs exactly one innermost iteration
/// per unordered csg-cmp-pair.
pub fn dpccp_inner(kind: GraphKind, n: u64) -> u128 {
    ccp_distinct(kind, n)
}

/// `I_DPsub` for the variant without the `*` pre-check: graph-independent,
/// `3ⁿ − 2^{n+1} + 1` (the inner loop runs for *every* non-singleton
/// subset). Also the counter of the cross-product variant.
pub fn dpsub_unfiltered_inner(n: u64) -> u128 {
    pow3(n) + 1 - (1u128 << (n + 1))
}

/// DPsize's `InnerCounter` predicted from a csg size profile — works for
/// arbitrary graphs. With `c_k` connected subsets of size `k`:
///
/// ```text
/// I = Σ_{s=2}^{n} [ Σ_{s₁ < s/2} c_{s₁}·c_{s−s₁}  +  (s even) C(c_{s/2}, 2) ]
/// ```
pub fn dpsize_inner_from_profile(p: &CsgProfile) -> u128 {
    let c = p.counts();
    let n = p.num_relations();
    let mut total: u128 = 0;
    for s in 2..=n {
        for s1 in 1..=s / 2 {
            let s2 = s - s1;
            if s1 != s2 {
                total += u128::from(c[s1]) * u128::from(c[s2]);
            } else {
                let k = u128::from(c[s1]);
                total += k * (k - 1) / 2;
            }
        }
    }
    total
}

/// The literal-Fig.-1 DPsize counter from a profile: every ordered pair,
/// `Σ_s Σ_{s₁=1}^{s−1} c_{s₁}·c_{s−s₁}`.
pub fn dpsize_naive_inner_from_profile(p: &CsgProfile) -> u128 {
    let c = p.counts();
    let n = p.num_relations();
    let mut total: u128 = 0;
    for s in 2..=n {
        for s1 in 1..s {
            total += u128::from(c[s1]) * u128::from(c[s - s1]);
        }
    }
    total
}

/// DPsub's `InnerCounter` predicted from a profile:
/// `Σ_k c_k · (2^k − 2)` — each connected set of size `k` pays its full
/// inner subset loop.
pub fn dpsub_inner_from_profile(p: &CsgProfile) -> u128 {
    p.counts()
        .iter()
        .enumerate()
        .map(|(k, &ck)| u128::from(ck) * (1u128 << k).saturating_sub(2))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinopt_qgraph::generators;

    #[test]
    fn figure3_dpsize_column() {
        let expect: &[(GraphKind, &[(u64, u128)])] = &[
            (
                GraphKind::Chain,
                &[(2, 1), (5, 73), (10, 1135), (15, 5628), (20, 17_545)],
            ),
            (
                GraphKind::Cycle,
                &[(2, 1), (5, 120), (10, 2225), (15, 11_760), (20, 37_900)],
            ),
            (
                GraphKind::Star,
                &[
                    (2, 1),
                    (5, 110),
                    (10, 57_888),
                    (15, 57_305_929),
                    (20, 59_892_991_338),
                ],
            ),
            (
                GraphKind::Clique,
                &[
                    (2, 1),
                    (5, 280),
                    (10, 306_991),
                    (15, 307_173_877),
                    (20, 309_338_182_241),
                ],
            ),
        ];
        for &(kind, rows) in expect {
            for &(n, want) in rows {
                assert_eq!(dpsize_inner(kind, n), want, "DPsize {kind} n={n}");
            }
        }
    }

    #[test]
    fn figure3_dpsub_column() {
        let expect: &[(GraphKind, &[(u64, u128)])] = &[
            (
                GraphKind::Chain,
                &[(2, 2), (5, 84), (10, 3962), (15, 130_798), (20, 4_193_840)],
            ),
            (
                GraphKind::Cycle,
                &[
                    (2, 2),
                    (5, 140),
                    (10, 11_062),
                    (15, 523_836),
                    (20, 22_019_294),
                ],
            ),
            (
                GraphKind::Star,
                &[
                    (2, 2),
                    (5, 130),
                    (10, 38_342),
                    (15, 9_533_170),
                    (20, 2_323_474_358),
                ],
            ),
            (
                GraphKind::Clique,
                &[
                    (2, 2),
                    (5, 180),
                    (10, 57_002),
                    (15, 14_283_372),
                    (20, 3_484_687_250),
                ],
            ),
        ];
        for &(kind, rows) in expect {
            for &(n, want) in rows {
                assert_eq!(dpsub_inner(kind, n), want, "DPsub {kind} n={n}");
            }
        }
    }

    #[test]
    fn closed_forms_match_profile_predictions() {
        for kind in GraphKind::ALL {
            for n in 2..=14u64 {
                let g = generators::generate(kind, n as usize);
                let p = CsgProfile::compute(&g);
                assert_eq!(
                    dpsize_inner(kind, n),
                    dpsize_inner_from_profile(&p),
                    "DPsize {kind} n={n}"
                );
                assert_eq!(
                    dpsub_inner(kind, n),
                    dpsub_inner_from_profile(&p),
                    "DPsub {kind} n={n}"
                );
            }
        }
    }

    #[test]
    fn unfiltered_formula() {
        assert_eq!(dpsub_unfiltered_inner(2), 2);
        // Equals the clique DPsub counter for every n.
        for n in 2..=20 {
            assert_eq!(dpsub_unfiltered_inner(n), dpsub_inner(GraphKind::Clique, n));
        }
    }

    #[test]
    fn dpccp_inner_is_ccp() {
        for kind in GraphKind::ALL {
            for n in 2..=20 {
                assert_eq!(dpccp_inner(kind, n), ccp_distinct(kind, n));
            }
        }
    }

    #[test]
    fn naive_profile_counter_roughly_doubles_optimized() {
        for kind in GraphKind::ALL {
            let g = generators::generate(kind, 10);
            let p = CsgProfile::compute(&g);
            let opt = dpsize_inner_from_profile(&p);
            let naive = dpsize_naive_inner_from_profile(&p);
            assert!(naive > opt);
            assert!(
                naive <= 2 * opt + 10_000,
                "{kind}: naive should be ≈ 2× optimized"
            );
        }
    }

    #[test]
    fn degenerate_single_relation() {
        for kind in GraphKind::ALL {
            assert_eq!(dpsize_inner(kind, 1), 0, "{kind}");
            assert_eq!(dpsub_inner(kind, 1), 0, "{kind}");
            assert_eq!(dpccp_inner(kind, 1), 0, "{kind}");
        }
    }
}
