//! Compile-time-gated fault injection, in the spirit of tikv's
//! `fail-rs` but dependency-free.
//!
//! Optimizer internals call [`check`] at named sites; in normal builds
//! the call compiles to `Ok(())` and vanishes. Building with
//! `RUSTFLAGS="--cfg failpoints"` activates a process-global registry
//! where tests arm sites with [`configure`] to return an error or
//! panic, proving the degradation ladder and panic isolation handle
//! every failure mode (see `tests/resilience.rs`).
//!
//! # Sites
//!
//! | site                    | location                                   |
//! |-------------------------|--------------------------------------------|
//! | `table-insert`          | DP-table insert path (driver and IDP)      |
//! | `arena-alloc`           | plan-arena node allocation                 |
//! | `estimator`             | cardinality-estimator construction         |
//! | `worker-spawn`          | parallel-engine worker spawn               |
//! | `engine-tiebreak-invert`| behavioral [`flag`]: the parallel engine's |
//! |                         | cost tie-break keeps the *last* candidate  |
//! |                         | instead of the first (conformance harness) |
//! | `dpconv-rank-skip`      | behavioral [`flag`]: DPconv drops the      |
//! |                         | balanced convolution layer of its final    |
//! |                         | rank (`n ≥ 4`) — a silent wrong-cost bug   |
//! |                         | the differential oracle must catch         |
//!
//! The registry is a global mutex; tests that arm sites must serialize
//! themselves (the resilience suite shares one test lock). A panicking
//! site poisons nothing permanently: the registry recovers the lock
//! with [`std::sync::PoisonError::into_inner`].

use crate::error::OptimizeError;

/// What an armed failpoint does when its site is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Return `OptimizeError::Internal` from the site.
    Error,
    /// Panic at the site (exercises `catch_unwind` isolation).
    Panic,
}

#[cfg(failpoints)]
mod registry {
    use std::collections::HashMap;
    use std::sync::{Mutex, MutexGuard, PoisonError};

    use super::FailAction;

    struct Armed {
        action: FailAction,
        /// Remaining triggers; `None` means unlimited.
        remaining: Option<usize>,
    }

    static REGISTRY: Mutex<Option<HashMap<&'static str, Armed>>> = Mutex::new(None);

    fn lock() -> MutexGuard<'static, Option<HashMap<&'static str, Armed>>> {
        // A panic injected while the lock was held must not disable the
        // harness for the rest of the process.
        REGISTRY.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Arms `site` to fire `action` on every hit until cleared.
    pub fn configure(site: &'static str, action: FailAction) {
        lock().get_or_insert_with(HashMap::new).insert(
            site,
            Armed {
                action,
                remaining: None,
            },
        );
    }

    /// Arms `site` for at most `times` hits, then auto-disarms.
    pub fn configure_times(site: &'static str, action: FailAction, times: usize) {
        lock().get_or_insert_with(HashMap::new).insert(
            site,
            Armed {
                action,
                remaining: Some(times),
            },
        );
    }

    /// Disarms `site`.
    pub fn clear(site: &str) {
        if let Some(map) = lock().as_mut() {
            map.remove(site);
        }
    }

    /// Disarms every site.
    pub fn clear_all() {
        if let Some(map) = lock().as_mut() {
            map.clear();
        }
    }

    /// Whether `site` is currently armed, without consuming a trigger.
    pub fn is_armed(site: &str) -> bool {
        lock()
            .as_ref()
            .is_some_and(|map| map.get(site).is_some_and(|a| a.remaining != Some(0)))
    }

    /// The action `site` should take now, decrementing its trigger
    /// count. `None` when the site is not armed.
    pub fn fire(site: &str) -> Option<FailAction> {
        let mut guard = lock();
        let map = guard.as_mut()?;
        let armed = map.get_mut(site)?;
        let action = armed.action;
        match &mut armed.remaining {
            Some(0) => return None,
            Some(n) => {
                *n -= 1;
                if *n == 0 {
                    map.remove(site);
                }
            }
            None => {}
        }
        Some(action)
    }
}

#[cfg(failpoints)]
pub use registry::{clear, clear_all, configure, configure_times};

/// Evaluates the failpoint at `site`. A no-op unless the crate was
/// built with `--cfg failpoints` *and* a test armed the site.
#[cfg(failpoints)]
pub fn check(site: &'static str) -> Result<(), OptimizeError> {
    match registry::fire(site) {
        None => Ok(()),
        Some(FailAction::Error) => Err(OptimizeError::Internal(format!(
            "failpoint {site} injected error"
        ))),
        Some(FailAction::Panic) => panic!("failpoint {site} injected panic"),
    }
}

/// Evaluates the failpoint at `site`. A no-op unless the crate was
/// built with `--cfg failpoints` *and* a test armed the site.
#[cfg(not(failpoints))]
#[inline(always)]
pub fn check(_site: &'static str) -> Result<(), OptimizeError> {
    Ok(())
}

/// A *behavioral* failpoint: `true` while `site` is armed (with any
/// [`FailAction`] — the action is ignored and no trigger is consumed).
/// Sites branch on it to flip an internal policy rather than fail, so
/// the conformance harness can prove it detects subtle divergence (the
/// parallel engine's `engine-tiebreak-invert`).
#[cfg(failpoints)]
pub fn flag(site: &'static str) -> bool {
    registry::is_armed(site)
}

/// A *behavioral* failpoint: constant `false` in normal builds, so the
/// branch it guards folds away entirely.
#[cfg(not(failpoints))]
#[inline(always)]
pub fn flag(_site: &'static str) -> bool {
    false
}

#[cfg(all(test, failpoints))]
mod tests {
    use super::*;

    // These run under the shared lock in tests/resilience.rs when the
    // full suite runs; within this unit module they only touch sites
    // the integration tests never arm.
    #[test]
    fn unarmed_site_is_ok() {
        assert_eq!(check("unit-test-unarmed"), Ok(()));
    }

    #[test]
    fn count_limited_site_disarms_itself() {
        configure_times("unit-test-counted", FailAction::Error, 2);
        assert!(check("unit-test-counted").is_err());
        assert!(check("unit-test-counted").is_err());
        assert_eq!(check("unit-test-counted"), Ok(()));
        clear("unit-test-counted");
    }
}
