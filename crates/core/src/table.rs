//! The dynamic-programming table `BestPlan(S)`.
//!
//! Keys are [`RelSet`]s — single `u64`s — so the table is a hash map with
//! a fast multiplicative hasher written here (the standard-library
//! SipHash is a poor fit for hot integer keys; see the workspace design
//! notes). The table stores, per relation set, the best plan found so
//! far and its statistics.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use joinopt_cost::PlanStats;
use joinopt_plan::PlanId;
use joinopt_relset::RelSet;

/// A Fibonacci-style multiplicative hasher for `u64` keys.
///
/// Equivalent in spirit to `rustc-hash`'s `FxHasher` for single-word
/// keys; written in-repo to keep the dependency set minimal.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher64 {
    state: u64,
}

/// 64-bit golden-ratio constant (`floor(2^64 / φ)`, forced odd).
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic path (not used by RelSet keys, which hash via write_u64):
        // fold 8-byte chunks.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        self.state = (self.state.rotate_left(5) ^ x).wrapping_mul(SEED);
    }

    #[inline]
    fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }
}

/// `BuildHasher` for [`FxHasher64`].
pub type BuildFxHasher = BuildHasherDefault<FxHasher64>;

/// One `BestPlan(S)` entry: the plan and its statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableEntry {
    /// Arena id of the best plan for the set.
    pub plan: PlanId,
    /// Cardinality and cost of that plan.
    pub stats: PlanStats,
}

/// Storage interface for `BestPlan(S)` — implemented by the sparse
/// hash-based [`DpTable`] (default) and the dense direct-addressed
/// [`DenseDpTable`] DPsub uses for small `n` (the Vance/Maier original
/// indexes an array by the subset integer, which is what makes DPsub's
/// inner loop so cheap on dense search spaces).
pub trait PlanTable {
    /// Looks up `BestPlan(s)`.
    fn get(&self, s: RelSet) -> Option<&TableEntry>;

    /// Unconditionally registers `entry` as the plan for `s`.
    fn insert(&mut self, s: RelSet, entry: TableEntry);

    /// Registers lazily-built `entry` if `s` has no plan yet or `cost`
    /// improves on the registered one. Returns `true` iff `s` was
    /// previously absent.
    fn insert_if_better(
        &mut self,
        s: RelSet,
        cost: f64,
        entry: impl FnOnce() -> TableEntry,
    ) -> bool;

    /// `true` iff a plan for `s` is registered.
    fn contains(&self, s: RelSet) -> bool {
        self.get(s).is_some()
    }

    /// Number of sets with a registered plan.
    fn len(&self) -> usize;

    /// Number of entry slots currently allocated (bucket capacity for
    /// the sparse table, `2ⁿ` slots for the dense one). `len / capacity`
    /// is the occupancy telemetry reports.
    fn capacity(&self) -> usize;

    /// Approximate bytes of storage backing the table (based on
    /// allocated capacity, not occupancy) — what memory budgets charge.
    fn bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<(RelSet, TableEntry)>()
    }

    /// `true` iff no plan is registered.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The DP table mapping relation sets to their best plans.
#[derive(Debug, Clone, Default)]
pub struct DpTable {
    map: HashMap<RelSet, TableEntry, BuildFxHasher>,
}

impl DpTable {
    /// Creates an empty table.
    pub fn new() -> DpTable {
        DpTable::default()
    }

    /// Creates a table pre-sized for `cap` entries.
    pub fn with_capacity(cap: usize) -> DpTable {
        DpTable {
            map: HashMap::with_capacity_and_hasher(cap, BuildFxHasher::default()),
        }
    }

    /// Iterates over all `(set, entry)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (RelSet, &TableEntry)> {
        self.map.iter().map(|(k, v)| (*k, v))
    }
}

impl PlanTable for DpTable {
    #[inline]
    fn get(&self, s: RelSet) -> Option<&TableEntry> {
        self.map.get(&s)
    }

    /// `true` iff a plan for `s` is registered. Because the algorithms
    /// only register connected sets, this doubles as an O(1)
    /// connectedness test for already-enumerated sets (the standard
    /// DPsub implementation trick).
    #[inline]
    fn contains(&self, s: RelSet) -> bool {
        self.map.contains_key(&s)
    }

    #[inline]
    fn insert(&mut self, s: RelSet, entry: TableEntry) {
        self.map.insert(s, entry);
    }

    #[inline]
    fn insert_if_better(
        &mut self,
        s: RelSet,
        cost: f64,
        entry: impl FnOnce() -> TableEntry,
    ) -> bool {
        match self.map.entry(s) {
            std::collections::hash_map::Entry::Occupied(mut occ) => {
                if cost < occ.get().stats.cost {
                    *occ.get_mut() = entry();
                }
                false
            }
            std::collections::hash_map::Entry::Vacant(vac) => {
                vac.insert(entry());
                true
            }
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn capacity(&self) -> usize {
        self.map.capacity()
    }
}

/// A dense, direct-addressed DP table: slot `s.bits()` holds the entry
/// for set `s`. This is the layout of the original Vance/Maier
/// implementation and what makes DPsub's innermost loop a handful of
/// instructions on dense search spaces — no hashing, no probing.
///
/// Memory is `Θ(2ⁿ)`, so it is only constructed for small `n`
/// ([`DenseDpTable::MAX_RELATIONS`]); DPsub falls back to the sparse
/// [`DpTable`] above that size (where DPsub is infeasible anyway).
#[derive(Debug, Clone)]
pub struct DenseDpTable {
    slots: Vec<TableEntry>,
    present: Vec<u64>,
    len: usize,
}

/// Sentinel for empty slots (never read while absent).
const VACANT: TableEntry = TableEntry {
    plan: PlanId::SENTINEL,
    stats: PlanStats {
        cardinality: 0.0,
        cost: f64::INFINITY,
    },
};

impl DenseDpTable {
    /// Largest `n` for which a dense table is reasonable
    /// (2²² entries ≈ 100 MiB).
    pub const MAX_RELATIONS: usize = 22;

    /// Creates a table for subsets of `n` relations.
    ///
    /// # Panics
    ///
    /// Panics if `n > Self::MAX_RELATIONS`.
    pub fn new(n: usize) -> DenseDpTable {
        assert!(
            n <= Self::MAX_RELATIONS,
            "dense DP table limited to {} relations",
            Self::MAX_RELATIONS
        );
        let size = 1usize << n;
        DenseDpTable {
            slots: vec![VACANT; size],
            present: vec![0u64; size.div_ceil(64)],
            len: 0,
        }
    }

    #[inline]
    fn is_present(&self, idx: usize) -> bool {
        (self.present[idx >> 6] >> (idx & 63)) & 1 == 1
    }

    #[inline]
    fn mark_present(&mut self, idx: usize) {
        self.present[idx >> 6] |= 1u64 << (idx & 63);
    }
}

impl PlanTable for DenseDpTable {
    #[inline]
    fn get(&self, s: RelSet) -> Option<&TableEntry> {
        let idx = s.bits() as usize;
        if self.is_present(idx) {
            Some(&self.slots[idx])
        } else {
            None
        }
    }

    #[inline]
    fn contains(&self, s: RelSet) -> bool {
        self.is_present(s.bits() as usize)
    }

    #[inline]
    fn insert(&mut self, s: RelSet, entry: TableEntry) {
        let idx = s.bits() as usize;
        if !self.is_present(idx) {
            self.mark_present(idx);
            self.len += 1;
        }
        self.slots[idx] = entry;
    }

    #[inline]
    fn insert_if_better(
        &mut self,
        s: RelSet,
        cost: f64,
        entry: impl FnOnce() -> TableEntry,
    ) -> bool {
        let idx = s.bits() as usize;
        if self.is_present(idx) {
            if cost < self.slots[idx].stats.cost {
                self.slots[idx] = entry();
            }
            false
        } else {
            self.mark_present(idx);
            self.len += 1;
            self.slots[idx] = entry();
            true
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<TableEntry>()
            + self.present.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(cost: f64) -> TableEntry {
        // PlanId has no public constructor; fabricate one through an arena.
        let mut arena = joinopt_plan::PlanArena::new();
        let id = arena.add_scan(0, 1.0);
        TableEntry {
            plan: id,
            stats: PlanStats {
                cardinality: 1.0,
                cost,
            },
        }
    }

    #[test]
    fn insert_and_get() {
        let mut t = DpTable::new();
        assert!(t.is_empty());
        let s = RelSet::from_indices([0, 1]);
        assert!(t.insert_if_better(s, 10.0, || entry(10.0)));
        assert_eq!(t.len(), 1);
        assert!(t.contains(s));
        assert_eq!(t.get(s).unwrap().stats.cost, 10.0);
    }

    #[test]
    fn better_cost_replaces() {
        let mut t = DpTable::new();
        let s = RelSet::single(0);
        t.insert(s, entry(10.0));
        assert!(!t.insert_if_better(s, 5.0, || entry(5.0)));
        assert_eq!(t.get(s).unwrap().stats.cost, 5.0);
    }

    #[test]
    fn worse_cost_ignored_and_not_materialized() {
        let mut t = DpTable::new();
        let s = RelSet::single(0);
        t.insert(s, entry(10.0));
        let mut called = false;
        assert!(!t.insert_if_better(s, 20.0, || {
            called = true;
            entry(20.0)
        }));
        assert!(!called, "losing candidate must not be materialized");
        assert_eq!(t.get(s).unwrap().stats.cost, 10.0);
    }

    #[test]
    fn equal_cost_keeps_first() {
        let mut t = DpTable::new();
        let s = RelSet::single(0);
        t.insert(s, entry(10.0));
        let mut called = false;
        t.insert_if_better(s, 10.0, || {
            called = true;
            entry(10.0)
        });
        assert!(!called, "ties must keep the incumbent (strict <)");
    }

    #[test]
    fn iter_sees_all_entries() {
        let mut t = DpTable::with_capacity(4);
        t.insert(RelSet::single(0), entry(1.0));
        t.insert(RelSet::single(1), entry(2.0));
        let mut sets: Vec<RelSet> = t.iter().map(|(s, _)| s).collect();
        sets.sort();
        assert_eq!(sets, vec![RelSet::single(0), RelSet::single(1)]);
    }

    #[test]
    fn hasher_distributes_dense_keys() {
        // Dense small bitsets (the DP workload) should not collide
        // pathologically: inserting 2^14 distinct keys must keep the map
        // at full size (correctness) — and this exercises write_u64.
        let mut t = DpTable::new();
        for bits in 1u64..(1 << 14) {
            t.insert(RelSet::from_bits(bits), entry(bits as f64));
        }
        assert_eq!(t.len(), (1 << 14) - 1);
    }

    #[test]
    fn bytes_track_allocated_capacity() {
        let t = DpTable::with_capacity(16);
        assert!(t.bytes() >= 16 * std::mem::size_of::<(RelSet, TableEntry)>());
        let d = DenseDpTable::new(6);
        assert_eq!(
            d.bytes(),
            64 * std::mem::size_of::<TableEntry>() + std::mem::size_of::<u64>()
        );
        // Footprint is a function of capacity, not occupancy.
        let mut d2 = DenseDpTable::new(6);
        d2.insert(RelSet::single(0), entry(1.0));
        assert_eq!(d2.bytes(), d.bytes());
    }

    #[test]
    fn fxhasher_generic_write_path() {
        use std::hash::Hasher as _;
        let mut h1 = FxHasher64::default();
        h1.write(b"hello world!");
        let mut h2 = FxHasher64::default();
        h2.write(b"hello world?");
        assert_ne!(h1.finish(), h2.finish());
    }
}
