//! Top-down partitioning search with memoization and optional
//! branch-and-bound pruning.
//!
//! The bottom-up DP algorithms of the paper build every connected subset
//! unconditionally. The *top-down* family (DeHaan & Tompa; Fender &
//! Moerkotte) instead recursively partitions the full relation set into
//! csg-cmp-pairs, memoizing solved subsets — same optimal result, same
//! asymptotic enumeration, but with a crucial extra ability: **cost
//! bounding**. A subproblem whose admissible lower bound already exceeds
//! the best known alternative is never expanded; a greedy (GOO) plan
//! seeds the initial upper bound.
//!
//! The partitioner implemented here is the *basic* generate-and-filter
//! one (connected `S₁ ∋ min(S)` via neighborhood growth, complement
//! checked for connectivity) — honest TDBasic, not the advanced min-cut
//! partitioners. The point of the module is the search-strategy
//! comparison, which the `topdown_pruning` ablation bench and the test
//! suite quantify: pruning never changes the answer and can skip large
//! parts of the space on favorable statistics.
//!
//! Memo entries are either *exact* (a proven-optimal plan for the set)
//! or *pruned* (a proven lower bound); pruned entries are re-expanded if
//! a later caller arrives with a higher budget.

use joinopt_cost::{ensure_finite, CardinalityEstimator, Catalog, CostModel, PlanStats};
use joinopt_plan::{PlanArena, PlanId};
use joinopt_qgraph::QueryGraph;
use joinopt_relset::RelSet;
use joinopt_telemetry::Observer;

use crate::cancel::CancellationToken;
use crate::counters::Counters;
use crate::driver::Spans;
use crate::error::OptimizeError;
use crate::greedy::Goo;
use crate::result::{DpResult, JoinOrderer};

/// Top-down memoized partitioning search.
#[derive(Debug, Clone, Copy)]
pub struct TopDown {
    /// Enable branch-and-bound pruning (seeded by a GOO plan).
    pub pruning: bool,
}

impl Default for TopDown {
    fn default() -> Self {
        TopDown { pruning: true }
    }
}

impl TopDown {
    /// Pruning enabled (the default).
    pub fn with_pruning() -> TopDown {
        TopDown { pruning: true }
    }

    /// Pruning disabled — pure memoized enumeration (ablation).
    pub fn without_pruning() -> TopDown {
        TopDown { pruning: false }
    }
}

#[derive(Clone, Copy)]
enum Memo {
    /// Optimal plan for the set.
    Exact { plan: PlanId, stats: PlanStats },
    /// No plan with cost < `lower` exists (proven under some budget).
    Pruned { lower: f64 },
}

struct Search<'a> {
    g: &'a QueryGraph,
    est: CardinalityEstimator,
    model: &'a dyn CostModel,
    arena: PlanArena,
    memo: std::collections::HashMap<RelSet, Memo, crate::table::BuildFxHasher>,
    counters: Counters,
    pruning: bool,
    obs: &'a dyn Observer,
    observe: bool,
    provenance: bool,
    probes: u64,
    hits: u64,
    ctl: &'a CancellationToken,
    pace: u32,
    charged: usize,
}

impl JoinOrderer for TopDown {
    fn name(&self) -> &'static str {
        if self.pruning {
            "TopDown"
        } else {
            "TopDown-noprune"
        }
    }

    fn optimize_controlled(
        &self,
        g: &QueryGraph,
        catalog: &Catalog,
        model: &dyn CostModel,
        obs: &dyn Observer,
        ctl: &CancellationToken,
    ) -> Result<DpResult, OptimizeError> {
        let spans = Spans::start(obs, self.name(), g.num_relations());
        spans.begin("init");
        if g.num_relations() == 0 {
            return Err(OptimizeError::EmptyQuery);
        }
        g.require_connected()?;
        ctl.check()?;
        crate::failpoint::check("estimator")?;
        let est = CardinalityEstimator::new(g, catalog)?;

        // Seed the upper bound with a greedy plan (only used when
        // pruning). Runs unobserved — a nested `run_start` would corrupt
        // the event stream.
        let initial_upper = if self.pruning && g.num_relations() > 1 {
            let goo =
                Goo.optimize_controlled(g, catalog, model, &joinopt_telemetry::NoopObserver, ctl)?;
            goo.cost * (1.0 + 1e-9) + 1e-9
        } else {
            f64::INFINITY
        };

        let arena = PlanArena::with_capacity(4 * g.num_relations());
        ctl.charge(arena.bytes())?;
        let charged = arena.bytes();
        let mut search = Search {
            g,
            est,
            model,
            arena,
            memo: std::collections::HashMap::default(),
            counters: Counters::new(),
            pruning: self.pruning,
            obs,
            observe: obs.enabled(),
            provenance: obs.enabled() && obs.wants_provenance(),
            probes: 0,
            hits: 0,
            ctl,
            pace: 0,
            charged,
        };
        spans.end("init");
        spans.begin("enumerate");
        let full = g.all_relations();
        let Some(result) = search.solve(full, initial_upper)? else {
            return Err(OptimizeError::Internal(
                "top-down search found no plan under the greedy seed bound".into(),
            ));
        };
        spans.end("enumerate");

        spans.begin("extract");
        let tree = search.arena.extract(result.0);
        spans.end("extract");
        spans.table_stats(
            search.memo.len(),
            search.memo.capacity(),
            search.probes,
            search.hits,
        );
        spans.arena_stats(&search.arena);
        spans.finish(&search.counters);
        Ok(DpResult {
            cost: result.1.cost,
            cardinality: result.1.cardinality,
            tree,
            counters: search.counters,
            table_size: search.memo.len(),
            plans_built: search.arena.len(),
        })
    }
}

impl Search<'_> {
    /// Memo probe/hit accounting (no-op when not observing).
    #[inline]
    fn note_probe(&mut self, hit: bool) {
        if self.observe {
            self.probes += 1;
            self.hits += u64::from(hit);
        }
    }

    /// Best plan for `s` with cost `< upper`, or `Ok(None)` if provably
    /// none exists below the budget. Fails when the cancellation token
    /// trips or an estimate turns non-finite.
    fn solve(
        &mut self,
        s: RelSet,
        upper: f64,
    ) -> Result<Option<(PlanId, PlanStats)>, OptimizeError> {
        if s.is_singleton() {
            let Some(rel) = s.min_index() else {
                return Err(OptimizeError::Internal(
                    "singleton relation set without a member".into(),
                ));
            };
            let card = self.est.base_cardinality(rel);
            // Scans are free; materialize lazily but idempotently via memo.
            let memoized = self.memo.get(&s).copied();
            self.note_probe(memoized.is_some());
            if let Some(Memo::Exact { plan, stats }) = memoized {
                return Ok(Some((plan, stats)));
            }
            let stats = PlanStats::base(card);
            let plan = self.arena.add_scan(rel, card);
            self.memo.insert(s, Memo::Exact { plan, stats });
            return Ok(Some((plan, stats)));
        }
        self.note_probe(self.memo.contains_key(&s));
        match self.memo.get(&s) {
            Some(Memo::Exact { plan, stats }) => {
                return Ok((stats.cost < upper).then_some((*plan, *stats)));
            }
            Some(Memo::Pruned { lower }) if *lower >= upper => return Ok(None),
            // Unknown or pruned under a smaller budget: (re-)expand.
            Some(Memo::Pruned { .. }) | None => {}
        }

        let out_card = ensure_finite("cardinality", self.est.set_cardinality(s))?;
        let mut best: Option<(PlanId, PlanStats)> = None;
        let mut bound = upper;

        // Enumerate partitions: connected S1 containing min(s), connected
        // adjacent complement. Each carries an admissible lower bound:
        // the join's own cost with free children (every model adds
        // children costs on top) plus any lower bounds the memo has
        // already proven for the children.
        let mut splits: Vec<(RelSet, RelSet, f64)> = self
            .partitions(s)
            .into_iter()
            .map(|(s1, s2)| {
                let l0 = PlanStats {
                    cardinality: self.est.set_cardinality(s1),
                    cost: 0.0,
                };
                let r0 = PlanStats {
                    cardinality: self.est.set_cardinality(s2),
                    cost: 0.0,
                };
                let lb12 = self.model.join_cost(&l0, &r0, out_card);
                let join_lb = if self.model.is_symmetric() {
                    lb12
                } else {
                    lb12.min(self.model.join_cost(&r0, &l0, out_card))
                };
                (
                    s1,
                    s2,
                    join_lb + self.child_lower(s1) + self.child_lower(s2),
                )
            })
            .collect();
        if self.pruning {
            // Most promising first, so a tight bound forms early. The
            // bounds may be non-finite for degenerate statistics;
            // `total_cmp` keeps the sort well-defined either way.
            splits.sort_by(|a, b| a.2.total_cmp(&b.2));
        }
        for (s1, s2, lb) in splits {
            self.counters.inner += 1;
            self.ctl.checkpoint(&mut self.pace)?;
            if self.pruning && lb >= bound {
                // Sorted ascending: everything after is at least as bad.
                if self.provenance {
                    self.obs.on_event(joinopt_telemetry::Event::SearchPruned {
                        set: s.bits(),
                        reason: "bound",
                    });
                }
                break;
            }
            self.counters.csg_cmp_pairs += 2;
            self.counters.ono_lohman += 1;
            let lb_other2 = self.child_lower(s2);
            let child_budget1 = if self.pruning {
                bound - lb + self.child_lower(s1)
            } else {
                f64::INFINITY
            };
            let Some((p1, st1)) = self.solve(s1, child_budget1)? else {
                continue;
            };
            let child_budget2 = if self.pruning {
                bound - (lb - self.child_lower(s1) - lb_other2) - st1.cost
            } else {
                f64::INFINITY
            };
            let Some((p2, st2)) = self.solve(s2, child_budget2)? else {
                continue;
            };
            let c12 = ensure_finite("cost", self.model.join_cost(&st1, &st2, out_card))?;
            let (cost, left, right, left_set, right_set) = if self.model.is_symmetric() {
                (c12, p1, p2, s1, s2)
            } else {
                let c21 = ensure_finite("cost", self.model.join_cost(&st2, &st1, out_card))?;
                if c21 < c12 {
                    (c21, p2, p1, s2, s1)
                } else {
                    (c12, p1, p2, s1, s2)
                }
            };
            let accepted =
                cost < bound || (!self.pruning && best.as_ref().is_none_or(|b| cost < b.1.cost));
            if self.provenance {
                self.obs.on_event(joinopt_telemetry::Event::PlanCandidate {
                    set: s.bits(),
                    left: left_set.bits(),
                    right: right_set.bits(),
                    cost,
                    accepted,
                });
            }
            if accepted {
                let stats = PlanStats {
                    cardinality: out_card,
                    cost,
                };
                let plan = self.arena.add_join(left, right, stats);
                if self.arena.bytes() > self.charged {
                    self.ctl.charge(self.arena.bytes() - self.charged)?;
                    self.charged = self.arena.bytes();
                }
                best = Some((plan, stats));
                bound = bound.min(cost);
            }
        }

        match best {
            Some((plan, stats)) => {
                // Exact: every alternative was either evaluated or pruned
                // against a bound that this cost satisfies.
                self.memo.insert(s, Memo::Exact { plan, stats });
                Ok(Some((plan, stats)))
            }
            None => {
                // Proven: nothing below `upper`.
                let lower = match self.memo.get(&s) {
                    Some(Memo::Pruned { lower }) => lower.max(upper),
                    _ => upper,
                };
                self.memo.insert(s, Memo::Pruned { lower });
                Ok(None)
            }
        }
    }

    /// The tightest lower bound the memo already proves for a set's
    /// plan cost (0 when unknown).
    fn child_lower(&self, s: RelSet) -> f64 {
        match self.memo.get(&s) {
            Some(Memo::Exact { stats, .. }) => stats.cost,
            Some(Memo::Pruned { lower }) => *lower,
            None => 0.0,
        }
    }

    /// All csg-cmp partitions `(S₁, S₂)` of `s` with `min(s) ∈ S₁`.
    fn partitions(&self, s: RelSet) -> Vec<(RelSet, RelSet)> {
        let anchor = s.lowest();
        let mut out = Vec::new();
        // Grow connected sets from the anchor within `s`, neighborhood
        // layer by layer (the EnumerateCsgRec discipline restricted to s).
        fn rec(g: &QueryGraph, s: RelSet, s1: RelSet, x: RelSet, out: &mut Vec<(RelSet, RelSet)>) {
            let nb = (g.neighborhood(s1) & s) - x;
            if nb.is_empty() {
                return;
            }
            for ext in nb.non_empty_subsets() {
                let cand = s1 | ext;
                if cand != s {
                    let s2 = s - cand;
                    if g.is_connected_set(s2) && g.sets_connected(cand, s2) {
                        out.push((cand, s2));
                    }
                }
            }
            for ext in nb.non_empty_subsets() {
                rec(g, s, s1 | ext, x | nb, out);
            }
        }
        // The singleton anchor itself:
        let s2 = s - anchor;
        if self.g.is_connected_set(s2) && self.g.sets_connected(anchor, s2) {
            out.push((anchor, s2));
        }
        rec(self.g, s, anchor, anchor, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DpCcp, JoinOrderer};
    use joinopt_cost::{workload, Cout, HashJoin, MinOverPhysical};
    use joinopt_qgraph::GraphKind;

    #[test]
    fn matches_dpccp_on_families() {
        for kind in GraphKind::ALL {
            for n in 2..=9 {
                let w = workload::family_workload(kind, n, 7);
                let opt = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
                for td in [TopDown::with_pruning(), TopDown::without_pruning()] {
                    let r = td.optimize(&w.graph, &w.catalog, &Cout).unwrap();
                    let tol = 1e-6 * opt.cost.abs().max(1.0);
                    assert!(
                        (r.cost - opt.cost).abs() <= tol,
                        "{} on {kind} n={n}: {} vs {}",
                        td.name(),
                        r.cost,
                        opt.cost
                    );
                }
            }
        }
    }

    #[test]
    fn matches_dpccp_on_random_workloads_and_models() {
        let models: [&dyn CostModel; 3] = [&Cout, &HashJoin, &MinOverPhysical];
        for seed in 0..10 {
            let w = workload::random_workload(8, 0.35, seed);
            for model in models {
                let opt = DpCcp.optimize(&w.graph, &w.catalog, model).unwrap();
                for td in [TopDown::with_pruning(), TopDown::without_pruning()] {
                    let r = td.optimize(&w.graph, &w.catalog, model).unwrap();
                    let tol = 1e-6 * opt.cost.abs().max(1.0);
                    assert!(
                        (r.cost - opt.cost).abs() <= tol,
                        "{} seed {seed} model {}: {} vs {}",
                        td.name(),
                        model.name(),
                        r.cost,
                        opt.cost
                    );
                }
            }
        }
    }

    #[test]
    fn pruning_skips_work_without_changing_the_answer() {
        let mut pruned_total = 0u64;
        let mut full_total = 0u64;
        for seed in 0..10 {
            let w = workload::random_workload(9, 0.3, seed);
            let with = TopDown::with_pruning()
                .optimize(&w.graph, &w.catalog, &Cout)
                .unwrap();
            let without = TopDown::without_pruning()
                .optimize(&w.graph, &w.catalog, &Cout)
                .unwrap();
            assert!(
                (with.cost - without.cost).abs() <= 1e-6 * without.cost.abs().max(1.0),
                "seed {seed}"
            );
            pruned_total += with.counters.inner;
            full_total += without.counters.inner;
        }
        assert!(
            pruned_total < full_total,
            "pruning never skipped anything: {pruned_total} vs {full_total}"
        );
    }

    #[test]
    fn unpruned_inner_counter_matches_partition_space() {
        // Without pruning, every subproblem enumerates each of its
        // csg-cmp partitions once — summed over all connected sets this
        // equals the Ono/Lohman pair count of the graph.
        use joinopt_qgraph::csg;
        for kind in GraphKind::ALL {
            let w = workload::family_workload(kind, 8, 1);
            let r = TopDown::without_pruning()
                .optimize(&w.graph, &w.catalog, &Cout)
                .unwrap();
            assert_eq!(
                r.counters.inner,
                csg::count_ccp_distinct(&w.graph),
                "{kind}"
            );
        }
    }

    #[test]
    fn memo_covers_exactly_connected_sets_when_unpruned() {
        use joinopt_qgraph::csg;
        let w = workload::family_workload(GraphKind::Cycle, 8, 2);
        let r = TopDown::without_pruning()
            .optimize(&w.graph, &w.catalog, &Cout)
            .unwrap();
        assert_eq!(r.table_size as u64, csg::count_csg(&w.graph));
    }

    #[test]
    fn rejects_invalid_inputs() {
        let g = QueryGraph::new(0).unwrap();
        assert!(TopDown::default()
            .optimize(&g, &Catalog::new(&g), &Cout)
            .is_err());
        let disc = QueryGraph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(TopDown::default()
            .optimize(&disc, &Catalog::new(&disc), &Cout)
            .is_err());
    }

    #[test]
    fn single_relation() {
        let w = workload::family_workload(GraphKind::Chain, 1, 0);
        let r = TopDown::default()
            .optimize(&w.graph, &w.catalog, &Cout)
            .unwrap();
        assert_eq!(r.tree.num_joins(), 0);
        assert_eq!(r.counters.inner, 0);
    }
}
