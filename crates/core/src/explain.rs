//! Search-space introspection: capture a run's per-set decision
//! records and render the plan *with its provenance* — as an annotated
//! text document, a Graphviz DOT graph, or a stable JSON document —
//! plus side-by-side comparison of two runs with first-divergent-
//! decision attribution.
//!
//! The DP algorithms make exactly one decision per connected relation
//! set: which split of the set to keep. [`Explanation::capture`] runs
//! an algorithm with a [`ProvenanceCollector`] attached and packages
//! the result together with that decision table; [`compare`] lines two
//! explanations up and pinpoints the *first* (smallest-set) decision
//! where they part ways — which, for equal-cost plans, is always a tie
//! broken by enumeration order.
//!
//! ```
//! use joinopt_core::explain::{compare, Explanation};
//! use joinopt_core::Algorithm;
//! use joinopt_cost::{workload, Cout};
//! use joinopt_qgraph::GraphKind;
//!
//! let w = workload::family_workload(GraphKind::Star, 5, 0);
//! let a = Explanation::capture(&w.graph, &w.catalog, &Cout, Algorithm::DpSize, 1).unwrap();
//! let b = Explanation::capture(&w.graph, &w.catalog, &Cout, Algorithm::DpCcp, 1).unwrap();
//! let diff = compare(&a, &b);
//! assert!((a.result.cost - b.result.cost).abs() <= 1e-9 * a.result.cost);
//! println!("{}", diff.render_text());
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use joinopt_cost::{Catalog, CostModel};
use joinopt_plan::JoinTree;
use joinopt_qgraph::QueryGraph;
use joinopt_relset::{RelIdx, RelSet};
use joinopt_telemetry::json::{write_escaped, write_f64};
use joinopt_telemetry::{DecisionRecord, ProvenanceCollector, SplitChoice};

use crate::error::OptimizeError;
use crate::optimizer::Algorithm;
use crate::request::OptimizeRequest;
use crate::result::DpResult;

/// Names relations `R0`, `R1`, … — the default when the caller has no
/// catalog of real names.
pub fn default_namer(r: RelIdx) -> String {
    format!("R{r}")
}

/// One optimization run plus the provenance of every decision it made.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// Report name of the algorithm that ran (e.g. `"DPccp"`).
    pub algorithm: &'static str,
    /// Name of the cost model the run used.
    pub cost_model: &'static str,
    /// Number of relations in the query.
    pub relations: usize,
    /// The optimization result (plan, cost, counters, statistics).
    pub result: DpResult,
    /// Per-set decision records, keyed by relation-set bitmask
    /// (ascending, so serializations are deterministic).
    pub records: BTreeMap<u64, DecisionRecord>,
}

impl Explanation {
    /// Runs `algorithm` through the session API ([`OptimizeRequest`],
    /// so the DPsub family uses the parallel engine at `threads`
    /// workers) with provenance collection attached.
    ///
    /// # Errors
    ///
    /// Propagates any [`OptimizeError`] from the run itself.
    pub fn capture(
        graph: &QueryGraph,
        catalog: &Catalog,
        model: &dyn CostModel,
        algorithm: Algorithm,
        threads: usize,
    ) -> Result<Explanation, OptimizeError> {
        let prov = ProvenanceCollector::new();
        let outcome = OptimizeRequest::new(graph, catalog)
            .with_algorithm(algorithm)
            .with_cost_model(model)
            .with_threads(threads)
            .with_observer(&prov)
            .run()?;
        Ok(Explanation {
            algorithm: outcome.algorithm.orderer(graph).name(),
            cost_model: model.name(),
            relations: graph.num_relations(),
            result: outcome.result,
            records: prov.records(),
        })
    }

    /// Like [`Explanation::capture`], but always runs the *sequential*
    /// implementation of `algorithm` — never the parallel engine. The
    /// conformance harness uses this as the reference side when
    /// explaining an engine-vs-sequential divergence.
    ///
    /// # Errors
    ///
    /// Propagates any [`OptimizeError`] from the run itself.
    pub fn capture_sequential(
        graph: &QueryGraph,
        catalog: &Catalog,
        model: &dyn CostModel,
        algorithm: Algorithm,
    ) -> Result<Explanation, OptimizeError> {
        let prov = ProvenanceCollector::new();
        let orderer = algorithm.orderer(graph);
        let result = orderer.optimize_observed(graph, catalog, model, &prov)?;
        Ok(Explanation {
            algorithm: orderer.name(),
            cost_model: model.name(),
            relations: graph.num_relations(),
            result,
            records: prov.records(),
        })
    }

    /// Decision sets in DP order: ascending set size, then ascending
    /// bitmask — the order in which a bottom-up DP commits decisions.
    pub fn decision_sets(&self) -> Vec<u64> {
        let mut sets: Vec<u64> = self.records.keys().copied().collect();
        sets.sort_by_key(|s| (s.count_ones(), *s));
        sets
    }

    /// Total candidates considered across all sets.
    pub fn total_candidates(&self) -> u64 {
        self.records.values().map(|r| r.candidates).sum()
    }

    /// Number of sets whose enumeration was cut short by pruning.
    pub fn pruned_sets(&self) -> usize {
        self.records.values().filter(|r| r.pruned.is_some()).count()
    }

    /// The annotated text document: header, rendered plan, and the
    /// per-set decision table in DP order. Fully deterministic (no
    /// clocks), so it can be golden-tested.
    pub fn render_text(&self, name_of: &dyn Fn(RelIdx) -> String) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "algorithm:   {}", self.algorithm);
        let _ = writeln!(out, "cost model:  {}", self.cost_model);
        let _ = writeln!(out, "relations:   {}", self.relations);
        let _ = writeln!(out, "cost:        {:e}", self.result.cost);
        let _ = writeln!(out, "cardinality: {:e}", self.result.cardinality);
        let _ = writeln!(out, "counters:    {}", self.result.counters);
        let _ = writeln!(
            out,
            "dp table:    {} entries, {} plans built",
            self.result.table_size, self.result.plans_built
        );
        let _ = writeln!(
            out,
            "decisions:   {} sets, {} candidates, {} pruned",
            self.records.len(),
            self.total_candidates(),
            self.pruned_sets()
        );
        out.push('\n');
        out.push_str(&self.result.tree.render_ascii_with(name_of));
        out.push('\n');
        let _ = writeln!(out, "decision records (DP order):");
        for set in self.decision_sets() {
            let rec = &self.records[&set];
            let _ = write!(out, "  {}", set_label(set, name_of));
            match rec.winner {
                Some(w) => {
                    let _ = write!(out, "  <- {}", split_label(&w, name_of));
                    let _ = write!(out, "  cost={:e}", w.cost);
                }
                None => {
                    let _ = write!(out, "  <- (no winner)");
                }
            }
            let _ = write!(out, "  candidates={}", rec.candidates);
            match (rec.runner_up, rec.cost_delta()) {
                (Some(r), Some(delta)) => {
                    let _ = write!(
                        out,
                        "  runner-up {} Δ={:e}",
                        split_label(&r, name_of),
                        delta
                    );
                }
                _ => {
                    let _ = write!(out, "  (no runner-up)");
                }
            }
            if let Some(reason) = rec.pruned {
                let _ = write!(out, "  pruned={reason}");
            }
            out.push('\n');
        }
        out
    }

    /// The plan as a Graphviz DOT digraph (see
    /// [`JoinTree::render_dot_with`]).
    pub fn render_dot(&self, name_of: &dyn Fn(RelIdx) -> String) -> String {
        self.result.tree.render_dot_with(name_of)
    }

    /// The stable JSON document: algorithm, result summary, the plan as
    /// a nested object and the decision table in DP order. Key order is
    /// fixed and map iteration is `BTreeMap`-ordered, so equal inputs
    /// produce byte-equal documents.
    pub fn to_json(&self, name_of: &dyn Fn(RelIdx) -> String) -> String {
        let mut s = String::from("{\"algorithm\":");
        write_escaped(&mut s, self.algorithm);
        s.push_str(",\"cost_model\":");
        write_escaped(&mut s, self.cost_model);
        let _ = write!(s, ",\"relations\":{}", self.relations);
        s.push_str(",\"cost\":");
        write_f64(&mut s, self.result.cost);
        s.push_str(",\"cardinality\":");
        write_f64(&mut s, self.result.cardinality);
        let c = &self.result.counters;
        let _ = write!(
            s,
            ",\"counters\":{{\"inner\":{},\"csg_cmp_pairs\":{},\"ono_lohman\":{}}}",
            c.inner, c.csg_cmp_pairs, c.ono_lohman
        );
        let _ = write!(
            s,
            ",\"table\":{{\"entries\":{},\"plans_built\":{}}}",
            self.result.table_size, self.result.plans_built
        );
        s.push_str(",\"plan\":");
        write_plan_json(&mut s, &self.result.tree, name_of);
        s.push_str(",\"decisions\":[");
        for (i, set) in self.decision_sets().into_iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let rec = &self.records[&set];
            let _ = write!(s, "{{\"set\":");
            write_set_json(&mut s, set, name_of);
            let _ = write!(s, ",\"bits\":{set}");
            if let Some(w) = rec.winner {
                s.push_str(",\"winner\":");
                write_split_json(&mut s, &w, name_of);
            }
            if let Some(r) = rec.runner_up {
                s.push_str(",\"runner_up\":");
                write_split_json(&mut s, &r, name_of);
            }
            if let Some(delta) = rec.cost_delta() {
                s.push_str(",\"cost_delta\":");
                write_f64(&mut s, delta);
            }
            let _ = write!(s, ",\"candidates\":{}", rec.candidates);
            if let Some(reason) = rec.pruned {
                s.push_str(",\"pruned\":");
                write_escaped(&mut s, reason);
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}

fn set_label(bits: u64, name_of: &dyn Fn(RelIdx) -> String) -> String {
    let parts: Vec<String> = RelSet::from_bits(bits).iter().map(name_of).collect();
    format!("{{{}}}", parts.join(","))
}

fn split_label(split: &SplitChoice, name_of: &dyn Fn(RelIdx) -> String) -> String {
    format!(
        "{} ⋈ {}",
        set_label(split.left, name_of),
        set_label(split.right, name_of)
    )
}

fn write_set_json(s: &mut String, bits: u64, name_of: &dyn Fn(RelIdx) -> String) {
    s.push('[');
    for (i, r) in RelSet::from_bits(bits).iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        write_escaped(s, &name_of(r));
    }
    s.push(']');
}

fn write_split_json(s: &mut String, split: &SplitChoice, name_of: &dyn Fn(RelIdx) -> String) {
    s.push_str("{\"left\":");
    write_set_json(s, split.left, name_of);
    s.push_str(",\"right\":");
    write_set_json(s, split.right, name_of);
    s.push_str(",\"cost\":");
    write_f64(s, split.cost);
    s.push('}');
}

fn write_plan_json(s: &mut String, tree: &JoinTree, name_of: &dyn Fn(RelIdx) -> String) {
    match tree {
        JoinTree::Scan {
            relation,
            cardinality,
        } => {
            s.push_str("{\"scan\":");
            write_escaped(s, &name_of(*relation));
            s.push_str(",\"cardinality\":");
            write_f64(s, *cardinality);
            s.push('}');
        }
        JoinTree::Join {
            left,
            right,
            cardinality,
            cost,
        } => {
            s.push_str("{\"cardinality\":");
            write_f64(s, *cardinality);
            s.push_str(",\"cost\":");
            write_f64(s, *cost);
            s.push_str(",\"left\":");
            write_plan_json(s, left, name_of);
            s.push_str(",\"right\":");
            write_plan_json(s, right, name_of);
            s.push('}');
        }
    }
}

/// How two runs' decisions for the same set differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceKind {
    /// Different partitions of the set (genuinely different subplans).
    Split,
    /// Same partition, swapped operand orientation.
    Orientation,
}

/// One set where the two compared runs committed different decisions.
#[derive(Debug, Clone)]
pub struct DecisionDivergence {
    /// The relation set (bitmask) whose decision differs.
    pub set: u64,
    /// Split vs orientation difference.
    pub kind: DivergenceKind,
    /// The first run's decision record.
    pub a: DecisionRecord,
    /// The second run's decision record.
    pub b: DecisionRecord,
}

/// The result of [`compare`]: summary statistics plus every divergent
/// decision in DP order.
#[derive(Debug, Clone)]
pub struct ExplainDiff {
    /// Report name of the first run's algorithm.
    pub algorithm_a: &'static str,
    /// Report name of the second run's algorithm.
    pub algorithm_b: &'static str,
    /// Optimal cost of each run.
    pub costs: (f64, f64),
    /// One-line infix renderings of the two plans.
    pub plans: (String, String),
    /// Whether the two join trees are identical.
    pub same_plan: bool,
    /// Sets both runs recorded a decision for.
    pub shared_sets: usize,
    /// Divergent decisions in DP order (set size, then bitmask),
    /// partition differences before orientation differences.
    pub divergences: Vec<DecisionDivergence>,
}

impl ExplainDiff {
    /// The first (smallest-set) divergent decision — the root cause a
    /// bottom-up DP committed to first. Partition differences rank
    /// before orientation-only differences.
    pub fn first_divergence(&self) -> Option<&DecisionDivergence> {
        self.divergences
            .iter()
            .find(|d| d.kind == DivergenceKind::Split)
            .or_else(|| self.divergences.first())
    }

    /// Side-by-side text rendering with first-divergent-decision
    /// attribution. Deterministic.
    pub fn render_text(&self) -> String {
        self.render_text_with(&default_namer)
    }

    /// [`ExplainDiff::render_text`] with a caller-supplied relation
    /// namer.
    pub fn render_text_with(&self, name_of: &dyn Fn(RelIdx) -> String) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "compare: {} vs {}", self.algorithm_a, self.algorithm_b);
        let _ = writeln!(
            out,
            "cost:    {:e} vs {:e} (Δ={:e})",
            self.costs.0,
            self.costs.1,
            self.costs.1 - self.costs.0
        );
        let _ = writeln!(out, "plan a:  {}", self.plans.0);
        let _ = writeln!(out, "plan b:  {}", self.plans.1);
        let _ = writeln!(
            out,
            "plans:   {}",
            if self.same_plan {
                "identical"
            } else {
                "differ"
            }
        );
        let splits = self
            .divergences
            .iter()
            .filter(|d| d.kind == DivergenceKind::Split)
            .count();
        let _ = writeln!(
            out,
            "shared:  {} sets, {} divergent ({} split, {} orientation)",
            self.shared_sets,
            self.divergences.len(),
            splits,
            self.divergences.len() - splits
        );
        if let Some(d) = self.first_divergence() {
            let kind = match d.kind {
                DivergenceKind::Split => "split",
                DivergenceKind::Orientation => "orientation",
            };
            let _ = writeln!(
                out,
                "first divergent decision: {} ({kind})",
                set_label(d.set, name_of)
            );
            for (label, rec) in [("a", &d.a), ("b", &d.b)] {
                if let Some(w) = rec.winner {
                    let _ = write!(
                        out,
                        "  {label}: {}  cost={:e}  candidates={}",
                        split_label(&w, name_of),
                        w.cost,
                        rec.candidates
                    );
                    if let Some(delta) = rec.cost_delta() {
                        let _ = write!(out, "  runner-up Δ={delta:e}");
                    }
                    out.push('\n');
                }
            }
            if let (Some(wa), Some(wb)) = (d.a.winner, d.b.winner) {
                if wa.cost.to_bits() == wb.cost.to_bits() {
                    let _ = writeln!(
                        out,
                        "  equal-cost candidates: tie broken by enumeration order"
                    );
                }
            }
        } else if self.same_plan {
            let _ = writeln!(out, "no divergent decisions");
        }
        out
    }

    /// The stable JSON document for a comparison: both runs' costs and
    /// plans plus every divergent decision in DP order.
    pub fn to_json(&self, name_of: &dyn Fn(RelIdx) -> String) -> String {
        let mut s = String::from("{\"algorithms\":[");
        write_escaped(&mut s, self.algorithm_a);
        s.push(',');
        write_escaped(&mut s, self.algorithm_b);
        s.push_str("],\"costs\":[");
        write_f64(&mut s, self.costs.0);
        s.push(',');
        write_f64(&mut s, self.costs.1);
        s.push_str("],\"plans\":[");
        write_escaped(&mut s, &self.plans.0);
        s.push(',');
        write_escaped(&mut s, &self.plans.1);
        let _ = write!(
            s,
            "],\"same_plan\":{},\"shared_sets\":{},\"divergences\":[",
            self.same_plan, self.shared_sets
        );
        for (i, d) in self.divergences.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"set\":");
            write_set_json(&mut s, d.set, name_of);
            let _ = write!(s, ",\"bits\":{}", d.set);
            s.push_str(",\"kind\":");
            write_escaped(
                &mut s,
                match d.kind {
                    DivergenceKind::Split => "split",
                    DivergenceKind::Orientation => "orientation",
                },
            );
            for (label, rec) in [("a", &d.a), ("b", &d.b)] {
                if let Some(w) = rec.winner {
                    let _ = write!(s, ",\"{label}\":");
                    write_split_json(&mut s, &w, name_of);
                }
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}

/// Lines two explanations up decision-by-decision.
///
/// Only sets *both* runs recorded are compared — different algorithms
/// legitimately enumerate different portions of the search space (the
/// top-down search memoizes lazily, IDP re-plans blocks), so a set
/// known to one side only is not a divergence.
pub fn compare(a: &Explanation, b: &Explanation) -> ExplainDiff {
    let mut divergences = Vec::new();
    let mut shared = 0usize;
    for (&set, ra) in &a.records {
        let Some(rb) = b.records.get(&set) else {
            continue;
        };
        shared += 1;
        let (Some(wa), Some(wb)) = (ra.winner, rb.winner) else {
            continue;
        };
        let kind = if wa.left == wb.left && wa.right == wb.right {
            continue;
        } else if wa.left == wb.right && wa.right == wb.left {
            DivergenceKind::Orientation
        } else {
            DivergenceKind::Split
        };
        divergences.push(DecisionDivergence {
            set,
            kind,
            a: *ra,
            b: *rb,
        });
    }
    divergences.sort_by_key(|d| (d.set.count_ones(), d.set));
    ExplainDiff {
        algorithm_a: a.algorithm,
        algorithm_b: b.algorithm,
        costs: (a.result.cost, b.result.cost),
        plans: (a.result.tree.to_string(), b.result.tree.to_string()),
        same_plan: a.result.tree == b.result.tree,
        shared_sets: shared,
        divergences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinopt_cost::{workload, Cout};
    use joinopt_qgraph::GraphKind;
    use joinopt_telemetry::json::JsonValue;

    #[test]
    fn capture_explains_a_run_and_serializes_deterministically() {
        let w = workload::family_workload(GraphKind::Star, 6, 0);
        let e = Explanation::capture(&w.graph, &w.catalog, &Cout, Algorithm::DpCcp, 1).unwrap();
        assert_eq!(e.algorithm, "DPccp");
        assert_eq!(e.relations, 6);
        assert!(!e.records.is_empty());

        let text = e.render_text(&default_namer);
        assert!(text.contains("algorithm:   DPccp"), "{text}");
        assert!(text.contains("decision records (DP order):"), "{text}");

        let json = e.to_json(&default_namer);
        let v = JsonValue::parse(&json).unwrap_or_else(|err| panic!("{err}: {json}"));
        assert_eq!(v.get("algorithm").unwrap().as_str(), Some("DPccp"));
        assert_eq!(
            v.get("decisions").unwrap().as_array().unwrap().len(),
            e.records.len()
        );
        // Byte-equal on a second capture: the document is stable.
        let again = Explanation::capture(&w.graph, &w.catalog, &Cout, Algorithm::DpCcp, 1).unwrap();
        assert_eq!(json, again.to_json(&default_namer));

        let dot = e.render_dot(&default_namer);
        assert!(dot.starts_with("digraph plan {"), "{dot}");
    }

    #[test]
    fn identical_runs_compare_clean() {
        let w = workload::family_workload(GraphKind::Chain, 6, 1);
        let a = Explanation::capture(&w.graph, &w.catalog, &Cout, Algorithm::DpSize, 1).unwrap();
        let b = Explanation::capture(&w.graph, &w.catalog, &Cout, Algorithm::DpSize, 1).unwrap();
        let diff = compare(&a, &b);
        assert!(diff.same_plan);
        assert!(diff.divergences.is_empty());
        assert_eq!(diff.first_divergence().map(|d| d.set), None);
        assert!(diff.render_text().contains("no divergent decisions"));
    }

    #[test]
    fn tie_rich_instances_attribute_the_first_divergent_decision() {
        // All-equal cardinalities and selectivities: every split of
        // every set ties, so plan choice is pure enumeration order and
        // algorithms legitimately part ways.
        let mut src = String::new();
        for i in 0..6 {
            src.push_str(&format!("relation R{i} 1000\n"));
        }
        for i in 0..5 {
            src.push_str(&format!("join R{i} R{} 0.1\n", i + 1));
        }
        let q = joinopt_query::parse(&src).unwrap();
        let g = q.graph().unwrap();
        let a = Explanation::capture(g, &q.catalog, &Cout, Algorithm::DpSize, 1).unwrap();
        let b = Explanation::capture(g, &q.catalog, &Cout, Algorithm::DpCcp, 1).unwrap();
        assert!((a.result.cost - b.result.cost).abs() <= 1e-9 * a.result.cost);
        let diff = compare(&a, &b);
        if let Some(d) = diff.first_divergence() {
            // The first divergence must be minimal: no smaller shared
            // set diverges.
            for other in &diff.divergences {
                assert!(other.set.count_ones() >= d.set.count_ones());
            }
            // On an all-ties instance the winners cost the same.
            let (wa, wb) = (d.a.winner.unwrap(), d.b.winner.unwrap());
            assert_eq!(wa.cost.to_bits(), wb.cost.to_bits());
            let text = diff.render_text();
            assert!(text.contains("first divergent decision"), "{text}");
            assert!(text.contains("tie broken by enumeration order"), "{text}");
        } else {
            // If the two algorithms happened to agree everywhere the
            // plans must actually be identical.
            assert!(diff.same_plan);
        }
    }
}
