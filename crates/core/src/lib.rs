//! Dynamic-programming join ordering: DPsize, DPsub and DPccp.
//!
//! This crate implements the three algorithms of Moerkotte & Neumann,
//! *"Analysis of Two Existing and One New Dynamic Programming Algorithm
//! for the Generation of Optimal Bushy Join Trees without Cross
//! Products"* (VLDB 2006), together with the instrumentation the paper
//! uses to analyze them:
//!
//! * [`DpSize`] — size-driven enumeration (Fig. 1), including the
//!   `s₁ = s₂` optimization the paper's counter formulas assume;
//!   [`DpSizeNaive`] is the literal pseudocode for ablation studies;
//! * [`DpSub`] — subset-driven enumeration (Fig. 2) with the `*`
//!   connectedness pre-check; [`DpSubUnfiltered`] omits the pre-check,
//!   and [`DpSubCrossProducts`] is the Vance/Maier original that
//!   considers cross products;
//! * [`DpCcp`] — the paper's new algorithm (Fig. 4), driven by the
//!   csg-cmp-pair enumeration of [`joinopt_qgraph::csg`]; its
//!   `InnerCounter` equals the Ono/Lohman lower bound by construction;
//! * [`Counters`] — `InnerCounter`, `CsgCmpPairCounter` and
//!   `OnoLohmanCounter`, maintained with exactly the semantics of the
//!   paper's pseudocode so Figure 3 can be reproduced bit-for-bit;
//! * [`formulas`] — closed forms for the counters (Sections 2.1–2.2,
//!   with the published typos corrected) plus profile-based predictions
//!   that work for arbitrary query graphs;
//! * [`Optimizer`] / [`Algorithm`] — a façade with an `Auto` mode that
//!   adapts to the query graph *and* to the machine's parallelism (the
//!   paper's concluding recommendation, extended);
//! * [`OptimizeRequest`] — the full-control session API: algorithm,
//!   cost model, thread count, time/cost/memory budgets, cooperative
//!   cancellation and telemetry in one builder, with pooled
//!   allocations via [`Session`], a parallel level-synchronous engine
//!   for the DPsub family ([`parallel`]), and an opt-in degradation
//!   ladder (exact → IDP → greedy) that turns budget trips into
//!   cheaper plans instead of errors ([`BudgetAction::Degrade`]);
//! * [`exhaustive`] — an independent top-down oracle used by the test
//!   suite, and [`greedy`] — a GOO baseline for plan-quality context;
//! * [`DpConv`] — the subset-convolution formulation of the DP over the
//!   popcount-ranked lattice (Stoian & Kipf, arXiv 2409.08013) for
//!   `C_out`-shaped cost models, backed by the fast zeta/Möbius
//!   [`transform`] module.
//!
//! # Example
//!
//! ```
//! use joinopt_core::{DpCcp, JoinOrderer};
//! use joinopt_cost::{workload, Cout};
//! use joinopt_qgraph::GraphKind;
//!
//! let w = workload::family_workload(GraphKind::Star, 7, 42);
//! let result = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
//! println!("{}", result.tree.explain());
//! // DPccp's InnerCounter equals the number of csg-cmp-pairs:
//! assert_eq!(result.counters.inner, result.counters.ono_lohman);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod annealing;
mod cancel;
mod counters;
mod degrade;
mod dpccp;
mod dpconv;
mod dphyp;
mod dpsize;
mod dpsub;
mod driver;
mod error;
pub mod exhaustive;
pub mod explain;
pub mod failpoint;
pub mod formulas;
pub mod greedy;
mod idp;
mod ikkbz;
mod leftdeep;
mod optimizer;
pub mod parallel;
mod request;
mod result;
pub mod table;
mod topdown;
pub mod transform;

pub use annealing::SimulatedAnnealing;
pub use cancel::{CancelFlag, CancellationToken};
pub use counters::Counters;
pub use degrade::{BudgetAction, DegradationInfo, DegradationRung, TripKind};
pub use dpccp::DpCcp;
pub use dpconv::DpConv;
pub use dphyp::DpHyp;
pub use dpsize::{DpSize, DpSizeNaive};
pub use dpsub::{DpSub, DpSubCrossProducts, DpSubUnfiltered};
pub use error::OptimizeError;
pub use idp::Idp;
pub use ikkbz::IkkBz;
pub use leftdeep::DpSizeLeftDeep;
pub use optimizer::{Algorithm, Optimizer};
pub use parallel::Session;
pub use request::{OptimizeOutcome, OptimizeRequest};
pub use result::{DpResult, JoinOrderer};
pub use topdown::TopDown;
