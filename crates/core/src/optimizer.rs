//! The [`Optimizer`] façade and adaptive algorithm selection.

use joinopt_cost::{Catalog, CostModel, Cout};
use joinopt_qgraph::QueryGraph;
use joinopt_telemetry::{NoopObserver, Observer};

use crate::annealing::SimulatedAnnealing;
use crate::dpccp::DpCcp;
use crate::dpconv::DpConv;
use crate::dpsize::{DpSize, DpSizeNaive};
use crate::dpsub::{DpSub, DpSubCrossProducts, DpSubUnfiltered};
use crate::error::OptimizeError;
use crate::greedy::Goo;
use crate::idp::Idp;
use crate::leftdeep::DpSizeLeftDeep;
use crate::result::{DpResult, JoinOrderer};
use crate::topdown::TopDown;

/// Selects which join-ordering algorithm runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Algorithm {
    /// Size-driven DP (optimized variant).
    DpSize,
    /// Literal Fig. 1 pseudocode (ablation).
    DpSizeNaive,
    /// Subset-driven DP with the `*` pre-check.
    DpSub,
    /// Subset-driven DP without the pre-check (ablation).
    DpSubUnfiltered,
    /// Vance/Maier with cross products.
    DpSubCrossProducts,
    /// csg-cmp-pair driven DP (the paper's new algorithm).
    DpCcp,
    /// Subset-convolution DP over the popcount-ranked lattice (DPconv);
    /// exact, but only for `C_out`-shaped cost models.
    DpConv,
    /// Size-driven DP restricted to left-deep trees (Selinger space).
    DpSizeLeftDeep,
    /// Iterative DP (IDP-1, Kossmann & Stocker): near-optimal plans for
    /// queries too large for exact DP.
    Idp,
    /// Seeded simulated annealing over bushy trees (randomized baseline).
    SimulatedAnnealing,
    /// Top-down memoized partitioning with branch-and-bound pruning.
    TopDown,
    /// Greedy Operator Ordering (non-optimal baseline).
    Goo,
    /// Adapt to the query graph (see [`Algorithm::select_auto`]).
    #[default]
    Auto,
}

impl Algorithm {
    /// All concrete (non-`Auto`) algorithms.
    pub const CONCRETE: [Algorithm; 12] = [
        Algorithm::DpSize,
        Algorithm::DpSizeNaive,
        Algorithm::DpSub,
        Algorithm::DpSubUnfiltered,
        Algorithm::DpSubCrossProducts,
        Algorithm::DpCcp,
        Algorithm::DpConv,
        Algorithm::TopDown,
        Algorithm::DpSizeLeftDeep,
        Algorithm::Idp,
        Algorithm::SimulatedAnnealing,
        Algorithm::Goo,
    ];

    /// Smallest query size at which `Auto` prefers [`DpConv`] over the
    /// DPsub/DPccp pair on dense `C_out` queries.
    ///
    /// Measured on the `joinopt perf` clique matrix: DPconv and DPsub
    /// relax the same `Θ(3ⁿ)` candidate space on a clique, but DPconv's
    /// per-*set* cardinality term and witness-only table make its inner
    /// loop three array reads and one compare, with no hash-table or
    /// per-split estimator work — it wins at *every* measured clique
    /// size (2–4× from n = 4 up), so this floor is not a performance
    /// crossover. Below it every exact algorithm finishes in tens of
    /// microseconds and `Auto` keeps the longest-validated DPsub; from
    /// 12 relations the absolute gap turns material (milliseconds) and
    /// the lighter loop is worth the engine switch (see
    /// `docs/ALGORITHMS.md` §7 for the measured data).
    pub const DPCONV_MIN_RELATIONS: usize = 12;

    /// Resolves `Auto` for a given graph, assuming this machine's
    /// [`std::thread::available_parallelism`].
    ///
    /// See [`Algorithm::select_auto_with_parallelism`] for the policy.
    pub fn select_auto(g: &QueryGraph) -> Algorithm {
        Algorithm::select_auto_with_parallelism(g, crate::request::available_parallelism())
    }

    /// Resolves `Auto` for a given graph and `threads` available worker
    /// threads.
    ///
    /// The paper's evaluation shows DPccp is the best or near-best choice
    /// everywhere; its only (bounded, ≤ 30 %) loss is against DPsub on
    /// very dense graphs, where the subset enumeration's trivial inner
    /// loop beats the more complex csg machinery. `Auto` therefore picks
    /// DPsub when the graph is (near-)complete and DPccp otherwise.
    ///
    /// Parallelism shifts the break-even point: DPsub has a parallel
    /// level-synchronous path (see [`crate::parallel`]) while DPccp's
    /// csg-cmp-pair traversal does not, so spare worker threads buy back
    /// DPsub's wasted inner-loop iterations on graphs that are dense but
    /// not complete. The density threshold (fraction of all possible
    /// edges present) is therefore:
    ///
    /// | threads | threshold |
    /// |--------:|----------:|
    /// | 1       | 90 %      |
    /// | 2–3     | 80 %      |
    /// | ≥ 4     | 70 %      |
    ///
    /// Queries too large for DPsub's direct-addressed tables
    /// (`n >` [`crate::table::DenseDpTable::MAX_RELATIONS`]) always
    /// resolve to DPccp — at that size DPsub's `Θ(3ⁿ)` enumeration is
    /// hopeless no matter how many threads are available.
    pub fn select_auto_with_parallelism(g: &QueryGraph, threads: usize) -> Algorithm {
        let n = g.num_relations();
        if (2..=crate::parallel::MAX_ENGINE_RELATIONS).contains(&n) {
            let max_edges = n * (n - 1) / 2;
            let threshold_pct = match threads {
                0 | 1 => 90,
                2 | 3 => 80,
                _ => 70,
            };
            if 100 * g.num_edges() >= threshold_pct * max_edges {
                return Algorithm::DpSub;
            }
        }
        Algorithm::DpCcp
    }

    /// Resolves `Auto` for a given graph, thread count *and* cost model
    /// — the resolution the request layer uses.
    ///
    /// Extends [`Algorithm::select_auto_with_parallelism`] with the one
    /// choice that depends on the cost model: on dense graphs of
    /// [`Algorithm::DPCONV_MIN_RELATIONS`] or more relations where the
    /// model is `C_out`-shaped ([`CostModel::is_cout_shaped`]), the
    /// subset-convolution engine [`DpConv`] replaces the DPsub/DPccp
    /// pair. The guard on the model is load-bearing: DPconv refuses
    /// non-`C_out` models with a typed error, so `Auto` must never route
    /// a `HashJoin`-costed query to it.
    pub fn select_auto_with_model(
        g: &QueryGraph,
        threads: usize,
        model: &dyn CostModel,
    ) -> Algorithm {
        let picked = Algorithm::select_auto_with_parallelism(g, threads);
        if picked == Algorithm::DpSub
            && g.num_relations() >= Algorithm::DPCONV_MIN_RELATIONS
            && model.is_cout_shaped()
        {
            return Algorithm::DpConv;
        }
        picked
    }

    /// The underlying [`JoinOrderer`] (after `Auto` resolution).
    pub fn orderer(self, g: &QueryGraph) -> &'static dyn JoinOrderer {
        match self {
            Algorithm::DpSize => &DpSize,
            Algorithm::DpSizeNaive => &DpSizeNaive,
            Algorithm::DpSub => &DpSub,
            Algorithm::DpSubUnfiltered => &DpSubUnfiltered,
            Algorithm::DpSubCrossProducts => &DpSubCrossProducts,
            Algorithm::DpCcp => &DpCcp,
            Algorithm::DpConv => &DpConv,
            Algorithm::DpSizeLeftDeep => &DpSizeLeftDeep,
            Algorithm::Idp => {
                const DEFAULT_IDP: Idp = Idp::with_block_size(10);
                &DEFAULT_IDP
            }
            Algorithm::SimulatedAnnealing => {
                const DEFAULT_SA: SimulatedAnnealing = SimulatedAnnealing {
                    iterations: 20_000,
                    initial_temperature: 0.5,
                    cooling: 0.9995,
                    seed: 2006,
                };
                &DEFAULT_SA
            }
            Algorithm::TopDown => {
                const DEFAULT_TD: TopDown = TopDown { pruning: true };
                &DEFAULT_TD
            }
            Algorithm::Goo => &Goo,
            Algorithm::Auto => Algorithm::select_auto(g).orderer(g),
        }
    }

    /// Parses an algorithm name (case-insensitive; the names of
    /// [`JoinOrderer::name`] plus `"auto"`).
    pub fn parse(s: &str) -> Option<Algorithm> {
        match s.to_ascii_lowercase().as_str() {
            "dpsize" => Some(Algorithm::DpSize),
            "dpsize-naive" => Some(Algorithm::DpSizeNaive),
            "dpsub" => Some(Algorithm::DpSub),
            "dpsub-nofilter" => Some(Algorithm::DpSubUnfiltered),
            "dpsub-cp" => Some(Algorithm::DpSubCrossProducts),
            "dpccp" => Some(Algorithm::DpCcp),
            "dpconv" => Some(Algorithm::DpConv),
            "dpsize-leftdeep" => Some(Algorithm::DpSizeLeftDeep),
            "idp" => Some(Algorithm::Idp),
            "simulatedannealing" | "sa" => Some(Algorithm::SimulatedAnnealing),
            "topdown" => Some(Algorithm::TopDown),
            "goo" => Some(Algorithm::Goo),
            "auto" => Some(Algorithm::Auto),
            _ => None,
        }
    }
}

/// High-level entry point: pick an algorithm (or let `Auto` adapt) and a
/// cost model, then optimize queries.
///
/// ```
/// use joinopt_core::Optimizer;
/// use joinopt_cost::workload;
/// use joinopt_qgraph::GraphKind;
///
/// let w = workload::family_workload(GraphKind::Chain, 6, 0);
/// let result = Optimizer::new().optimize(&w.graph, &w.catalog).unwrap();
/// assert_eq!(result.tree.num_relations(), 6);
/// ```
pub struct Optimizer {
    algorithm: Algorithm,
    model: Box<dyn CostModel>,
}

impl Default for Optimizer {
    fn default() -> Self {
        Optimizer::new()
    }
}

impl Optimizer {
    /// An optimizer with `Auto` algorithm selection, the `C_out`
    /// cost model and automatic thread-count selection.
    pub fn new() -> Optimizer {
        Optimizer {
            algorithm: Algorithm::Auto,
            model: Box::new(Cout),
        }
    }

    /// Chooses a specific algorithm.
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Optimizer {
        self.algorithm = algorithm;
        self
    }

    /// Chooses a cost model.
    #[must_use]
    pub fn with_cost_model(mut self, model: impl CostModel + 'static) -> Optimizer {
        self.model = Box::new(model);
        self
    }

    /// The configured algorithm (possibly `Auto`).
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Optimizes one query.
    ///
    /// Thin forward to [`OptimizeRequest`](crate::OptimizeRequest) —
    /// equivalent to building a request with this optimizer's algorithm,
    /// cost model and thread count, then discarding the execution
    /// metadata of its [`OptimizeOutcome`](crate::OptimizeOutcome).
    ///
    /// # Errors
    ///
    /// Propagates the underlying algorithm's validation errors.
    pub fn optimize(&self, g: &QueryGraph, catalog: &Catalog) -> Result<DpResult, OptimizeError> {
        self.optimize_observed(g, catalog, &NoopObserver)
    }

    /// [`Optimizer::optimize`] with telemetry: the resolved algorithm
    /// reports phase spans, DP-level progress and table/arena statistics
    /// to `obs` (see [`joinopt_telemetry::Event`] for the vocabulary).
    ///
    /// # Errors
    ///
    /// Propagates the underlying algorithm's validation errors.
    pub fn optimize_observed(
        &self,
        g: &QueryGraph,
        catalog: &Catalog,
        obs: &dyn Observer,
    ) -> Result<DpResult, OptimizeError> {
        crate::request::OptimizeRequest::new(g, catalog)
            .with_algorithm(self.algorithm)
            .with_cost_model(self.model.as_ref())
            .with_observer(obs)
            .run()
            .map(crate::request::OptimizeOutcome::into_result)
    }

    /// Optimizes a batch of queries, spreading them across worker
    /// threads for throughput.
    ///
    /// Each worker owns a pooled [`crate::Session`] and claims queries
    /// from a shared queue, so a batch of mixed sizes load-balances and
    /// every query after a worker's first reuses its table and arena
    /// allocations. Individual queries run with one intra-query thread —
    /// for a full batch, query-level parallelism dominates level-level
    /// parallelism and avoids oversubscription. Results come back in
    /// input order, each independently `Ok` or `Err` (one invalid query
    /// does not poison the batch). A query that *panics* is likewise
    /// isolated: the panic is caught, reported as
    /// [`OptimizeError::Internal`] for that query only, and the worker
    /// continues with a fresh session (the half-mutated one is
    /// discarded). Telemetry is not threaded through this entry point;
    /// use [`Optimizer::optimize_batch_observed`] with a `Sync` observer
    /// (e.g. [`joinopt_telemetry::RegistryObserver`] or a
    /// [`joinopt_telemetry::TraceWriter`]) to watch a batch.
    pub fn optimize_batch(
        &self,
        queries: &[(&QueryGraph, &Catalog)],
    ) -> Vec<Result<DpResult, OptimizeError>> {
        self.optimize_batch_observed(queries, &NoopObserver)
    }

    /// Like [`Optimizer::optimize_batch`], but every per-query run
    /// reports its events to `obs`.
    ///
    /// The observer must be `Sync`: batch workers emit concurrently,
    /// each from its own thread for the whole of a query's run, so
    /// per-thread event streams stay internally ordered and
    /// attributable (trace lines carry
    /// [`joinopt_telemetry::current_thread_id`]).
    pub fn optimize_batch_observed(
        &self,
        queries: &[(&QueryGraph, &Catalog)],
        obs: &(dyn Observer + Sync),
    ) -> Vec<Result<DpResult, OptimizeError>> {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::mpsc;

        let workers = crate::request::available_parallelism()
            .min(queries.len())
            .max(1);

        // `None` means "allocate a fresh session before the next query" —
        // the state after a panic tore through a pooled session.
        let run_one = |session: &mut Option<crate::Session>,
                       (g, catalog): (&QueryGraph, &Catalog)|
         -> Result<DpResult, OptimizeError> {
            let mut s = session.take().unwrap_or_default();
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                crate::request::OptimizeRequest::new(g, catalog)
                    .with_algorithm(self.algorithm)
                    .with_cost_model(self.model.as_ref())
                    .with_threads(1)
                    .with_observer(obs)
                    .run_in(&mut s)
                    .map(crate::request::OptimizeOutcome::into_result)
            }));
            match outcome {
                Ok(r) => {
                    *session = Some(s);
                    r
                }
                Err(payload) => Err(OptimizeError::Internal(panic_message(payload.as_ref()))),
            }
        };

        if workers == 1 {
            let mut session = None;
            return queries.iter().map(|&q| run_one(&mut session, q)).collect();
        }

        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let run_one = &run_one;
                scope.spawn(move || {
                    let mut session = None;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&q) = queries.get(i) else { break };
                        if tx.send((i, run_one(&mut session, q))).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        drop(tx);
        let mut results: Vec<Option<Result<DpResult, OptimizeError>>> =
            (0..queries.len()).map(|_| None).collect();
        for (i, r) in rx {
            results[i] = Some(r);
        }
        results
            .into_iter()
            .map(|r| {
                r.unwrap_or_else(|| {
                    Err(OptimizeError::Internal(
                        "query was never claimed by a batch worker".into(),
                    ))
                })
            })
            .collect()
    }
}

/// Renders a caught panic payload (the `&str`/`String` cases the panic
/// machinery produces for message panics) for [`OptimizeError::Internal`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("query panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("query panicked: {s}")
    } else {
        "query panicked".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinopt_cost::{workload, HashJoin};
    use joinopt_qgraph::{generators, GraphKind};

    #[test]
    fn auto_picks_dpsub_on_cliques_and_dpccp_elsewhere() {
        assert_eq!(
            Algorithm::select_auto(&generators::clique(8).unwrap()),
            Algorithm::DpSub
        );
        for kind in [GraphKind::Chain, GraphKind::Cycle, GraphKind::Star] {
            assert_eq!(
                Algorithm::select_auto(&generators::generate(kind, 8)),
                Algorithm::DpCcp,
                "{kind}"
            );
        }
        // Near-clique (one edge removed) still counts as dense.
        let mut h = QueryGraph::new(6).unwrap();
        for i in 0..6 {
            for j in i + 1..6 {
                if !(i == 0 && j == 5) {
                    h.add_edge(i, j).unwrap();
                }
            }
        }
        assert_eq!(Algorithm::select_auto(&h), Algorithm::DpSub);
    }

    #[test]
    fn auto_accounts_for_available_parallelism() {
        // n=8 graphs at controlled densities (28 possible edges). Edges
        // are added in lexicographic pair order, so every graph with
        // ≥ 7 edges contains the star around relation 0 and is connected.
        fn graph_with_edges(edges: usize) -> QueryGraph {
            let mut g = QueryGraph::new(8).unwrap();
            let mut added = 0;
            'outer: for i in 0..8 {
                for j in i + 1..8 {
                    if added == edges {
                        break 'outer;
                    }
                    g.add_edge(i, j).unwrap();
                    added += 1;
                }
            }
            assert_eq!(g.num_edges(), edges);
            g
        }
        use Algorithm::{DpCcp as C, DpSub as S};
        // (edges, expected algorithm at 1, 2, 3, 4 and 8 threads) — the
        // documented 90/80/70 % density thresholds.
        let table = [
            (14, [C, C, C, C, C]), // 50 %: sparse at any parallelism
            (20, [C, C, C, S, S]), // 71 %: worth DPsub only with ≥ 4 threads
            (23, [C, S, S, S, S]), // 82 %: 2 threads buy back the waste
            (26, [S, S, S, S, S]), // 93 %: near-clique, DPsub everywhere
        ];
        for (edges, expected) in table {
            let g = graph_with_edges(edges);
            for (threads, want) in [1, 2, 3, 4, 8].into_iter().zip(expected) {
                assert_eq!(
                    Algorithm::select_auto_with_parallelism(&g, threads),
                    want,
                    "edges={edges} threads={threads}"
                );
            }
        }
        // Beyond the dense-table cap DPsub has no parallel path: even a
        // clique resolves to DPccp regardless of thread count.
        let huge = generators::clique(crate::parallel::MAX_ENGINE_RELATIONS + 1).unwrap();
        assert_eq!(
            Algorithm::select_auto_with_parallelism(&huge, 64),
            Algorithm::DpCcp
        );
    }

    #[test]
    fn batch_matches_individual_runs_and_preserves_errors() {
        let workloads: Vec<_> = (0..6)
            .map(|seed| {
                workload::family_workload(GraphKind::ALL[seed % 4], 5 + seed % 3, seed as u64)
            })
            .collect();
        let opt = Optimizer::new();
        let mut queries: Vec<(&QueryGraph, &Catalog)> =
            workloads.iter().map(|w| (&w.graph, &w.catalog)).collect();
        // A disconnected graph mid-batch must fail alone.
        let disc = QueryGraph::new(3).unwrap();
        let disc_cat = Catalog::new(&disc);
        queries.insert(3, (&disc, &disc_cat));
        let results = opt.optimize_batch(&queries);
        assert_eq!(results.len(), 7);
        assert!(results[3].is_err(), "disconnected query fails in place");
        for (i, w) in workloads.iter().enumerate() {
            let idx = if i < 3 { i } else { i + 1 };
            let batch = results[idx].as_ref().unwrap();
            let single = opt.optimize(&w.graph, &w.catalog).unwrap();
            assert_eq!(batch.cost.to_bits(), single.cost.to_bits(), "query {i}");
            assert_eq!(batch.tree, single.tree, "query {i}");
        }
        // Empty batches are fine.
        assert!(opt.optimize_batch(&[]).is_empty());
    }

    #[test]
    fn auto_routes_dense_cout_queries_to_dpconv_but_guards_the_model() {
        let big = generators::clique(Algorithm::DPCONV_MIN_RELATIONS).unwrap();
        // C_out-shaped model on a crossover-sized clique: DPconv.
        assert_eq!(
            Algorithm::select_auto_with_model(&big, 1, &Cout),
            Algorithm::DpConv
        );
        // The model guard: DPconv would refuse HashJoin with a typed
        // error, so Auto must fall back to DPsub on the same graph.
        assert_eq!(
            Algorithm::select_auto_with_model(&big, 1, &HashJoin),
            Algorithm::DpSub
        );
        // Below the measured crossover the DPsub choice stands even for
        // C_out, and sparse graphs stay with DPccp at any size.
        let small = generators::clique(Algorithm::DPCONV_MIN_RELATIONS - 1).unwrap();
        assert_eq!(
            Algorithm::select_auto_with_model(&small, 1, &Cout),
            Algorithm::DpSub
        );
        let sparse = generators::chain(Algorithm::DPCONV_MIN_RELATIONS + 2).unwrap();
        assert_eq!(
            Algorithm::select_auto_with_model(&sparse, 1, &Cout),
            Algorithm::DpCcp
        );
        // Past the dense-table cap nothing dense-table-backed is viable.
        let huge = generators::clique(crate::parallel::MAX_ENGINE_RELATIONS + 1).unwrap();
        assert_eq!(
            Algorithm::select_auto_with_model(&huge, 1, &Cout),
            Algorithm::DpCcp
        );
    }

    #[test]
    fn auto_handles_tiny_graphs() {
        assert_eq!(
            Algorithm::select_auto(&generators::chain(1).unwrap()),
            Algorithm::DpCcp
        );
        // n=2 chain IS the 2-clique.
        assert_eq!(
            Algorithm::select_auto(&generators::chain(2).unwrap()),
            Algorithm::DpSub
        );
    }

    #[test]
    fn facade_matches_direct_invocation() {
        let w = workload::family_workload(GraphKind::Star, 7, 9);
        let direct = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        let facade = Optimizer::new()
            .with_algorithm(Algorithm::DpCcp)
            .optimize(&w.graph, &w.catalog)
            .unwrap();
        assert_eq!(direct.cost, facade.cost);
        assert_eq!(direct.counters, facade.counters);
    }

    #[test]
    fn facade_cost_model_is_respected() {
        let w = workload::family_workload(GraphKind::Chain, 6, 2);
        let cout = Optimizer::new().optimize(&w.graph, &w.catalog).unwrap();
        let hash = Optimizer::new()
            .with_cost_model(HashJoin)
            .optimize(&w.graph, &w.catalog)
            .unwrap();
        assert_ne!(cout.cost, hash.cost);
    }

    #[test]
    fn parse_roundtrip() {
        for alg in Algorithm::CONCRETE {
            let g = generators::chain(4).unwrap();
            let name = alg.orderer(&g).name();
            assert_eq!(Algorithm::parse(name), Some(alg), "{name}");
        }
        assert_eq!(Algorithm::parse("AUTO"), Some(Algorithm::Auto));
        assert_eq!(Algorithm::parse("simulated-annealing"), None);
    }

    #[test]
    fn all_concrete_algorithms_agree_on_optimal_cost() {
        // Except GOO (heuristic), every algorithm is exact; cross-product
        // DP can only be ≤.
        let w = workload::random_workload(7, 0.5, 33);
        let reference = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap().cost;
        for alg in [
            Algorithm::DpSize,
            Algorithm::DpSizeNaive,
            Algorithm::DpSub,
            Algorithm::DpSubUnfiltered,
        ] {
            let r = alg
                .orderer(&w.graph)
                .optimize(&w.graph, &w.catalog, &Cout)
                .unwrap();
            assert!(
                (r.cost - reference).abs() <= 1e-9 * reference.max(1.0),
                "{alg:?}: {} vs {}",
                r.cost,
                reference
            );
        }
        let cp = Algorithm::DpSubCrossProducts
            .orderer(&w.graph)
            .optimize(&w.graph, &w.catalog, &Cout)
            .unwrap();
        assert!(cp.cost <= reference + 1e-9);
        let goo = Algorithm::Goo
            .orderer(&w.graph)
            .optimize(&w.graph, &w.catalog, &Cout)
            .unwrap();
        assert!(goo.cost >= reference - 1e-9);
    }
}
