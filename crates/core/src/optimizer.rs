//! The [`Optimizer`] façade and adaptive algorithm selection.

use joinopt_cost::{Catalog, CostModel, Cout};
use joinopt_qgraph::QueryGraph;
use joinopt_telemetry::{NoopObserver, Observer};

use crate::annealing::SimulatedAnnealing;
use crate::dpccp::DpCcp;
use crate::dpsize::{DpSize, DpSizeNaive};
use crate::dpsub::{DpSub, DpSubCrossProducts, DpSubUnfiltered};
use crate::error::OptimizeError;
use crate::greedy::Goo;
use crate::idp::Idp;
use crate::leftdeep::DpSizeLeftDeep;
use crate::result::{DpResult, JoinOrderer};
use crate::topdown::TopDown;

/// Selects which join-ordering algorithm runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Algorithm {
    /// Size-driven DP (optimized variant).
    DpSize,
    /// Literal Fig. 1 pseudocode (ablation).
    DpSizeNaive,
    /// Subset-driven DP with the `*` pre-check.
    DpSub,
    /// Subset-driven DP without the pre-check (ablation).
    DpSubUnfiltered,
    /// Vance/Maier with cross products.
    DpSubCrossProducts,
    /// csg-cmp-pair driven DP (the paper's new algorithm).
    DpCcp,
    /// Size-driven DP restricted to left-deep trees (Selinger space).
    DpSizeLeftDeep,
    /// Iterative DP (IDP-1, Kossmann & Stocker): near-optimal plans for
    /// queries too large for exact DP.
    Idp,
    /// Seeded simulated annealing over bushy trees (randomized baseline).
    SimulatedAnnealing,
    /// Top-down memoized partitioning with branch-and-bound pruning.
    TopDown,
    /// Greedy Operator Ordering (non-optimal baseline).
    Goo,
    /// Adapt to the query graph (see [`Algorithm::select_auto`]).
    #[default]
    Auto,
}

impl Algorithm {
    /// All concrete (non-`Auto`) algorithms.
    pub const CONCRETE: [Algorithm; 11] = [
        Algorithm::DpSize,
        Algorithm::DpSizeNaive,
        Algorithm::DpSub,
        Algorithm::DpSubUnfiltered,
        Algorithm::DpSubCrossProducts,
        Algorithm::DpCcp,
        Algorithm::TopDown,
        Algorithm::DpSizeLeftDeep,
        Algorithm::Idp,
        Algorithm::SimulatedAnnealing,
        Algorithm::Goo,
    ];

    /// Resolves `Auto` for a given graph.
    ///
    /// The paper's evaluation shows DPccp is the best or near-best choice
    /// everywhere; its only (bounded, ≤ 30 %) loss is against DPsub on
    /// very dense graphs, where the subset enumeration's trivial inner
    /// loop beats the more complex csg machinery. `Auto` therefore picks
    /// DPsub when the graph is (near-)complete and DPccp otherwise.
    pub fn select_auto(g: &QueryGraph) -> Algorithm {
        let n = g.num_relations();
        if n >= 2 {
            let max_edges = n * (n - 1) / 2;
            // "near-clique": ≥ 90 % of all possible predicates present.
            if 10 * g.num_edges() >= 9 * max_edges {
                return Algorithm::DpSub;
            }
        }
        Algorithm::DpCcp
    }

    /// The underlying [`JoinOrderer`] (after `Auto` resolution).
    pub fn orderer(self, g: &QueryGraph) -> &'static dyn JoinOrderer {
        match self {
            Algorithm::DpSize => &DpSize,
            Algorithm::DpSizeNaive => &DpSizeNaive,
            Algorithm::DpSub => &DpSub,
            Algorithm::DpSubUnfiltered => &DpSubUnfiltered,
            Algorithm::DpSubCrossProducts => &DpSubCrossProducts,
            Algorithm::DpCcp => &DpCcp,
            Algorithm::DpSizeLeftDeep => &DpSizeLeftDeep,
            Algorithm::Idp => {
                const DEFAULT_IDP: Idp = Idp::with_block_size(10);
                &DEFAULT_IDP
            }
            Algorithm::SimulatedAnnealing => {
                const DEFAULT_SA: SimulatedAnnealing = SimulatedAnnealing {
                    iterations: 20_000,
                    initial_temperature: 0.5,
                    cooling: 0.9995,
                    seed: 2006,
                };
                &DEFAULT_SA
            }
            Algorithm::TopDown => {
                const DEFAULT_TD: TopDown = TopDown { pruning: true };
                &DEFAULT_TD
            }
            Algorithm::Goo => &Goo,
            Algorithm::Auto => Algorithm::select_auto(g).orderer(g),
        }
    }

    /// Parses an algorithm name (case-insensitive; the names of
    /// [`JoinOrderer::name`] plus `"auto"`).
    pub fn parse(s: &str) -> Option<Algorithm> {
        match s.to_ascii_lowercase().as_str() {
            "dpsize" => Some(Algorithm::DpSize),
            "dpsize-naive" => Some(Algorithm::DpSizeNaive),
            "dpsub" => Some(Algorithm::DpSub),
            "dpsub-nofilter" => Some(Algorithm::DpSubUnfiltered),
            "dpsub-cp" => Some(Algorithm::DpSubCrossProducts),
            "dpccp" => Some(Algorithm::DpCcp),
            "dpsize-leftdeep" => Some(Algorithm::DpSizeLeftDeep),
            "idp" => Some(Algorithm::Idp),
            "simulatedannealing" | "sa" => Some(Algorithm::SimulatedAnnealing),
            "topdown" => Some(Algorithm::TopDown),
            "goo" => Some(Algorithm::Goo),
            "auto" => Some(Algorithm::Auto),
            _ => None,
        }
    }
}

/// High-level entry point: pick an algorithm (or let `Auto` adapt) and a
/// cost model, then optimize queries.
///
/// ```
/// use joinopt_core::Optimizer;
/// use joinopt_cost::workload;
/// use joinopt_qgraph::GraphKind;
///
/// let w = workload::family_workload(GraphKind::Chain, 6, 0);
/// let result = Optimizer::new().optimize(&w.graph, &w.catalog).unwrap();
/// assert_eq!(result.tree.num_relations(), 6);
/// ```
pub struct Optimizer {
    algorithm: Algorithm,
    model: Box<dyn CostModel>,
}

impl Default for Optimizer {
    fn default() -> Self {
        Optimizer::new()
    }
}

impl Optimizer {
    /// An optimizer with `Auto` algorithm selection and the `C_out`
    /// cost model.
    pub fn new() -> Optimizer {
        Optimizer {
            algorithm: Algorithm::Auto,
            model: Box::new(Cout),
        }
    }

    /// Chooses a specific algorithm.
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Optimizer {
        self.algorithm = algorithm;
        self
    }

    /// Chooses a cost model.
    #[must_use]
    pub fn with_cost_model(mut self, model: impl CostModel + 'static) -> Optimizer {
        self.model = Box::new(model);
        self
    }

    /// The configured algorithm (possibly `Auto`).
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Optimizes one query.
    ///
    /// # Errors
    ///
    /// Propagates the underlying algorithm's validation errors.
    pub fn optimize(&self, g: &QueryGraph, catalog: &Catalog) -> Result<DpResult, OptimizeError> {
        self.optimize_observed(g, catalog, &NoopObserver)
    }

    /// [`Optimizer::optimize`] with telemetry: the resolved algorithm
    /// reports phase spans, DP-level progress and table/arena statistics
    /// to `obs` (see [`joinopt_telemetry::Event`] for the vocabulary).
    ///
    /// # Errors
    ///
    /// Propagates the underlying algorithm's validation errors.
    pub fn optimize_observed(
        &self,
        g: &QueryGraph,
        catalog: &Catalog,
        obs: &dyn Observer,
    ) -> Result<DpResult, OptimizeError> {
        self.algorithm
            .orderer(g)
            .optimize_observed(g, catalog, self.model.as_ref(), obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinopt_cost::{workload, HashJoin};
    use joinopt_qgraph::{generators, GraphKind};

    #[test]
    fn auto_picks_dpsub_on_cliques_and_dpccp_elsewhere() {
        assert_eq!(
            Algorithm::select_auto(&generators::clique(8).unwrap()),
            Algorithm::DpSub
        );
        for kind in [GraphKind::Chain, GraphKind::Cycle, GraphKind::Star] {
            assert_eq!(
                Algorithm::select_auto(&generators::generate(kind, 8)),
                Algorithm::DpCcp,
                "{kind}"
            );
        }
        // Near-clique (one edge removed) still counts as dense.
        let mut h = QueryGraph::new(6).unwrap();
        for i in 0..6 {
            for j in i + 1..6 {
                if !(i == 0 && j == 5) {
                    h.add_edge(i, j).unwrap();
                }
            }
        }
        assert_eq!(Algorithm::select_auto(&h), Algorithm::DpSub);
    }

    #[test]
    fn auto_handles_tiny_graphs() {
        assert_eq!(
            Algorithm::select_auto(&generators::chain(1).unwrap()),
            Algorithm::DpCcp
        );
        // n=2 chain IS the 2-clique.
        assert_eq!(
            Algorithm::select_auto(&generators::chain(2).unwrap()),
            Algorithm::DpSub
        );
    }

    #[test]
    fn facade_matches_direct_invocation() {
        let w = workload::family_workload(GraphKind::Star, 7, 9);
        let direct = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        let facade = Optimizer::new()
            .with_algorithm(Algorithm::DpCcp)
            .optimize(&w.graph, &w.catalog)
            .unwrap();
        assert_eq!(direct.cost, facade.cost);
        assert_eq!(direct.counters, facade.counters);
    }

    #[test]
    fn facade_cost_model_is_respected() {
        let w = workload::family_workload(GraphKind::Chain, 6, 2);
        let cout = Optimizer::new().optimize(&w.graph, &w.catalog).unwrap();
        let hash = Optimizer::new()
            .with_cost_model(HashJoin)
            .optimize(&w.graph, &w.catalog)
            .unwrap();
        assert_ne!(cout.cost, hash.cost);
    }

    #[test]
    fn parse_roundtrip() {
        for alg in Algorithm::CONCRETE {
            let g = generators::chain(4).unwrap();
            let name = alg.orderer(&g).name();
            assert_eq!(Algorithm::parse(name), Some(alg), "{name}");
        }
        assert_eq!(Algorithm::parse("AUTO"), Some(Algorithm::Auto));
        assert_eq!(Algorithm::parse("simulated-annealing"), None);
    }

    #[test]
    fn all_concrete_algorithms_agree_on_optimal_cost() {
        // Except GOO (heuristic), every algorithm is exact; cross-product
        // DP can only be ≤.
        let w = workload::random_workload(7, 0.5, 33);
        let reference = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap().cost;
        for alg in [
            Algorithm::DpSize,
            Algorithm::DpSizeNaive,
            Algorithm::DpSub,
            Algorithm::DpSubUnfiltered,
        ] {
            let r = alg
                .orderer(&w.graph)
                .optimize(&w.graph, &w.catalog, &Cout)
                .unwrap();
            assert!(
                (r.cost - reference).abs() <= 1e-9 * reference.max(1.0),
                "{alg:?}: {} vs {}",
                r.cost,
                reference
            );
        }
        let cp = Algorithm::DpSubCrossProducts
            .orderer(&w.graph)
            .optimize(&w.graph, &w.catalog, &Cout)
            .unwrap();
        assert!(cp.cost <= reference + 1e-9);
        let goo = Algorithm::Goo
            .orderer(&w.graph)
            .optimize(&w.graph, &w.catalog, &Cout)
            .unwrap();
        assert!(goo.cost >= reference - 1e-9);
    }
}
