//! Optimization results and the [`JoinOrderer`] interface.

use joinopt_cost::{Catalog, CostModel};
use joinopt_plan::JoinTree;
use joinopt_qgraph::QueryGraph;
use joinopt_telemetry::{NoopObserver, Observer};

use crate::cancel::CancellationToken;
use crate::counters::Counters;
use crate::error::OptimizeError;

/// The outcome of one optimizer run.
#[derive(Debug, Clone)]
pub struct DpResult {
    /// The optimal bushy join tree.
    pub tree: JoinTree,
    /// Total cost of `tree` under the cost model used.
    pub cost: f64,
    /// Estimated output cardinality of the full join.
    pub cardinality: f64,
    /// The paper's instrumentation counters.
    pub counters: Counters,
    /// Number of relation sets with a registered plan (DP table size).
    pub table_size: usize,
    /// Number of plan nodes materialized (scans + accepted joins).
    pub plans_built: usize,
}

/// A join-ordering algorithm: everything the benchmark harness and the
/// façade need to drive DPsize, DPsub, DPccp and their variants
/// uniformly.
pub trait JoinOrderer {
    /// Short algorithm name as used in the paper's figures
    /// (`"DPsize"`, `"DPsub"`, `"DPccp"`, …).
    fn name(&self) -> &'static str;

    /// Computes an optimal bushy join tree for `g` under `model`,
    /// reporting progress and statistics to `obs` and honouring the
    /// stop conditions of `ctl` (cancellation flag, deadline, memory
    /// budget) at whatever granularity the algorithm supports — the DP
    /// enumerators poll inside their inner loops.
    ///
    /// With a disabled observer ([`Observer::enabled`] returning
    /// `false`, e.g. [`NoopObserver`]) and an unlimited token,
    /// implementations must behave bit-identically to an
    /// uninstrumented run — same plan, cost, and counters. Failed runs
    /// may leave a `run_start` without a matching `run_end` in the
    /// event stream.
    ///
    /// # Errors
    ///
    /// Fails for empty or disconnected graphs (cross-product-free join
    /// trees only exist for connected query graphs) and for catalogs not
    /// matching `g`'s shape. [`crate::DpSubCrossProducts`] lifts the
    /// connectivity requirement. Additionally fails with the budget and
    /// cancellation errors of [`CancellationToken`] when `ctl` trips.
    fn optimize_controlled(
        &self,
        g: &QueryGraph,
        catalog: &Catalog,
        model: &dyn CostModel,
        obs: &dyn Observer,
        ctl: &CancellationToken,
    ) -> Result<DpResult, OptimizeError>;

    /// [`JoinOrderer::optimize_controlled`] with an unlimited token.
    fn optimize_observed(
        &self,
        g: &QueryGraph,
        catalog: &Catalog,
        model: &dyn CostModel,
        obs: &dyn Observer,
    ) -> Result<DpResult, OptimizeError> {
        self.optimize_controlled(g, catalog, model, obs, &CancellationToken::unlimited())
    }

    /// [`JoinOrderer::optimize_controlled`] without telemetry or stop
    /// conditions.
    fn optimize(
        &self,
        g: &QueryGraph,
        catalog: &Catalog,
        model: &dyn CostModel,
    ) -> Result<DpResult, OptimizeError> {
        self.optimize_controlled(
            g,
            catalog,
            model,
            &NoopObserver,
            &CancellationToken::unlimited(),
        )
    }
}
