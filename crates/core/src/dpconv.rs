//! DPconv: layered subset-convolution DP over the ranked lattice.
//!
//! For `C_out`-shaped cost models the Bellman recurrence of the
//! join-ordering DP is a min-plus subset convolution: because the cost
//! of a join is `|S| + cost(T) + cost(S \ T)` — a per-*set* term plus
//! the children — the table satisfies
//!
//! ```text
//! dp(S) = card(S) + min over valid splits T of (dp(T) + dp(S \ T))
//! ```
//!
//! with `dp({R}) = 0`, i.e. `dp = card ⊕ (dp ⊛ dp)` layer by layer on
//! the popcount-ranked lattice (DPconv; Stoian & Kipf, arXiv
//! 2409.08013). The cross-product-free mask falls out of graph
//! connectivity alone: for a connected `S`, a split `(T, S \ T)` with
//! both halves connected always has an edge across the cut (otherwise
//! `S` would be disconnected), so validity is exactly
//! `conn(T) ∧ conn(S \ T)` — precomputed once as a dense bitmap from
//! the existing connectivity machinery.
//!
//! Per rank layer `ℓ` the engine picks, deterministically from the
//! rank sizes alone, the cheaper of two relaxation kernels:
//!
//! * **half-subset** — per set `S`, enumerate the `2^(ℓ−1) − 1`
//!   submasks avoiding `lowest(S)` (each unordered split once); total
//!   `Θ(3^n)` but with a trivial array-indexed inner loop, best on
//!   dense graphs where most masks are connected anyway;
//! * **rank-pair lists** — convolve the connected-set lists of ranks
//!   `k` and `ℓ − k` (`Σ |ranks[k]| · |ranks[ℓ−k]|` candidates),
//!   polynomial on chains/stars/trees where connected sets are scarce.
//!
//! The exact `O(2^n · n²)` ranked transform of [`crate::transform`]
//! applies to *ring* subset convolution; over the `(min, +)` semiring
//! used for exact `f64` costs no sub-`3^n` method is known (the
//! integer-cost rounding scheme of the DPconv paper trades exactness
//! away), so the layered enumeration above is the honest exact
//! instantiation — and the ring transform independently cross-checks
//! the candidate-count accounting in the conformance oracle.
//!
//! Plan reconstruction never trusts the float min-plus alone: each
//! recorded witness split is re-validated against the DP table
//! (disjointness, connectivity of both halves, and re-derivation of
//! `dp(S)` within tolerance) before a join node is materialized, so a
//! corrupted witness surfaces as [`OptimizeError::Internal`] instead
//! of a silently wrong tree.

use joinopt_cost::{ensure_finite, CardinalityEstimator, Catalog, CostModel, PlanStats};
use joinopt_plan::{PlanArena, PlanId};
use joinopt_qgraph::QueryGraph;
use joinopt_relset::RelSet;
use joinopt_telemetry::{Event, Observer};

use crate::cancel::CancellationToken;
use crate::counters::Counters;
use crate::driver::Spans;
use crate::error::OptimizeError;
use crate::failpoint;
use crate::parallel::MAX_ENGINE_RELATIONS;
use crate::result::{DpResult, JoinOrderer};

/// Relative tolerance for re-deriving `dp(S)` from a witness split
/// during reconstruction. Loose against summation-order noise, tight
/// against genuine corruption (a wrong witness is off by whole
/// intermediate-result sizes).
const WITNESS_TOLERANCE: f64 = 1e-6;

/// Subset-convolution DP over the ranked lattice (exact, `C_out`-shaped
/// cost models only).
///
/// Capped at [`crate::table::DenseDpTable::MAX_RELATIONS`] relations by
/// its dense `2^n` tables; refuses non-`C_out`-shaped cost models with
/// [`OptimizeError::UnsupportedCostModel`] because the recurrence above
/// is only the join-ordering DP when the per-split cost term depends on
/// the union set alone.
#[derive(Debug, Clone, Copy, Default)]
pub struct DpConv;

impl JoinOrderer for DpConv {
    fn name(&self) -> &'static str {
        "DPconv"
    }

    fn optimize_controlled(
        &self,
        g: &QueryGraph,
        catalog: &Catalog,
        model: &dyn CostModel,
        obs: &dyn Observer,
        ctl: &CancellationToken,
    ) -> Result<DpResult, OptimizeError> {
        let mut scratch = DpConvScratch::default();
        run_pooled(g, catalog, model, obs, ctl, &mut scratch)
    }
}

/// Pooled dense state for DPconv runs, embedded in
/// [`crate::Session`] so repeated queries reuse the `2^n` tables.
#[derive(Debug, Default)]
pub(crate) struct DpConvScratch {
    /// `conn[S]`: the relation set with bitmask `S` is connected.
    conn: Vec<bool>,
    /// `card[S]`: estimated cardinality (filled for connected sets).
    card: Vec<f64>,
    /// `dp[S]`: optimal `C_out` cost (`∞` until relaxed).
    dp: Vec<f64>,
    /// `witness[S]`: one side of the split that achieved `dp[S]`.
    witness: Vec<u64>,
    /// Connected masks grouped by popcount, ascending numeric order.
    ranks: Vec<Vec<u64>>,
}

impl DpConvScratch {
    /// Bytes of dense storage currently allocated (capacities).
    pub fn bytes(&self) -> usize {
        self.conn.capacity() * std::mem::size_of::<bool>()
            + self.card.capacity() * std::mem::size_of::<f64>()
            + self.dp.capacity() * std::mem::size_of::<f64>()
            + self.witness.capacity() * std::mem::size_of::<u64>()
            + self
                .ranks
                .iter()
                .map(|r| r.capacity() * std::mem::size_of::<u64>())
                .sum::<usize>()
    }

    /// Resets for a query of `n` relations, keeping allocations.
    fn prepare(&mut self, n: usize) {
        let size = 1usize << n;
        self.conn.clear();
        self.conn.resize(size, false);
        self.card.clear();
        self.card.resize(size, 0.0);
        self.dp.clear();
        self.dp.resize(size, f64::INFINITY);
        self.witness.clear();
        self.witness.resize(size, 0);
        if self.ranks.len() < n + 1 {
            self.ranks.resize_with(n + 1, Vec::new);
        }
        for rank in &mut self.ranks {
            rank.clear();
        }
    }
}

/// One DPconv run inside pooled scratch (the [`crate::OptimizeRequest`]
/// session path; [`DpConv::optimize_controlled`] wraps this with a
/// one-shot scratch).
pub(crate) fn run_pooled(
    g: &QueryGraph,
    catalog: &Catalog,
    model: &dyn CostModel,
    obs: &dyn Observer,
    ctl: &CancellationToken,
    scratch: &mut DpConvScratch,
) -> Result<DpResult, OptimizeError> {
    let n = g.num_relations();
    let spans = Spans::start(obs, DpConv.name(), n);
    if n == 0 {
        return Err(OptimizeError::EmptyQuery);
    }
    if !model.is_cout_shaped() {
        return Err(OptimizeError::UnsupportedCostModel {
            algorithm: DpConv.name(),
            model: model.name(),
        });
    }
    if n > MAX_ENGINE_RELATIONS {
        return Err(OptimizeError::TooManyRelations {
            algorithm: DpConv.name(),
            relations: n,
            max: MAX_ENGINE_RELATIONS,
        });
    }
    g.require_connected()?;
    ctl.check()?;
    failpoint::check("estimator")?;
    let est = CardinalityEstimator::new(g, catalog)?;

    spans.begin("init");
    if n == 1 {
        let mut arena = PlanArena::with_capacity(1);
        let id = arena.add_scan(0, est.base_cardinality(0));
        spans.end("init");
        spans.begin("enumerate");
        spans.end("enumerate");
        spans.begin("extract");
        let tree = arena.extract(id);
        spans.end("extract");
        let counters = Counters::new();
        spans.table_stats(1, 2, 0, 0);
        spans.arena_stats(&arena);
        spans.finish(&counters);
        return Ok(DpResult {
            tree,
            cost: 0.0,
            cardinality: est.base_cardinality(0),
            counters,
            table_size: 1,
            plans_built: 1,
        });
    }

    let size = 1usize << n;
    scratch.prepare(n);
    ctl.charge(scratch.bytes())?;
    let mut pace = 0u32;

    // Connectivity bitmap + ranked connected-set lists + per-set
    // cardinalities, all from the existing graph/estimator machinery.
    let mut csgs = 0usize;
    for s in 1..size {
        ctl.checkpoint(&mut pace)?;
        let set = RelSet::from_bits(s as u64);
        if g.is_connected_set(set) {
            scratch.conn[s] = true;
            scratch.ranks[set.len()].push(s as u64);
            scratch.card[s] = if set.is_singleton() {
                est.base_cardinality(set.min_index().unwrap_or(0))
            } else {
                ensure_finite("cardinality", est.set_cardinality(set))?
            };
            csgs += 1;
        }
    }
    for i in 0..n {
        scratch.dp[1usize << i] = 0.0;
    }
    spans.end("init");

    spans.begin("enumerate");
    let observe = obs.enabled();
    let provenance = observe && obs.wants_provenance();
    let mut counters = Counters::new();
    for level in 2..=n {
        // Deterministic kernel choice from rank sizes alone, so a given
        // graph always runs the same candidate order (bit-stable costs,
        // witnesses and counters across runs and sessions).
        let cost_half: u128 = scratch.ranks[level].len() as u128 * (1u128 << (level - 1));
        let cost_pairs: u128 = (1..=level / 2)
            .map(|k| scratch.ranks[k].len() as u128 * scratch.ranks[level - k].len() as u128)
            .sum();
        // Behavioral failpoint `dpconv-rank-skip`: drop the balanced
        // convolution layer of the final rank — exactly the kind of
        // silent off-by-one-layer bug the conformance oracle must catch.
        let skip_balanced = failpoint::flag("dpconv-rank-skip") && level == n && n >= 4;
        if cost_pairs < cost_half {
            relax_rank_pairs(
                scratch,
                &mut counters,
                level,
                skip_balanced,
                |s, t, u, cand, accepted| {
                    if provenance {
                        obs.on_event(Event::PlanCandidate {
                            set: s,
                            left: t,
                            right: u,
                            cost: cand,
                            accepted,
                        });
                    }
                },
                ctl,
                &mut pace,
            )?;
        } else {
            relax_half_subsets(
                scratch,
                &mut counters,
                level,
                skip_balanced,
                |s, t, u, cand, accepted| {
                    if provenance {
                        obs.on_event(Event::PlanCandidate {
                            set: s,
                            left: t,
                            right: u,
                            cost: cand,
                            accepted,
                        });
                    }
                },
                ctl,
                &mut pace,
            )?;
        }
        if observe {
            obs.on_event(Event::DpLevel {
                size: level,
                new_entries: scratch.ranks[level].len() as u64,
            });
        }
    }
    counters.csg_cmp_pairs = 2 * counters.ono_lohman;
    let full = size - 1;
    if !scratch.dp[full].is_finite() {
        return Err(OptimizeError::Internal(
            "DPconv finished without a finite cost for the full relation set".into(),
        ));
    }
    spans.end("enumerate");

    spans.begin("extract");
    let mut arena = PlanArena::with_capacity(2 * n);
    let (root, _) = build_tree(full as u64, scratch, &est, model, &mut arena)?;
    ctl.charge(arena.bytes())?;
    let tree = arena.extract(root);
    spans.end("extract");
    let root_stats = arena.stats(root);
    spans.table_stats(csgs, size, counters.inner, counters.ono_lohman);
    spans.arena_stats(&arena);
    spans.finish(&counters);
    Ok(DpResult {
        tree,
        cost: root_stats.cost,
        cardinality: root_stats.cardinality,
        counters,
        table_size: csgs,
        plans_built: arena.len(),
    })
}

/// Half-subset kernel: per connected set of `level` relations,
/// enumerate the submasks avoiding the lowest relation (each unordered
/// split exactly once).
#[allow(clippy::too_many_arguments)]
fn relax_half_subsets(
    scratch: &mut DpConvScratch,
    counters: &mut Counters,
    level: usize,
    skip_balanced: bool,
    mut candidate: impl FnMut(u64, u64, u64, f64, bool),
    ctl: &CancellationToken,
    pace: &mut u32,
) -> Result<(), OptimizeError> {
    let balanced = level / 2;
    for idx in 0..scratch.ranks[level].len() {
        let s = scratch.ranks[level][idx] as usize;
        let base = scratch.card[s];
        let rest = s & (s - 1); // drop lowest(S): canonical orientation
        let mut t = rest;
        while t != 0 {
            ctl.checkpoint(pace)?;
            counters.inner += 1;
            let halves = (t.count_ones() as usize).min(level - t.count_ones() as usize);
            if !(skip_balanced && halves == balanced) {
                let u = s ^ t;
                if scratch.conn[t] && scratch.conn[u] {
                    counters.ono_lohman += 1;
                    let cand = base + scratch.dp[t] + scratch.dp[u];
                    let accepted = cand < scratch.dp[s];
                    candidate(s as u64, t as u64, u as u64, cand, accepted);
                    if accepted {
                        scratch.dp[s] = cand;
                        scratch.witness[s] = t as u64;
                    }
                }
            }
            t = (t - 1) & rest;
        }
    }
    Ok(())
}

/// Rank-pair kernel: convolve the connected-set lists of complementary
/// ranks (`k` against `level − k`), deduplicating the equal-rank case
/// by numeric order.
#[allow(clippy::too_many_arguments)]
fn relax_rank_pairs(
    scratch: &mut DpConvScratch,
    counters: &mut Counters,
    level: usize,
    skip_balanced: bool,
    mut candidate: impl FnMut(u64, u64, u64, f64, bool),
    ctl: &CancellationToken,
    pace: &mut u32,
) -> Result<(), OptimizeError> {
    for k in 1..=level / 2 {
        if skip_balanced && k == level / 2 {
            continue;
        }
        for ai in 0..scratch.ranks[k].len() {
            let a = scratch.ranks[k][ai] as usize;
            for bi in 0..scratch.ranks[level - k].len() {
                ctl.checkpoint(pace)?;
                counters.inner += 1;
                let b = scratch.ranks[level - k][bi] as usize;
                if a & b != 0 || (2 * k == level && a > b) {
                    continue;
                }
                let s = a | b;
                if !scratch.conn[s] {
                    continue;
                }
                counters.ono_lohman += 1;
                let cand = scratch.card[s] + scratch.dp[a] + scratch.dp[b];
                let accepted = cand < scratch.dp[s];
                candidate(s as u64, a as u64, b as u64, cand, accepted);
                if accepted {
                    scratch.dp[s] = cand;
                    scratch.witness[s] = a as u64;
                }
            }
        }
    }
    Ok(())
}

/// Recursively materializes the plan for mask `s`, re-validating every
/// witness split against the DP table before trusting it.
fn build_tree(
    s: u64,
    scratch: &DpConvScratch,
    est: &CardinalityEstimator,
    model: &dyn CostModel,
    arena: &mut PlanArena,
) -> Result<(PlanId, PlanStats), OptimizeError> {
    let set = RelSet::from_bits(s);
    if set.is_singleton() {
        let i = set.min_index().unwrap_or(0);
        let card = est.base_cardinality(i);
        let id = arena.add_scan(i, card);
        return Ok((id, PlanStats::base(card)));
    }
    let idx = s as usize;
    let t = scratch.witness[idx];
    let u = s ^ t;
    let (ti, ui) = (t as usize, u as usize);
    let corrupt = |why: &str| {
        OptimizeError::Internal(format!(
            "DPconv witness for {set} is corrupt ({why}): split {} | {}",
            RelSet::from_bits(t),
            RelSet::from_bits(u)
        ))
    };
    if t == 0 || u == 0 || t & s != t {
        return Err(corrupt("not a proper split"));
    }
    if !scratch.conn[ti] || !scratch.conn[ui] {
        return Err(corrupt("disconnected half"));
    }
    let derived = scratch.card[idx] + scratch.dp[ti] + scratch.dp[ui];
    let table = scratch.dp[idx];
    if !table.is_finite() || (derived - table).abs() > WITNESS_TOLERANCE * table.abs().max(1.0) {
        return Err(corrupt("cost does not re-derive from the table"));
    }
    let (left, lstats) = build_tree(t, scratch, est, model, arena)?;
    let (right, rstats) = build_tree(u, scratch, est, model, arena)?;
    let out_card = ensure_finite(
        "cardinality",
        est.join_cardinality(
            lstats.cardinality,
            rstats.cardinality,
            RelSet::from_bits(t),
            RelSet::from_bits(u),
        ),
    )?;
    let cost = ensure_finite("cost", model.join_cost(&lstats, &rstats, out_card))?;
    let stats = PlanStats {
        cardinality: out_card,
        cost,
    };
    failpoint::check("arena-alloc")?;
    let id = arena.add_join(left, right, stats);
    Ok((id, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpccp::DpCcp;
    use crate::dpsub::DpSub;
    use joinopt_cost::{workload, Cout, HashJoin, SortMergeJoin};
    use joinopt_qgraph::{GraphKind, QueryGraph};

    #[test]
    fn agrees_with_dpccp_across_families_and_sizes() {
        for kind in GraphKind::ALL {
            for n in 2..=10 {
                for seed in 0..3 {
                    let w = workload::family_workload(kind, n, seed);
                    let conv = DpConv.optimize(&w.graph, &w.catalog, &Cout).unwrap();
                    let ccp = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
                    let tol = 1e-9 * ccp.cost.abs().max(1.0);
                    assert!(
                        (conv.cost - ccp.cost).abs() <= tol,
                        "{kind} n={n} seed={seed}: {} vs {}",
                        conv.cost,
                        ccp.cost
                    );
                }
            }
        }
    }

    #[test]
    fn counters_match_the_graph_properties() {
        // ono_lohman counts each valid unordered split of each connected
        // set exactly once — the graph's #ccp — whichever kernel runs.
        for kind in GraphKind::ALL {
            let w = workload::family_workload(kind, 9, 5);
            let r = DpConv.optimize(&w.graph, &w.catalog, &Cout).unwrap();
            let ccps = joinopt_qgraph::csg::count_ccp_distinct(&w.graph);
            assert_eq!(r.counters.ono_lohman, ccps, "{kind}");
            assert_eq!(r.counters.csg_cmp_pairs, 2 * r.counters.ono_lohman);
            assert_eq!(
                r.table_size as u64,
                joinopt_qgraph::csg::count_csg(&w.graph),
                "{kind}"
            );
            assert!(r.counters.inner >= r.counters.ono_lohman);
            assert!(r.counters.hit_rate() <= 1.0);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let w = workload::random_workload(9, 0.5, 77);
        let a = DpConv.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        let b = DpConv.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        assert_eq!(a.tree, b.tree);
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn plan_tree_is_consistent() {
        let w = workload::random_workload(9, 0.35, 4);
        let r = DpConv.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        assert_eq!(r.tree.relations(), w.graph.all_relations());
        assert_eq!(r.tree.num_joins(), 8);
        assert_eq!(r.tree.cost(), r.cost);
        assert_eq!(r.tree.cardinality(), r.cardinality);
        assert_eq!(r.plans_built, 2 * 9 - 1);
    }

    #[test]
    fn non_cout_models_get_a_typed_refusal() {
        // The pinned cost-model contract: an incompatible model is a
        // typed error, never a silently wrong plan.
        let w = workload::family_workload(GraphKind::Chain, 5, 0);
        for model in [&HashJoin as &dyn CostModel, &SortMergeJoin] {
            let err = DpConv
                .optimize(&w.graph, &w.catalog, model)
                .expect_err("non-C_out model must be refused");
            assert!(
                matches!(
                    err,
                    OptimizeError::UnsupportedCostModel {
                        algorithm: "DPconv",
                        ..
                    }
                ),
                "{err}"
            );
        }
    }

    #[test]
    fn size_cap_is_a_typed_error() {
        let g = joinopt_qgraph::generators::chain(MAX_ENGINE_RELATIONS + 1).unwrap();
        let cat = Catalog::new(&g);
        let err = DpConv.optimize(&g, &cat, &Cout).unwrap_err();
        assert!(
            matches!(err, OptimizeError::TooManyRelations { .. }),
            "{err}"
        );
    }

    #[test]
    fn rejects_disconnected_and_empty() {
        let g = QueryGraph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let cat = Catalog::new(&g);
        assert!(matches!(
            DpConv.optimize(&g, &cat, &Cout),
            Err(OptimizeError::Graph(_))
        ));
        let empty = QueryGraph::new(0).unwrap();
        assert!(matches!(
            DpConv.optimize(&empty, &Catalog::new(&empty), &Cout),
            Err(OptimizeError::EmptyQuery)
        ));
    }

    #[test]
    fn single_relation_is_the_free_scan() {
        let w = workload::family_workload(GraphKind::Chain, 1, 0);
        let r = DpConv.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        assert_eq!(r.cost, 0.0);
        assert_eq!(r.tree.num_relations(), 1);
        assert_eq!(r.counters.inner, 0);
        assert_eq!(r.table_size, 1);
    }

    #[test]
    fn both_kernels_agree_on_shapes_that_exercise_them() {
        // Cliques drive the half-subset kernel (every mask connected),
        // chains/stars the rank-pair kernel (connected sets are scarce);
        // all must agree with the sequential reference.
        for kind in [GraphKind::Clique, GraphKind::Chain, GraphKind::Star] {
            let w = workload::family_workload(kind, 10, 2);
            let conv = DpConv.optimize(&w.graph, &w.catalog, &Cout).unwrap();
            let sub = DpSub.optimize(&w.graph, &w.catalog, &Cout).unwrap();
            let tol = 1e-9 * sub.cost.abs().max(1.0);
            assert!((conv.cost - sub.cost).abs() <= tol, "{kind}");
            assert_eq!(conv.counters.ono_lohman, sub.counters.ono_lohman, "{kind}");
        }
    }

    #[test]
    fn cancellation_and_memory_budgets_are_honoured() {
        use crate::cancel::CancelFlag;
        use joinopt_telemetry::NoopObserver;
        let w = workload::family_workload(GraphKind::Clique, 12, 0);
        let flag = CancelFlag::new();
        flag.cancel();
        let ctl = CancellationToken::new(Some(flag), None, None);
        let err = DpConv
            .optimize_controlled(&w.graph, &w.catalog, &Cout, &NoopObserver, &ctl)
            .unwrap_err();
        assert!(matches!(err, OptimizeError::Cancelled));
        let tiny = CancellationToken::new(None, None, Some(1024));
        let err = DpConv
            .optimize_controlled(&w.graph, &w.catalog, &Cout, &NoopObserver, &tiny)
            .unwrap_err();
        assert!(matches!(err, OptimizeError::MemoryBudgetExceeded { .. }));
    }

    #[test]
    fn telemetry_skeleton_and_provenance_are_emitted() {
        use joinopt_telemetry::MetricsCollector;
        let w = workload::family_workload(GraphKind::Cycle, 7, 1);
        let metrics = MetricsCollector::new();
        let observed = DpConv
            .optimize_observed(&w.graph, &w.catalog, &Cout, &metrics)
            .unwrap();
        let silent = DpConv.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        // Observation must not perturb the result.
        assert_eq!(observed.cost.to_bits(), silent.cost.to_bits());
        assert_eq!(observed.tree, silent.tree);
        assert_eq!(observed.counters, silent.counters);
        let report = metrics.report();
        assert_eq!(report.algorithm, "DPconv");
        assert_eq!(report.relations, 7);
        assert!(!report.phases.is_empty());
        assert!(!report.levels.is_empty());
    }
}
