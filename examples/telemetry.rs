//! Telemetry: observe an optimizer run with phase timings, DP-table and
//! memory statistics, and stream the raw event trace as JSON lines.
//!
//! Run with: `cargo run --release --example telemetry`

use joinopt::prelude::*;
use joinopt::telemetry::Tee;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The ISSUE's acceptance workload: a 12-relation star query.
    let w = joinopt::cost::workload::family_workload(GraphKind::Star, 12, 2006);

    // Without an observer, the run is on the zero-overhead path — the
    // default NoopObserver reports itself disabled, so the optimizer
    // does no telemetry bookkeeping at all.
    let plain = OptimizeRequest::new(&w.graph, &w.catalog)
        .with_algorithm(Algorithm::DpCcp)
        .run()?
        .into_result();

    // With observers: a MetricsCollector aggregates the run into a
    // report, and a TraceWriter streams every event as a JSON line.
    // Tee fans the events out to both; the result is bit-identical.
    let metrics = MetricsCollector::new();
    let trace = TraceWriter::new(Vec::new());
    let tee = Tee::new(&metrics, &trace);
    let observed = OptimizeRequest::new(&w.graph, &w.catalog)
        .with_algorithm(Algorithm::DpCcp)
        .with_observer(&tee)
        .run()?
        .into_result();
    assert_eq!(plain.cost.to_bits(), observed.cost.to_bits());
    assert_eq!(plain.counters, observed.counters);

    // The human-readable report: phase spans, per-size DP-level entry
    // counts, table probe/hit statistics, arena accounting, counters.
    let report = metrics.report();
    println!("{report}");

    // The same report as a machine-readable JSON line and as CSV — the
    // formats the CLI (`--metrics`) and the bench sidecars build on.
    println!("json: {}", report.to_json_line());
    println!();
    print!("{}", report.to_csv());

    // A few lines of the raw JSONL event trace (what `--trace-json`
    // writes to a file).
    let jsonl = String::from_utf8(trace.finish()?)?;
    println!("\nfirst trace events of {} total:", jsonl.lines().count());
    for line in jsonl.lines().take(5) {
        println!("  {line}");
    }

    // The report is programmatically inspectable, e.g. how much of the
    // enumeration work was spent per DP level…
    let enumerate = report
        .phase("enumerate")
        .expect("DP algorithms report this span");
    println!(
        "\nenumerate phase: {:.3} ms for {} table entries across {} levels",
        enumerate.duration_ns() as f64 / 1e6,
        report.level_total(),
        report.levels.len()
    );
    // …and the paper's counters arrive with the same values as the
    // DpResult itself.
    assert_eq!(report.counter_inner, observed.counters.inner);
    Ok(())
}
