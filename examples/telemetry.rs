//! Telemetry: observe an optimizer run with phase timings, DP-table and
//! memory statistics, and stream the raw event trace as JSON lines.
//!
//! Run with: `cargo run --release --example telemetry`

use joinopt::prelude::*;
use joinopt::telemetry::Tee;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The ISSUE's acceptance workload: a 12-relation star query.
    let w = joinopt::cost::workload::family_workload(GraphKind::Star, 12, 2006);

    // Without an observer, the run is on the zero-overhead path — the
    // default NoopObserver reports itself disabled, so the optimizer
    // does no telemetry bookkeeping at all.
    let plain = OptimizeRequest::new(&w.graph, &w.catalog)
        .with_algorithm(Algorithm::DpCcp)
        .run()?
        .into_result();

    // With observers: a MetricsCollector aggregates the run into a
    // report, and a TraceWriter streams every event as a JSON line.
    // Tee fans the events out to both; the result is bit-identical.
    let metrics = MetricsCollector::new();
    let trace = TraceWriter::new(Vec::new());
    let tee = Tee::new(&metrics, &trace);
    let observed = OptimizeRequest::new(&w.graph, &w.catalog)
        .with_algorithm(Algorithm::DpCcp)
        .with_observer(&tee)
        .run()?
        .into_result();
    assert_eq!(plain.cost.to_bits(), observed.cost.to_bits());
    assert_eq!(plain.counters, observed.counters);

    // The human-readable report: phase spans, per-size DP-level entry
    // counts, table probe/hit statistics, arena accounting, counters.
    let report = metrics.report();
    println!("{report}");

    // The same report as a machine-readable JSON line and as CSV — the
    // formats the CLI (`--metrics`) and the bench sidecars build on.
    println!("json: {}", report.to_json_line());
    println!();
    print!("{}", report.to_csv());

    // A few lines of the raw JSONL event trace (what `--trace-json`
    // writes to a file).
    let jsonl = String::from_utf8(trace.finish()?)?;
    println!("\nfirst trace events of {} total:", jsonl.lines().count());
    for line in jsonl.lines().take(5) {
        println!("  {line}");
    }

    // The report is programmatically inspectable, e.g. how much of the
    // enumeration work was spent per DP level…
    let enumerate = report
        .phase("enumerate")
        .expect("DP algorithms report this span");
    println!(
        "\nenumerate phase: {:.3} ms for {} table entries across {} levels",
        enumerate.duration_ns() as f64 / 1e6,
        report.level_total(),
        report.levels.len()
    );
    // …and the paper's counters arrive with the same values as the
    // DpResult itself.
    assert_eq!(report.counter_inner, observed.counters.inner);

    // Fleet-level aggregation: where the collector resets per run, a
    // MetricsRegistry accumulates counters, gauges and log-linear
    // histograms across arbitrarily many runs (this is what `--prom`
    // and the fuzz campaign's `--metrics` build on).
    use joinopt::telemetry::{collapse_trace, MetricsRegistry, RegistryObserver};
    let registry = MetricsRegistry::new();
    let reg_obs = RegistryObserver::new(&registry);
    for alg in [Algorithm::DpSize, Algorithm::DpSub, Algorithm::DpCcp] {
        OptimizeRequest::new(&w.graph, &w.catalog)
            .with_algorithm(alg)
            .with_threads(4)
            .with_observer(&reg_obs)
            .run()?;
    }
    let snapshot = registry.snapshot();
    println!("\nregistry after the whole family:");
    print!("{}", snapshot.to_text());
    assert_eq!(
        snapshot.counter("joinopt_runs_total", &[("algorithm", "DPccp")]),
        Some(1)
    );

    // The snapshot exports as Prometheus text exposition…
    let exposition = snapshot.to_prometheus();
    println!("\nfirst Prometheus exposition lines:");
    for line in exposition.lines().take(6) {
        println!("  {line}");
    }

    // …and the JSONL trace folds into collapsed-stack lines, the input
    // format of flamegraph renderers (the `joinopt flame` subcommand).
    let folded = collapse_trace(&jsonl)?;
    println!("\ncollapsed stacks:");
    for line in folded.lines() {
        println!("  {line}");
    }
    Ok(())
}
