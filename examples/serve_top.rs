//! Live service introspection, end to end — the library surface behind
//! the `metrics`/`trace`/`slow` server verbs and `joinopt top`:
//!
//! 1. trace requests through the hardened [`Gateway`] with a
//!    [`RequestTrace`] — every lifecycle stage (shed-check, breaker,
//!    cache-lookup, optimize, respond) lands as a nanosecond span on a
//!    manual clock, so the whole walk is deterministic;
//! 2. fold finished traces into a [`TraceLog`] (recent ring + worst-K
//!    slowest) and a [`WindowedMetrics`] rolling aggregator, exactly as
//!    the server does, then render the windowed per-stage p50/p99 table
//!    `joinopt top` shows;
//! 3. the zero-overhead contract — the same request untraced performs
//!    exactly two clock reads and returns a bit-identical plan.
//!
//! Run with: `cargo run --release --example serve_top`

use std::time::Duration;

use joinopt::cost::workload;
use joinopt::prelude::*;
use joinopt::service::server::algorithm_name;
use joinopt::service::{clock_reads, Clock, Gateway, GatewayConfig};
use joinopt::telemetry::{RequestTrace, TraceIdMinter, TraceLog, WindowConfig, WindowedMetrics};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. A traced request lifecycle on a manual clock. -------------
    let gateway = Gateway::with_clock(
        OptimizerService::new(ServiceConfig::default()),
        GatewayConfig::default(),
        Clock::manual(),
    );
    let obs = NoopObserver;
    let minter = TraceIdMinter::new(42); // the server seeds this per process
    let mut log = TraceLog::new(256, 16);
    let mut window = WindowedMetrics::new(WindowConfig::default());
    let mut session = None;

    // Three requests: two distinct queries plus one repeat of the
    // first, which warms into a cache hit. The clock advances 5 ms
    // between arrivals so the spans land at distinct timestamps.
    let specs = [0u64, 1, 0].map(|seed| {
        let w = workload::family_workload(GraphKind::Star, 7, seed);
        QuerySpec::capture(&w.graph, &w.catalog).expect("star captures")
    });
    for spec in specs {
        let req = ServiceRequest::new(spec).with_tenant("analytics");
        let start = gateway.clock().now_ns();
        let mut trace = RequestTrace::new(minter.mint(), &req.tenant, "optimize", start);
        let outcome = gateway
            .handle_traced(&req, None, &mut session, &obs, Some(&mut trace))
            .map_err(|e| format!("{e:?}"))?;
        trace.algorithm = Some(algorithm_name(outcome.algorithm));
        trace.cache_hit = Some(outcome.cache_hit);
        trace.finish("ok", gateway.clock().now_ns());

        println!(
            "trace {} ({}, cache_hit={}):",
            trace.trace_id,
            trace.algorithm.unwrap_or("?"),
            outcome.cache_hit
        );
        for span in trace.spans() {
            println!(
                "  {:>12}  attempt {}  start {:>10} ns  {:>8} ns",
                span.stage,
                span.attempt,
                span.start_ns,
                span.duration_ns()
            );
            window.record(
                &trace.tenant,
                trace.verb,
                span.stage,
                span.end_ns,
                span.duration_ns(),
            );
        }
        log.record(trace);
        gateway.clock().advance(Duration::from_millis(5));
    }

    // --- 2. The introspection stores the server verbs answer from. ----
    let slowest = log.slowest().first().expect("three traces recorded");
    println!(
        "\nslowest of {} recorded: {} ({} ns total) — what the `slow` verb returns",
        log.recent_len(),
        slowest.trace_id,
        slowest.total_ns()
    );

    let snap = window.snapshot(gateway.clock().now_ns());
    println!("\nwindowed stage table (the `metrics` verb / `joinopt top` view):");
    println!(
        "  {:<12} {:>6} {:>10} {:>10} {:>10}",
        "stage", "count", "rate/s", "p50 ns", "p99 ns"
    );
    for entry in &snap.entries {
        println!(
            "  {:<12} {:>6} {:>10.3} {:>10} {:>10}",
            entry.stage, entry.count, entry.rate_per_sec, entry.p50_ns, entry.p99_ns
        );
    }
    let prom = snap.to_prometheus();
    println!(
        "\nPrometheus exposition: {} joinopt_serve_stage_* lines on the flush",
        prom.lines().count()
    );

    // --- 3. Zero overhead when untraced. ------------------------------
    let w = workload::family_workload(GraphKind::Star, 7, 99);
    let req = ServiceRequest::new(QuerySpec::capture(&w.graph, &w.catalog)?);
    let before = clock_reads();
    let untraced = gateway
        .handle(&req, None, &mut session, &obs)
        .map_err(|e| format!("{e:?}"))?;
    let untraced_reads = clock_reads() - before;
    assert_eq!(
        untraced_reads, 2,
        "untraced = admission stamp + breaker admit"
    );

    let mut trace = RequestTrace::new(minter.mint(), "", "optimize", gateway.clock().now_ns());
    let before = clock_reads();
    let traced = gateway
        .handle_traced(&req, None, &mut session, &obs, Some(&mut trace))
        .map_err(|e| format!("{e:?}"))?;
    let traced_reads = clock_reads() - before;
    assert_eq!(traced.result.cost.to_bits(), untraced.result.cost.to_bits());
    println!(
        "\nzero-overhead contract: untraced {untraced_reads} clock reads, traced {traced_reads}, \
         plans bit-identical"
    );
    Ok(())
}
