//! Adaptive algorithm selection — the paper's concluding recommendation
//! operationalized: `Algorithm::Auto` inspects the query graph and picks
//! DPsub for (near-)cliques and DPccp everywhere else.
//!
//! Run with: `cargo run --release --example adaptive`

use std::time::Instant;

use joinopt::prelude::*;
use joinopt_cost::workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<8} {:>3} {:>14} {:>12} {:>12}",
        "graph", "n", "auto choice", "auto time", "counters"
    );
    for kind in GraphKind::ALL {
        let n = 13;
        let w = workload::family_workload(kind, n, 7);

        let choice = Algorithm::select_auto(&w.graph);
        let optimizer = Optimizer::new(); // Algorithm::Auto by default
        let start = Instant::now();
        let result = optimizer.optimize(&w.graph, &w.catalog)?;
        let elapsed = start.elapsed();

        println!(
            "{:<8} {:>3} {:>14} {:>12} {:>12}",
            kind.name(),
            n,
            format!("{choice:?}"),
            format!("{elapsed:.2?}"),
            result.counters.inner,
        );

        // Sanity: the auto result must cost the same as explicit DPccp.
        let reference = Optimizer::new()
            .with_algorithm(Algorithm::DpCcp)
            .optimize(&w.graph, &w.catalog)?;
        assert!(
            (result.cost - reference.cost).abs() <= 1e-9 * reference.cost.abs().max(1.0),
            "auto selection changed the optimum?!"
        );
    }

    println!(
        "\nAuto resolves to DPsub only on dense (≥90% complete) graphs, where \
         subset enumeration's trivial inner loop beats the csg machinery; \
         everywhere else DPccp is chosen (it meets the Ono/Lohman lower bound)."
    );
    Ok(())
}
