//! Adaptive algorithm selection — the paper's concluding recommendation
//! operationalized: `Algorithm::Auto` inspects the query graph *and the
//! available parallelism* and picks DPsub for (near-)cliques and DPccp
//! everywhere else. More worker threads lower the density bar, because
//! only DPsub has a parallel path.
//!
//! Run with: `cargo run --release --example adaptive`

use joinopt::prelude::*;
use joinopt_cost::workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<8} {:>3} {:>6}..{:<6} {:>12} {:>12}",
        "graph", "n", "auto@1", "auto@8", "time", "counters"
    );
    for kind in GraphKind::ALL {
        let n = 13;
        let w = workload::family_workload(kind, n, 7);

        // The selection is parallelism-aware: DPsub's level-synchronous
        // engine scales with threads while DPccp is inherently serial,
        // so the density threshold drops from 90% (1 thread) to 70% (≥4).
        let at_one = Algorithm::select_auto_with_parallelism(&w.graph, 1);
        let at_eight = Algorithm::select_auto_with_parallelism(&w.graph, 8);

        let outcome = OptimizeRequest::new(&w.graph, &w.catalog).run()?;

        println!(
            "{:<8} {:>3} {:>6}..{:<6} {:>12} {:>12}",
            kind.name(),
            n,
            format!("{at_one:?}"),
            format!("{at_eight:?}"),
            format!("{:.2?}", outcome.elapsed),
            outcome.result.counters.inner,
        );

        // Sanity: the auto result must cost the same as explicit DPccp.
        let reference = OptimizeRequest::new(&w.graph, &w.catalog)
            .with_algorithm(Algorithm::DpCcp)
            .run()?;
        assert!(
            (outcome.result.cost - reference.result.cost).abs()
                <= 1e-9 * reference.result.cost.abs().max(1.0),
            "auto selection changed the optimum?!"
        );
    }

    println!(
        "\nAuto resolves to DPsub only on dense graphs, where subset \
         enumeration's trivial inner loop beats the csg machinery — \
         ≥90% complete on one thread, relaxed to ≥70% once four or more \
         workers can share the levels; everywhere else DPccp is chosen \
         (it meets the Ono/Lohman lower bound)."
    );
    Ok(())
}
