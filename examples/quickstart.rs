//! Quickstart: build a query graph, attach statistics, optimize with
//! DPccp, and inspect the resulting plan.
//!
//! Run with: `cargo run --release --example quickstart`

use joinopt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Query graph of
    //   SELECT * FROM customer c, orders o, lineitem l, part p
    //   WHERE c.ck = o.ck AND o.ok = l.ok AND l.pk = p.pk
    // — a 4-relation chain: customer — orders — lineitem — part.
    let mut graph = QueryGraph::new(4)?;
    let c_o = graph.add_edge(0, 1)?; // customer ⋈ orders
    let o_l = graph.add_edge(1, 2)?; // orders ⋈ lineitem
    let l_p = graph.add_edge(2, 3)?; // lineitem ⋈ part

    // Statistics: base cardinalities and join selectivities.
    let mut catalog = Catalog::new(&graph);
    catalog.set_cardinality(0, 150_000.0)?; // customer
    catalog.set_cardinality(1, 1_500_000.0)?; // orders
    catalog.set_cardinality(2, 6_000_000.0)?; // lineitem
    catalog.set_cardinality(3, 200_000.0)?; // part
    catalog.set_selectivity(c_o, 1.0 / 150_000.0)?;
    catalog.set_selectivity(o_l, 1.0 / 1_500_000.0)?;
    catalog.set_selectivity(l_p, 1.0 / 200_000.0)?;

    // Optimize. `OptimizeRequest` is the canonical entry point: with no
    // builder calls it uses automatic algorithm selection (DPccp here)
    // and the C_out cost model.
    let outcome = OptimizeRequest::new(&graph, &catalog).run()?;
    println!("algorithm selected:      {:?}", outcome.algorithm);
    let result = outcome.into_result();

    println!("optimal bushy join tree: {}", result.tree);
    println!("estimated result size:   {:.0} rows", result.cardinality);
    println!("plan cost (C_out):       {:.0}", result.cost);
    println!("enumeration counters:    {}", result.counters);
    println!();
    println!("{}", result.tree.explain());

    // The counters tell us how much work enumeration did: for DPccp the
    // InnerCounter equals the number of csg-cmp-pairs of the query graph
    // — the provable lower bound for dynamic programming.
    assert_eq!(result.counters.inner, result.counters.ono_lohman);
    Ok(())
}
