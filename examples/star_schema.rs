//! Data-warehouse star query — the workload the paper singles out as
//! practically important ("star queries are of high practical importance
//! in data warehouses") and on which DPccp is *highly* superior to both
//! DPsize and DPsub.
//!
//! A fact table is joined with `n − 1` dimension tables; every join
//! predicate touches the fact table, so the query graph is a star. This
//! example optimizes a 15-way star with all three algorithms, showing
//! identical optimal plans but wildly different enumeration effort.
//!
//! Run with: `cargo run --release --example star_schema`

use joinopt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const DIMENSIONS: usize = 14;
    let n = DIMENSIONS + 1;

    // R0 = fact table, R1..=R14 = dimensions.
    let graph = qgraph::generators::star(n)?;
    let mut catalog = Catalog::new(&graph);
    catalog.set_cardinality(0, 100_000_000.0)?; // sales fact
    for d in 1..n {
        // Dimensions of varying size: 10 … ~5 million rows.
        let card = 10.0 * 4.0_f64.powi(d as i32 - 1).min(500_000.0);
        catalog.set_cardinality(d, card)?;
        // Key-foreign-key joins: selectivity 1/|dimension|.
        catalog.set_selectivity(d - 1, 1.0 / card)?;
    }

    println!("star query: fact table + {DIMENSIONS} dimensions (n = {n})\n");
    println!(
        "{:<10} {:>12} {:>16} {:>12} {:>10}",
        "algorithm", "time", "InnerCounter", "#ccp/2", "cost"
    );

    let algorithms = [Algorithm::DpSize, Algorithm::DpSub, Algorithm::DpCcp];
    let mut trees = Vec::new();
    for alg in algorithms {
        let outcome = OptimizeRequest::new(&graph, &catalog)
            .with_algorithm(alg)
            .run()?;
        println!(
            "{:<10} {:>12} {:>16} {:>12} {:>10.3e}",
            alg.orderer(&graph).name(),
            format!("{:.2?}", outcome.elapsed),
            outcome.result.counters.inner,
            outcome.result.counters.ono_lohman,
            outcome.result.cost,
        );
        trees.push(outcome.into_result());
    }

    // All three algorithms find plans of the same (optimal) cost.
    assert!(trees
        .windows(2)
        .all(|w| (w[0].cost - w[1].cost).abs() <= 1e-9 * w[0].cost));

    println!(
        "\noptimal plan (all three agree):\n{}",
        trees[2].tree.explain()
    );
    println!(
        "DPccp hit rate: {:.1}% of innermost iterations produce a plan \
         (DPsize: {:.4}%, DPsub: {:.4}%)",
        100.0 * trees[2].counters.hit_rate(),
        100.0 * trees[0].counters.hit_rate(),
        100.0 * trees[1].counters.hit_rate(),
    );
    Ok(())
}
