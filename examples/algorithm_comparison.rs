//! Counter comparison across all four query-graph families — a live,
//! small-n rendition of the paper's Figure 3, computed three ways:
//!
//! 1. by running the instrumented algorithms,
//! 2. by the closed-form formulas (Sections 2.1, 2.2, 2.3.2),
//! 3. by the csg-size-profile predictions (arbitrary-graph variant),
//!
//! and asserting all three agree.
//!
//! Run with: `cargo run --release --example algorithm_comparison`

use joinopt::core::formulas as alg_formulas;
use joinopt::prelude::*;
use joinopt::qgraph::{formulas as graph_formulas, profile::CsgProfile};
use joinopt_cost::workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<8} {:>3} {:>12} {:>14} {:>14} {:>14}",
        "graph", "n", "#ccp", "DPsub", "DPsize", "DPccp"
    );
    for kind in GraphKind::ALL {
        for n in [2usize, 5, 8, 11] {
            let w = workload::family_workload(kind, n, 42);

            let run = |alg: Algorithm| {
                OptimizeRequest::new(&w.graph, &w.catalog)
                    .with_algorithm(alg)
                    .run()
                    .map(OptimizeOutcome::into_result)
            };
            let size = run(Algorithm::DpSize)?;
            let sub = run(Algorithm::DpSub)?;
            let ccp = run(Algorithm::DpCcp)?;

            // Cross-validate measured counters against both prediction layers.
            let nu = n as u64;
            let profile = CsgProfile::compute(&w.graph);
            assert_eq!(
                u128::from(size.counters.inner),
                alg_formulas::dpsize_inner(kind, nu),
                "DPsize closed form mismatch ({kind}, n={n})"
            );
            assert_eq!(
                u128::from(size.counters.inner),
                alg_formulas::dpsize_inner_from_profile(&profile),
                "DPsize profile mismatch ({kind}, n={n})"
            );
            assert_eq!(
                u128::from(sub.counters.inner),
                alg_formulas::dpsub_inner(kind, nu),
                "DPsub closed form mismatch ({kind}, n={n})"
            );
            assert_eq!(
                u128::from(ccp.counters.inner),
                graph_formulas::ccp_distinct(kind, nu),
                "DPccp = #ccp/2 mismatch ({kind}, n={n})"
            );

            println!(
                "{:<8} {:>3} {:>12} {:>14} {:>14} {:>14}",
                kind.name(),
                n,
                ccp.counters.ono_lohman,
                sub.counters.inner,
                size.counters.inner,
                ccp.counters.inner,
            );
        }
        println!();
    }
    println!("all measured counters match the paper's (corrected) closed forms ✓");
    Ok(())
}
