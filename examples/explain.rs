//! Plan provenance: capture every decision a DP run makes on a star
//! query, walk the per-set records — winning split, runner-up and the
//! cost delta between them — and render the explained plan.
//!
//! The interesting number here is the runner-up delta: on a star query
//! most intermediate sets have one obvious winner (join the next
//! dimension into the fact-table component), but the near-ties show
//! where a slightly different catalog would have flipped the plan.
//!
//! Run with: `cargo run --release --example explain`

use joinopt::core::explain::{compare, default_namer, Explanation};
use joinopt::prelude::*;

/// `{R0,R3,R5}`-style label for a relation-set bitmask.
fn label(bits: u64) -> String {
    let names: Vec<String> = RelSet::from_bits(bits).iter().map(default_namer).collect();
    format!("{{{}}}", names.join(","))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A seeded 10-relation star: R0 is the fact table, every predicate
    // touches it.
    let w = joinopt::cost::workload::family_workload(GraphKind::Star, 10, 2006);

    // Capture a DPccp run with provenance collection attached. The
    // observer records one PlanCandidate event per considered split;
    // the collector folds them into one DecisionRecord per set.
    let e = Explanation::capture_sequential(&w.graph, &w.catalog, &Cout, Algorithm::DpCcp)?;
    println!(
        "{} on a {}-relation star: {} decision sets, {} candidates considered\n",
        e.algorithm,
        e.relations,
        e.records.len(),
        e.total_candidates()
    );

    // Walk the decision records in DP order (ascending set size) and
    // print each set's winner with its runner-up delta — how much worse
    // the second-best split was.
    println!(
        "{:<28} {:>12} {:>14}  runner-up margin",
        "set", "cost", "candidates"
    );
    for set in e.decision_sets() {
        let rec = &e.records[&set];
        let Some(winner) = rec.winner else { continue };
        let margin = match rec.cost_delta() {
            Some(0.0) => "tie (enumeration order decides)".to_string(),
            Some(delta) => format!("Δ={delta:e}"),
            None => "(sole candidate)".to_string(),
        };
        println!(
            "{:<28} {:>12.4e} {:>14}  {margin}",
            label(set),
            winner.cost,
            rec.candidates
        );
    }

    // The full rendered document: header, ASCII plan tree, decision
    // table. `--format dot` / `--format json` of `joinopt explain`
    // come from render_dot / to_json on the same Explanation.
    println!("\n{}", e.render_text(&default_namer));

    // Diff against DPsize: both are exact, so they agree on cost; on a
    // tie-rich instance they may still commit different equal-cost
    // splits, which compare() pinpoints decision by decision.
    let other = Explanation::capture_sequential(&w.graph, &w.catalog, &Cout, Algorithm::DpSize)?;
    let diff = compare(&e, &other);
    println!("{}", diff.render_text());
    Ok(())
}
