//! The parallel engine and the batch API, end to end:
//!
//! 1. one query at several thread counts — bit-identical plans, because
//!    the level-synchronous engine merges worker results in a
//!    deterministic order at every level barrier;
//! 2. a pooled [`Session`] amortizing DP-table and plan-arena
//!    allocations across repeated runs;
//! 3. [`Optimizer::optimize_batch`] spreading a mixed workload across
//!    workers, one query per thread.
//!
//! Run with: `cargo run --release --example parallel_batch`

use joinopt::prelude::*;
use joinopt_cost::workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. One clique query, every thread count, one answer. --------
    let w = workload::family_workload(GraphKind::Clique, 12, 9);
    println!("clique n=12, DPsub on the level-synchronous engine:\n");
    let mut reference: Option<DpResult> = None;
    for threads in [1, 2, 4, 8] {
        let outcome = OptimizeRequest::new(&w.graph, &w.catalog)
            .with_algorithm(Algorithm::DpSub)
            .with_threads(threads)
            .run()?;
        println!(
            "  threads={threads}  time={:>10}  cost={:.6e}",
            format!("{:.2?}", outcome.elapsed),
            outcome.result.cost,
        );
        let result = outcome.into_result();
        if let Some(r) = &reference {
            assert_eq!(r.cost.to_bits(), result.cost.to_bits());
            assert_eq!(r.tree, result.tree);
            assert_eq!(r.counters, result.counters);
        }
        reference = Some(result);
    }
    println!("  → identical plan, cost and counters at every thread count ✓\n");

    // --- 2. Session pooling across repeated optimizations. -----------
    let mut session = Session::new();
    for kind in GraphKind::ALL {
        let w = workload::family_workload(kind, 11, 3);
        OptimizeRequest::new(&w.graph, &w.catalog)
            .with_algorithm(Algorithm::DpSub)
            .run_in(&mut session)?;
    }
    println!(
        "session pooled {} runs holding {} bytes of reusable buffers\n",
        session.runs(),
        session.pooled_bytes(),
    );

    // --- 3. A batch of queries, one worker thread each. ---------------
    let workloads: Vec<_> = (0..6)
        .map(|i| workload::family_workload(GraphKind::ALL[i % 4], 8 + i % 3, i as u64))
        .collect();
    let queries: Vec<_> = workloads.iter().map(|w| (&w.graph, &w.catalog)).collect();
    let results = Optimizer::new().optimize_batch(&queries);
    println!("batch of {} queries:", results.len());
    for (i, r) in results.iter().enumerate() {
        let r = r.as_ref().expect("connected workloads optimize");
        println!("  #{i}  cost={:.6e}  {}", r.cost, r.tree);
    }
    Ok(())
}
