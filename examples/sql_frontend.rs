//! The SQL frontend: optimize a conjunctive `SELECT … FROM … WHERE`
//! query end-to-end, including a filter and a complex predicate.
//!
//! Run with: `cargo run --release --example sql_frontend`

use joinopt::core::DpHyp;
use joinopt::prelude::*;
use joinopt::query::parse_sql;

const QUERY: &str = "
    SELECT *
    FROM customer /*+ rows=150000 */  c,
         orders   /*+ rows=1500000 */ o,
         lineitem /*+ rows=6000000 */ l,
         part     /*+ rows=200000 */  p
    WHERE c.custkey = o.custkey      /*+ sel=6.7e-6 */
      AND o.orderkey = l.orderkey    /*+ sel=6.7e-7 */
      AND l.partkey = p.partkey      /*+ sel=5e-6 */
      AND c.mktsegment = 3           /*+ sel=0.2 */   -- filter on customer
      AND l.tax * o.rate = p.margin  /*+ sel=0.01 */  -- complex predicate
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let q = parse_sql(QUERY)?;

    println!(
        "parsed {} relations, {} predicates ({} complex)",
        q.names().len(),
        q.hypergraph.num_edges(),
        q.hypergraph.num_complex_edges()
    );
    println!("filter applied: |customer| = {}", q.catalog.cardinality(0));
    println!();

    // The complex predicate makes this a hypergraph query → DPhyp,
    // invoked directly (the `OptimizeRequest` session API covers binary
    // query graphs only).
    let result = DpHyp.optimize(&q.hypergraph, &q.catalog, &Cout)?;
    println!("optimal plan: {}", q.render_tree(&result.tree));
    println!("cost (C_out): {:.4e}", result.cost);
    println!("counters:     {}", result.counters);
    println!();
    println!("{}", result.tree.explain());
    Ok(())
}
