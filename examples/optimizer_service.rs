//! The optimizer service, end to end:
//!
//! 1. capture borrowed graphs + catalogs into owned, hashable
//!    [`QuerySpec`]s and submit them as a prioritized, multi-tenant
//!    batch;
//! 2. watch the plan cache work — the same logical query relabeled and
//!    resubmitted is answered from the cache, bit-identical to its cold
//!    run, because cache keys are *canonical fingerprints*, not raw
//!    specs;
//! 3. admission control — a tenant over its concurrency limit gets a
//!    typed rejection while its neighbours' requests still run.
//!
//! Run with: `cargo run --release --example optimizer_service`

use joinopt::prelude::*;
use joinopt_cost::workload;
use joinopt_qgraph::bfs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. A mixed, multi-tenant batch. ------------------------------
    let service = OptimizerService::new(ServiceConfig {
        tenant_limit: 2,
        ..ServiceConfig::default()
    });
    let workloads: Vec<_> = (0..4)
        .map(|i| workload::family_workload(GraphKind::ALL[i % 4], 7 + i % 2, i as u64))
        .collect();
    let mut requests: Vec<ServiceRequest> = workloads
        .iter()
        .enumerate()
        .map(|(i, w)| {
            Ok(
                ServiceRequest::new(QuerySpec::capture(&w.graph, &w.catalog)?)
                    .with_tenant(if i % 2 == 0 { "alice" } else { "bob" })
                    .with_priority(if i == 3 {
                        Priority::High
                    } else {
                        Priority::Normal
                    }),
            )
        })
        .collect::<Result<_, OptimizeError>>()?;
    let results = service.submit_batch(&requests);
    println!("batch of {} requests across two tenants:", results.len());
    for (i, r) in results.iter().enumerate() {
        let r = r.as_ref().expect("all within limits");
        println!(
            "  #{i}  tenant={}  algorithm={:?}  cost={:.6e}",
            requests[i].tenant, r.algorithm, r.result.cost
        );
    }

    // --- 2. The cache sees through relabeling. ------------------------
    let w = workload::family_workload(GraphKind::Star, 7, 42);
    let spec = QuerySpec::capture(&w.graph, &w.catalog)?;
    let cold = &service.submit_batch(&[ServiceRequest::new(spec.clone())])[0];
    let cold = cold.as_ref().expect("star optimizes");

    // The same query with its relations renumbered: a different spec,
    // the same canonical fingerprint.
    let order: Vec<usize> = (0..7).rev().collect();
    let renumbered = bfs::renumber(&w.graph, &order);
    let mut catalog = Catalog::with_shape(7, w.graph.num_edges());
    for (new, &old) in order.iter().enumerate() {
        catalog.set_cardinality(new, w.catalog.cardinality(old))?;
    }
    for e in 0..w.graph.num_edges() {
        catalog.set_selectivity(e, w.catalog.selectivity(e))?;
    }
    let relabeled = QuerySpec::capture(&renumbered, &catalog)?;
    assert_ne!(spec, relabeled, "different specs…");
    let warm = &service.submit_batch(&[ServiceRequest::new(relabeled)])[0];
    let warm = warm.as_ref().expect("relabeled star optimizes");
    assert!(warm.cache_hit, "…but the same canonical query");
    println!(
        "\nrelabeled resubmission: cache_hit={} cost={:.6e} (cold {:.6e})",
        warm.cache_hit, warm.result.cost, cold.result.cost
    );
    let stats = service.cache().expect("cache configured").stats();
    println!(
        "cache: {} hits / {} misses / {} stores, {} bytes in {} entries",
        stats.hits, stats.misses, stats.stores, stats.bytes, stats.entries
    );

    // --- 3. Admission control rejects in place. -----------------------
    for _ in 0..3 {
        requests.push(ServiceRequest::new(spec.clone()).with_tenant("alice"));
    }
    let alice: Vec<_> = requests
        .iter()
        .filter(|r| r.tenant == "alice")
        .cloned()
        .collect();
    let results = service.submit_batch(&alice);
    let rejected = results
        .iter()
        .filter(|r| matches!(r, Err(OptimizeError::TenantLimitExceeded { .. })))
        .count();
    println!(
        "\ntenant `alice` sent {} requests against a limit of 2: {} rejected, {} answered",
        alice.len(),
        rejected,
        alice.len() - rejected
    );
    assert_eq!(rejected, alice.len() - 2);
    Ok(())
}
