//! Close the loop: optimize a query, synthesize data matching the
//! catalog, execute the optimal plan AND a greedy plan, and compare
//! *measured* intermediate sizes against the estimates.
//!
//! The example scans seeded random workloads until it finds one where
//! the greedy GOO heuristic picks a genuinely worse plan than the DP
//! optimum, then executes both on synthesized data to show the
//! difference is real, not just estimated.
//!
//! Run with: `cargo run --release --example execute_plan`

use joinopt::exec::{execute, Database};
use joinopt::prelude::*;
use joinopt_cost::workload;
use joinopt_relset::XorShift64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Find a workload where greedy goes wrong (small sizes so the data
    // fits this toy engine).
    let ranges = workload::StatsRanges {
        cardinality: (20.0, 150.0),
        selectivity: (0.01, 0.5),
    };
    let (graph, catalog, optimal, greedy) = (0u64..)
        .find_map(|seed| {
            let mut rng = XorShift64::seed_from_u64(seed);
            let graph = qgraph::generators::random_connected(6, 0.3, &mut rng).ok()?;
            let catalog = workload::random_catalog(&graph, ranges, &mut rng);
            let optimal = OptimizeRequest::new(&graph, &catalog)
                .with_algorithm(Algorithm::DpCcp)
                .run()
                .ok()?
                .into_result();
            let greedy = OptimizeRequest::new(&graph, &catalog)
                .with_algorithm(Algorithm::Goo)
                .run()
                .ok()?
                .into_result();
            (greedy.cost > optimal.cost * 1.3).then_some((graph, catalog, optimal, greedy))
        })
        .expect("the seed space contains greedy traps");

    let db = Database::synthesize(&graph, &catalog, &mut XorShift64::seed_from_u64(2006))?;
    let est = CardinalityEstimator::new(&graph, &catalog)?;

    println!(
        "optimal plan: {}   (estimated C_out = {:.0})",
        optimal.tree, optimal.cost
    );
    println!(
        "greedy plan:  {}   (estimated C_out = {:.0}, {:.2}× optimal)\n",
        greedy.tree,
        greedy.cost,
        greedy.cost / optimal.cost
    );

    let mut measured = Vec::new();
    for (label, tree) in [("optimal", &optimal.tree), ("greedy", &greedy.tree)] {
        let run = execute(&graph, &db, tree)?;
        println!(
            "{label} plan executed: {} result rows, measured C_out = {:.0}",
            run.result_rows,
            run.measured_cout()
        );
        println!(
            "  {:<26} {:>10} {:>10}",
            "intermediate", "estimated", "measured"
        );
        for &(rels, rows) in &run.node_cards {
            if rels.len() < 2 {
                continue;
            }
            println!(
                "  {:<26} {:>10.0} {:>10}",
                rels.to_string(),
                est.set_cardinality(rels),
                rows
            );
        }
        println!();
        measured.push(run.measured_cout());
    }
    println!(
        "measured advantage of the optimal plan: {:.2}× \
         (the estimate-level gap was {:.2}×)",
        measured[1] / measured[0],
        greedy.cost / optimal.cost
    );
    Ok(())
}
