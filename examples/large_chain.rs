//! Scaling demonstration: a 40-relation chain query.
//!
//! Chains are the *sparsest* connected query graphs: only `O(n³)`
//! csg-cmp-pairs exist, so DPccp (and DPsize, whose chain counter is
//! `O(n⁴)`) scale to dozens of relations — while DPsub's `InnerCounter`
//! is `Θ(2ⁿ)` and would need ~4.4·10¹² iterations at n = 40. This
//! example runs DPccp, DPsize and GOO on a 40-way chain and shows the
//! predicted (not executed!) DPsub effort.
//!
//! Run with: `cargo run --release --example large_chain`

use std::time::Instant;

use joinopt::core::formulas;
use joinopt::prelude::*;
use joinopt_cost::workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const N: usize = 40;
    let w = workload::family_workload(GraphKind::Chain, N, 2024);

    println!("chain query with {N} relations\n");

    let mut optimal = f64::NAN;
    for alg in [Algorithm::DpCcp, Algorithm::DpSize] {
        let outcome = OptimizeRequest::new(&w.graph, &w.catalog)
            .with_algorithm(alg)
            .run()?;
        println!(
            "{:<8} time={:<12} inner={:<10} cost={:.4e}",
            alg.orderer(&w.graph).name(),
            format!("{:.2?}", outcome.elapsed),
            outcome.result.counters.inner,
            outcome.result.cost
        );
        optimal = outcome.result.cost;
    }

    let start = Instant::now();
    let greedy = OptimizeRequest::new(&w.graph, &w.catalog)
        .with_algorithm(Algorithm::Goo)
        .run()?
        .into_result();
    println!(
        "{:<8} time={:<12} inner={:<10} cost={:.4e}  ({:.2}× optimal)",
        "GOO",
        format!("{:.2?}", start.elapsed()),
        greedy.counters.inner,
        greedy.cost,
        greedy.cost / optimal
    );

    let predicted = formulas::dpsub_inner(GraphKind::Chain, N as u64);
    println!(
        "\nDPsub (not run): predicted InnerCounter = {predicted} (≈ {:.1e});",
        predicted as f64
    );
    println!(
        "at 10⁹ iterations/second that is ≈ {:.0} hours — the exponential \
         blow-up the paper's Section 2.4 tables document.",
        predicted as f64 / 1e9 / 3600.0
    );
    Ok(())
}
