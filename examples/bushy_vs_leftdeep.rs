//! How much does *bushy* enumeration buy over the classical left-deep
//! (Selinger) search space?
//!
//! The paper's premise is that optimal **bushy** trees are worth their
//! larger search space. This example sweeps random workloads, optimizes
//! each with the left-deep-restricted DP and with DPccp, and reports the
//! cost-ratio distribution, plus the greedy GOO heuristic for context.
//!
//! Run with: `cargo run --release --example bushy_vs_leftdeep`

use joinopt::prelude::*;
use joinopt_cost::workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const TRIALS: u64 = 200;
    const N: usize = 10;

    let mut ld_ratios = Vec::new();
    let mut goo_ratios = Vec::new();
    let mut bushy_optimal_shapes = 0usize;

    for seed in 0..TRIALS {
        let w = workload::random_workload(N, 0.25, seed);
        let run = |alg: Algorithm| {
            OptimizeRequest::new(&w.graph, &w.catalog)
                .with_algorithm(alg)
                .run()
                .map(OptimizeOutcome::into_result)
        };
        let bushy = run(Algorithm::DpCcp)?;
        let ld = run(Algorithm::DpSizeLeftDeep)?;
        let goo = run(Algorithm::Goo)?;
        ld_ratios.push(ld.cost / bushy.cost);
        goo_ratios.push(goo.cost / bushy.cost);
        if bushy.tree.is_properly_bushy() {
            bushy_optimal_shapes += 1;
        }
    }

    let summarize = |label: &str, ratios: &mut Vec<f64>| {
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
        let pick = |q: f64| ratios[((ratios.len() - 1) as f64 * q) as usize];
        let worse = ratios.iter().filter(|&&r| r > 1.001).count();
        println!(
            "{label:<22} median {:+.2}%  p90 {:+.2}%  max ×{:.2}   ({worse}/{} strictly worse)",
            (pick(0.5) - 1.0) * 100.0,
            (pick(0.9) - 1.0) * 100.0,
            pick(1.0),
            ratios.len(),
        );
    };

    println!(
        "{TRIALS} random workloads, n = {N} relations, density 0.25, C_out model\n\
         cost relative to the optimal bushy plan (DPccp):\n"
    );
    summarize("optimal left-deep", &mut ld_ratios);
    summarize("GOO greedy (bushy)", &mut goo_ratios);
    println!(
        "\nthe optimal plan was properly bushy (two composite operands \
         somewhere) in {bushy_optimal_shapes}/{TRIALS} workloads"
    );
    Ok(())
}
