//! Complex (multi-relation) join predicates — the hypergraph extension.
//!
//! A predicate like `R1.a + R2.b = R3.c` cannot be attached to a single
//! graph edge: it only becomes applicable once `{R1, R2}` are joined.
//! DPccp's enumeration machinery generalizes to hypergraphs (DPhyp); this
//! example optimizes a query whose shape *forces* partial join orders and
//! shows the difference against naively treating the predicate as a
//! clique of binary edges.
//!
//! Run with: `cargo run --release --example complex_predicates`

use joinopt::core::DpHyp;
use joinopt::prelude::*;
use joinopt::qgraph::hypergraph::Hypergraph;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Five relations. Simple predicates chain part of the query;
    // two complex predicates tie the rest together:
    //   sales ⋈ currency   (simple)
    //   sales ⋈ customer   (simple)
    //   sales.amount * currency.rate = budget.limit    → ({0,1}, {3})
    //   customer.region + budget.region = audit.region → ({2,3}, {4})
    let names = ["sales", "currency", "customer", "budget", "audit"];
    let mut h = Hypergraph::new(5)?;
    let e0 = h.add_edge(RelSet::single(0), RelSet::single(1))?;
    let e1 = h.add_edge(RelSet::single(0), RelSet::single(2))?;
    let e2 = h.add_edge(RelSet::from_indices([0, 1]), RelSet::single(3))?;
    let e3 = h.add_edge(RelSet::from_indices([2, 3]), RelSet::single(4))?;

    let mut catalog = Catalog::with_shape(5, 4);
    catalog.set_cardinality(0, 5_000_000.0)?; // sales
    catalog.set_cardinality(1, 200.0)?; // currency
    catalog.set_cardinality(2, 50_000.0)?; // customer
    catalog.set_cardinality(3, 1_000.0)?; // budget
    catalog.set_cardinality(4, 500.0)?; // audit
    catalog.set_selectivity(e0, 1.0 / 200.0)?;
    catalog.set_selectivity(e1, 1.0 / 50_000.0)?;
    catalog.set_selectivity(e2, 1.0 / 1_000.0)?;
    catalog.set_selectivity(e3, 1.0 / 500.0)?;

    // Hypergraph queries run on DPhyp directly: `OptimizeRequest` (the
    // session API) covers binary query graphs, where the DP table can be
    // direct-addressed and the DPsub family has its parallel path.
    let result = DpHyp.optimize(&h, &catalog, &Cout)?;

    println!("query hypergraph: {h}");
    for (i, name) in names.iter().enumerate() {
        println!("  R{i} = {name}");
    }
    println!();
    println!("optimal plan: {}", result.tree);
    println!("cost:         {:.3e}", result.cost);
    println!("counters:     {}", result.counters);
    println!();
    println!("{}", result.tree.explain());

    // Structural guarantee: budget (R3) joins only after sales⋈currency,
    // audit (R4) only after customer and budget are both present.
    fn no_early_joins(t: &JoinTree) {
        if let JoinTree::Join { left, right, .. } = t {
            let (l, r) = (left.relations(), right.relations());
            for (single, needs) in [(3usize, [0usize, 1]), (4, [2, 3])] {
                for (a, b) in [(l, r), (r, l)] {
                    if a == RelSet::single(single) {
                        assert!(
                            needs.iter().all(|&x| b.contains(x)),
                            "R{single} joined before its predicate was applicable"
                        );
                    }
                }
            }
            no_early_joins(left);
            no_early_joins(right);
        }
    }
    no_early_joins(&result.tree);
    println!("verified: every join is backed by an applicable predicate ✓");
    Ok(())
}
