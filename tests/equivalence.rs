//! Cross-algorithm equivalence: every exact algorithm must produce a
//! plan of identical optimal cost, on every graph shape, under every
//! cost model, and agree with the independent top-down oracle.

use joinopt::core::exhaustive;
use joinopt::core::{DpSizeNaive, DpSubUnfiltered};
use joinopt::prelude::*;
use joinopt_cost::workload;

fn exact_algorithms() -> Vec<&'static dyn JoinOrderer> {
    vec![&DpSize, &DpSizeNaive, &DpSub, &DpSubUnfiltered, &DpCcp]
}

fn assert_close(a: f64, b: f64, ctx: &str) {
    let tol = 1e-9 * a.abs().max(b.abs()).max(1.0);
    assert!((a - b).abs() <= tol, "{ctx}: {a} vs {b}");
}

#[test]
fn all_exact_algorithms_agree_on_families() {
    for kind in GraphKind::ALL {
        for n in 2..=9 {
            for seed in 0..3 {
                let w = workload::family_workload(kind, n, seed);
                let reference = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
                for alg in exact_algorithms() {
                    let r = alg.optimize(&w.graph, &w.catalog, &Cout).unwrap();
                    assert_close(
                        r.cost,
                        reference.cost,
                        &format!("{} on {kind} n={n} seed={seed}", alg.name()),
                    );
                    // CsgCmpPairCounter is a graph invariant.
                    assert_eq!(
                        r.counters.csg_cmp_pairs,
                        reference.counters.csg_cmp_pairs,
                        "{} pair counter on {kind} n={n}",
                        alg.name()
                    );
                }
            }
        }
    }
}

#[test]
fn agreement_with_oracle_on_random_graphs() {
    for seed in 0..25 {
        let w = workload::random_workload(8, (seed % 10) as f64 / 10.0, seed);
        let want = exhaustive::optimal_cost(&w.graph, &w.catalog, &Cout).unwrap();
        for alg in exact_algorithms() {
            let r = alg.optimize(&w.graph, &w.catalog, &Cout).unwrap();
            assert_close(r.cost, want, &format!("{} seed={seed}", alg.name()));
        }
    }
}

#[test]
fn agreement_under_every_cost_model() {
    let models: [&dyn CostModel; 5] = [
        &Cout,
        &NestedLoopJoin,
        &HashJoin,
        &SortMergeJoin,
        &MinOverPhysical,
    ];
    for seed in 0..6 {
        let w = workload::random_workload(7, 0.35, seed);
        for model in models {
            let want = exhaustive::optimal_cost(&w.graph, &w.catalog, model).unwrap();
            for alg in exact_algorithms() {
                let r = alg.optimize(&w.graph, &w.catalog, model).unwrap();
                assert_close(
                    r.cost,
                    want,
                    &format!("{} under {} seed={seed}", alg.name(), model.name()),
                );
            }
        }
    }
}

#[test]
fn plans_are_structurally_valid() {
    for kind in GraphKind::ALL {
        let w = workload::family_workload(kind, 10, 3);
        for alg in exact_algorithms() {
            let r = alg.optimize(&w.graph, &w.catalog, &Cout).unwrap();
            let tree = &r.tree;
            assert_eq!(tree.relations(), w.graph.all_relations(), "{}", alg.name());
            assert_eq!(tree.num_joins(), 9, "{}", alg.name());
            assert_eq!(tree.cost(), r.cost, "{}", alg.name());
            // No cross products: every join's operands must be connected
            // in the query graph.
            assert_no_cross_products(&w.graph, tree, alg.name());
        }
    }
}

fn assert_no_cross_products(g: &QueryGraph, tree: &JoinTree, alg: &str) {
    if let JoinTree::Join { left, right, .. } = tree {
        assert!(
            g.sets_connected(left.relations(), right.relations()),
            "{alg}: cross product {} × {}",
            left.relations(),
            right.relations()
        );
        assert!(
            g.is_connected_set(left.relations()),
            "{alg}: disconnected operand {}",
            left.relations()
        );
        assert!(
            g.is_connected_set(right.relations()),
            "{alg}: disconnected operand {}",
            right.relations()
        );
        assert_no_cross_products(g, left, alg);
        assert_no_cross_products(g, right, alg);
    }
}

#[test]
fn grid_and_tree_topologies() {
    // Shapes outside the four families exercise the general machinery.
    use joinopt::qgraph::{bfs, generators};
    use joinopt_relset::XorShift64;

    let grid = generators::grid(3, 3).unwrap();
    let (grid, _) = bfs::bfs_renumber(&grid).unwrap();
    let mut rng = XorShift64::seed_from_u64(5);
    let tree = generators::random_tree(9, &mut rng).unwrap();

    for g in [grid, tree] {
        let cat =
            workload::random_catalog(&g, joinopt_cost::workload::StatsRanges::default(), &mut rng);
        let want = exhaustive::optimal_cost(&g, &cat, &Cout).unwrap();
        for alg in exact_algorithms() {
            let r = alg.optimize(&g, &cat, &Cout).unwrap();
            assert_close(r.cost, want, alg.name());
        }
    }
}

#[test]
fn deterministic_across_runs() {
    let w = workload::family_workload(GraphKind::Cycle, 9, 99);
    for alg in exact_algorithms() {
        let a = alg.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        let b = alg.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.tree, b.tree, "{} plan not deterministic", alg.name());
    }
}
