//! Corpus regression replay: every minimized repro committed under
//! `tests/corpus/` runs through the full conformance check (differential
//! oracle + metamorphic properties) on every build.
//!
//! The directory is the fuzzer's long-term memory. When `joinopt fuzz`
//! finds and minimizes a divergence, the repro's DSL goes here so the
//! bug stays fixed; the seed files cover every generator family plus
//! the structural edge cases (a disconnected graph, a single relation).

use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus/ exists")
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "query"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_is_seeded() {
    let files = corpus_files();
    assert!(
        files.len() >= 10,
        "tests/corpus/ must hold at least 10 .query repros, found {}",
        files.len()
    );
}

#[test]
fn corpus_covers_every_family_and_edge_case() {
    let names: Vec<String> = corpus_files()
        .iter()
        .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
        .collect();
    for required in [
        "chain",
        "cycle",
        "star",
        "clique",
        "grid",
        "tree",
        "random",
        "disconnected",
        "single",
    ] {
        assert!(
            names.iter().any(|n| n.contains(required)),
            "no corpus file covers `{required}`: {names:?}"
        );
    }
}

#[test]
fn every_corpus_entry_replays_clean() {
    for path in corpus_files() {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        joinopt_conformance::check_dsl(&text).unwrap_or_else(|d| panic!("{}: {d}", path.display()));
    }
}

#[test]
fn every_corpus_entry_hits_the_plan_cache_bit_identically() {
    // The acceptance bar for the plan cache: a warm lookup of any
    // committed repro returns cost bits and plan shape bit-identical
    // to its cold run (connected multi-relation instances; the check
    // skips the structural edge cases the service refuses anyway).
    for path in corpus_files() {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let inst = joinopt_conformance::Instance::from_dsl(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        joinopt_conformance::check_cache_replay(&inst)
            .unwrap_or_else(|d| panic!("{}: {d}", path.display()));
    }
}
