//! Three-way counter cross-validation on arbitrary graphs:
//! instrumented runs ⇔ csg-size-profile predictions ⇔ closed forms.
//!
//! The profile predictions are the bridge that extends the paper's
//! analysis beyond the four closed-form families — they must match the
//! measured counters on *every* connected graph.

use joinopt::core::formulas::{
    dpsize_inner_from_profile, dpsize_naive_inner_from_profile, dpsub_inner_from_profile,
    dpsub_unfiltered_inner,
};
use joinopt::core::{DpSizeNaive, DpSubUnfiltered};
use joinopt::prelude::*;
use joinopt::qgraph::csg;
use joinopt::qgraph::profile::CsgProfile;
use joinopt_cost::workload;

#[test]
fn profile_predictions_match_measurements_on_random_graphs() {
    for seed in 0..20 {
        let density = (seed % 10) as f64 / 10.0;
        let w = workload::random_workload(8, density, seed);
        let profile = CsgProfile::compute(&w.graph);

        let size = DpSize.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        assert_eq!(
            u128::from(size.counters.inner),
            dpsize_inner_from_profile(&profile),
            "DPsize seed={seed}"
        );

        let naive = DpSizeNaive.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        assert_eq!(
            u128::from(naive.counters.inner),
            dpsize_naive_inner_from_profile(&profile),
            "DPsize-naive seed={seed}"
        );

        let sub = DpSub.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        assert_eq!(
            u128::from(sub.counters.inner),
            dpsub_inner_from_profile(&profile),
            "DPsub seed={seed}"
        );

        let unf = DpSubUnfiltered
            .optimize(&w.graph, &w.catalog, &Cout)
            .unwrap();
        assert_eq!(
            u128::from(unf.counters.inner),
            dpsub_unfiltered_inner(8),
            "DPsub-nofilter seed={seed}"
        );

        let ccp = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        assert_eq!(
            ccp.counters.inner,
            csg::count_ccp_distinct(&w.graph),
            "DPccp seed={seed}"
        );

        // The pair counter is identical across all exact algorithms.
        for r in [&size, &naive, &sub, &unf, &ccp] {
            assert_eq!(
                r.counters.csg_cmp_pairs, ccp.counters.csg_cmp_pairs,
                "seed={seed}"
            );
        }
    }
}

#[test]
fn table_size_equals_csg_count() {
    // Every exact no-cross-product algorithm materializes plans for
    // exactly the connected subsets.
    for seed in 0..10 {
        let w = workload::random_workload(9, 0.3, seed);
        let want = csg::count_csg(&w.graph) as usize;
        for alg in [&DpSize as &dyn JoinOrderer, &DpSub, &DpCcp] {
            let r = alg.optimize(&w.graph, &w.catalog, &Cout).unwrap();
            assert_eq!(r.table_size, want, "{} seed={seed}", alg.name());
        }
    }
}

#[test]
fn dpccp_is_optimal_enumeration() {
    // DPccp's InnerCounter equals #ccp/2 — the lower bound — while the
    // other algorithms waste iterations on every non-clique shape.
    for kind in [GraphKind::Chain, GraphKind::Cycle, GraphKind::Star] {
        let w = workload::family_workload(kind, 10, 0);
        let ccp = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        let size = DpSize.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        let sub = DpSub.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        assert!(ccp.counters.inner < size.counters.inner, "{kind}");
        assert!(ccp.counters.inner < sub.counters.inner, "{kind}");
        assert_eq!(ccp.counters.inner, ccp.counters.ono_lohman, "{kind}");
    }
}

#[test]
fn hit_rates_reflect_search_space_density() {
    // On chains DPsub's tests almost always fail; on cliques they almost
    // always succeed.
    let chain = workload::family_workload(GraphKind::Chain, 12, 0);
    let clique = workload::family_workload(GraphKind::Clique, 12, 0);
    let chain_r = DpSub.optimize(&chain.graph, &chain.catalog, &Cout).unwrap();
    let clique_r = DpSub
        .optimize(&clique.graph, &clique.catalog, &Cout)
        .unwrap();
    assert!(
        chain_r.counters.hit_rate() < 0.05,
        "{}",
        chain_r.counters.hit_rate()
    );
    assert!(
        clique_r.counters.hit_rate() > 0.45,
        "{}",
        clique_r.counters.hit_rate()
    );
}
