//! Integration tests for the baseline strategies and the façade:
//! left-deep DP, IKKBZ, IDP, GOO and `Algorithm`/`Optimizer` dispatch.

use joinopt::core::greedy::Goo;
use joinopt::core::{Idp, IkkBz};
use joinopt::prelude::*;
use joinopt_cost::workload;
use joinopt_relset::XorShift64;

#[test]
fn strategy_cost_ordering_holds() {
    // optimal bushy ≤ IDP(k) ≤ … and optimal bushy ≤ optimal left-deep,
    // with IKKBZ == optimal left-deep on trees.
    let mut rng = XorShift64::seed_from_u64(31);
    for trial in 0..10 {
        let g = joinopt::qgraph::generators::random_tree(9, &mut rng).unwrap();
        let cat =
            workload::random_catalog(&g, joinopt_cost::workload::StatsRanges::default(), &mut rng);
        let bushy = DpCcp.optimize(&g, &cat, &Cout).unwrap().cost;
        let ld = DpSizeLeftDeep.optimize(&g, &cat, &Cout).unwrap().cost;
        let ik = IkkBz.optimize(&g, &cat).unwrap().cost;
        let idp = Idp::with_block_size(4)
            .optimize(&g, &cat, &Cout)
            .unwrap()
            .cost;
        let goo = Goo.optimize(&g, &cat, &Cout).unwrap().cost;
        let tol = 1e-9 * bushy.abs().max(1.0);
        assert!(bushy <= ld + tol, "trial {trial}");
        assert!(
            (ik - ld).abs() <= 1e-9 * ld.abs().max(1.0),
            "trial {trial}: IKKBZ vs LD-DP"
        );
        assert!(bushy <= idp + tol, "trial {trial}");
        assert!(bushy <= goo + tol, "trial {trial}");
    }
}

#[test]
fn facade_dispatches_every_algorithm() {
    let w = workload::family_workload(GraphKind::Cycle, 8, 5);
    let optimal = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap().cost;
    for alg in Algorithm::CONCRETE {
        let r = Optimizer::new()
            .with_algorithm(alg)
            .optimize(&w.graph, &w.catalog)
            .unwrap_or_else(|e| panic!("{alg:?} failed: {e}"));
        assert_eq!(r.tree.relations(), w.graph.all_relations(), "{alg:?}");
        // Exact algorithms hit the optimum; cross-product DP may beat it;
        // heuristics may exceed it — but nothing beats cross-product DP's
        // floor or produces nonsense.
        assert!(r.cost.is_finite() && r.cost > 0.0, "{alg:?}");
        match alg {
            Algorithm::DpSize
            | Algorithm::DpSizeNaive
            | Algorithm::DpSub
            | Algorithm::DpSubUnfiltered
            | Algorithm::TopDown
            | Algorithm::DpCcp
            | Algorithm::DpConv => {
                assert!(
                    (r.cost - optimal).abs() <= 1e-9 * optimal,
                    "{alg:?}: {} vs {}",
                    r.cost,
                    optimal
                );
            }
            Algorithm::DpSubCrossProducts => assert!(r.cost <= optimal + 1e-9),
            Algorithm::DpSizeLeftDeep
            | Algorithm::Idp
            | Algorithm::SimulatedAnnealing
            | Algorithm::Goo => {
                assert!(r.cost >= optimal - 1e-9 * optimal)
            }
            Algorithm::Auto => unreachable!("CONCRETE excludes Auto"),
        }
    }
}

#[test]
fn idp_interpolates_between_greedy_and_exact() {
    // Average plan quality must weakly improve with the block size.
    let mut avg = Vec::new();
    for k in [2usize, 4, 8, 12] {
        let mut sum = 0.0;
        for seed in 0..15 {
            let w = workload::random_workload(12, 0.3, seed);
            let idp = Idp::with_block_size(k)
                .optimize(&w.graph, &w.catalog, &Cout)
                .unwrap();
            let opt = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
            sum += idp.cost / opt.cost;
        }
        avg.push(sum / 15.0);
    }
    assert!(
        avg[3] <= avg[0] + 1e-9,
        "k=12 ({}) worse than k=2 ({})",
        avg[3],
        avg[0]
    );
    // k = 12 ≥ n ⇒ exactly optimal.
    assert!(
        (avg[3] - 1.0).abs() < 1e-9,
        "k ≥ n must be exact, got {}",
        avg[3]
    );
}

#[test]
fn ikkbz_handles_every_tree_family_shape() {
    // Chains and stars are trees; IKKBZ must accept them and match the
    // left-deep DP; cycles/cliques must be rejected.
    for n in 2..=12 {
        for (kind, is_tree) in [
            (GraphKind::Chain, true),
            (GraphKind::Star, true),
            (GraphKind::Cycle, n <= 2),
            (GraphKind::Clique, n <= 2),
        ] {
            let w = workload::family_workload(kind, n, 3);
            let result = IkkBz.optimize(&w.graph, &w.catalog);
            assert_eq!(result.is_ok(), is_tree, "{kind} n={n}");
            if let Ok(r) = result {
                let dp = DpSizeLeftDeep
                    .optimize(&w.graph, &w.catalog, &Cout)
                    .unwrap();
                assert!(
                    (r.cost - dp.cost).abs() <= 1e-9 * dp.cost.abs().max(1.0),
                    "{kind} n={n}"
                );
            }
        }
    }
}

#[test]
fn counters_scale_with_strategy_effort() {
    // GOO does O(n³) pair probes, left-deep O(#csg·n), full DPsize much
    // more on cliques — sanity-check the instrumentation ordering.
    let w = workload::family_workload(GraphKind::Clique, 11, 0);
    let goo = Goo.optimize(&w.graph, &w.catalog, &Cout).unwrap();
    let ld = DpSizeLeftDeep
        .optimize(&w.graph, &w.catalog, &Cout)
        .unwrap();
    let full = DpSize.optimize(&w.graph, &w.catalog, &Cout).unwrap();
    assert!(goo.counters.inner < ld.counters.inner);
    assert!(ld.counters.inner < full.counters.inner);
}
