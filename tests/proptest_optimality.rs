//! Randomized end-to-end tests: on arbitrary random workloads, the
//! three algorithms agree with each other and with the oracle, plans are
//! valid cross-product-free bushy trees, and counters obey their
//! invariants (seeded, deterministic).

use joinopt::core::exhaustive;
use joinopt::prelude::*;
use joinopt_cost::workload;
use joinopt_relset::XorShift64;

const CASES: usize = 48;

struct Case {
    n: usize,
    density: f64,
    seed: u64,
}

fn arb_case(rng: &mut XorShift64) -> Case {
    Case {
        n: rng.gen_range(2..9),
        density: rng.gen_range(0..11) as f64 / 10.0,
        seed: rng.next_u64(),
    }
}

#[test]
fn algorithms_agree_with_oracle() {
    let mut rng = XorShift64::seed_from_u64(601);
    for _ in 0..CASES {
        let case = arb_case(&mut rng);
        let w = workload::random_workload(case.n, case.density, case.seed);
        let want = exhaustive::optimal_cost(&w.graph, &w.catalog, &Cout).unwrap();
        for alg in [&DpSize as &dyn JoinOrderer, &DpSub, &DpCcp] {
            let r = alg.optimize(&w.graph, &w.catalog, &Cout).unwrap();
            let tol = 1e-9 * want.abs().max(1.0);
            assert!(
                (r.cost - want).abs() <= tol,
                "{}: {} vs oracle {}",
                alg.name(),
                r.cost,
                want
            );
        }
    }
}

#[test]
fn plans_cover_all_relations_without_cross_products() {
    let mut rng = XorShift64::seed_from_u64(602);
    for _ in 0..CASES {
        let case = arb_case(&mut rng);
        let w = workload::random_workload(case.n, case.density, case.seed);
        let r = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        assert_eq!(r.tree.relations(), w.graph.all_relations());
        assert_eq!(r.tree.num_joins(), case.n - 1);
        // Walk the tree: every join must connect its operands.
        fn check(g: &QueryGraph, t: &JoinTree) -> bool {
            match t {
                JoinTree::Scan { .. } => true,
                JoinTree::Join { left, right, .. } => {
                    g.sets_connected(left.relations(), right.relations())
                        && check(g, left)
                        && check(g, right)
                }
            }
        }
        assert!(check(&w.graph, &r.tree));
    }
}

#[test]
fn counter_invariants() {
    let mut rng = XorShift64::seed_from_u64(603);
    for _ in 0..CASES {
        let case = arb_case(&mut rng);
        let w = workload::random_workload(case.n, case.density, case.seed);
        for alg in [&DpSize as &dyn JoinOrderer, &DpSub, &DpCcp] {
            let r = alg.optimize(&w.graph, &w.catalog, &Cout).unwrap();
            let c = r.counters;
            assert_eq!(c.csg_cmp_pairs, 2 * c.ono_lohman, "{}", alg.name());
            // InnerCounter dominates the useful work: for DPccp inner
            // counts unordered pairs, for the others ordered ones.
            if alg.name() == "DPccp" {
                assert_eq!(c.inner, c.ono_lohman);
            } else {
                assert!(c.inner >= c.ono_lohman, "{}", alg.name());
            }
        }
    }
}

#[test]
fn costs_are_monotone_in_cardinalities() {
    // Scaling every base cardinality up cannot make the optimum cheaper.
    let mut rng = XorShift64::seed_from_u64(604);
    for _ in 0..CASES {
        let case = arb_case(&mut rng);
        let w = workload::random_workload(case.n, case.density, case.seed);
        let base = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap().cost;
        let mut bigger = w.catalog.clone();
        for i in 0..case.n {
            bigger
                .set_cardinality(i, w.catalog.cardinality(i) * 2.0)
                .unwrap();
        }
        let scaled = DpCcp.optimize(&w.graph, &bigger, &Cout).unwrap().cost;
        assert!(scaled >= base - 1e-9 * base.abs().max(1.0));
    }
}

#[test]
fn estimator_consistency_full_set() {
    // The optimizer's reported cardinality equals the estimator's
    // direct full-set estimate, independent of the plan found.
    let mut rng = XorShift64::seed_from_u64(605);
    for _ in 0..CASES {
        let case = arb_case(&mut rng);
        let w = workload::random_workload(case.n, case.density, case.seed);
        let est = CardinalityEstimator::new(&w.graph, &w.catalog).unwrap();
        let direct = est.set_cardinality(w.graph.all_relations());
        let r = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        let tol = 1e-6 * direct.abs().max(1e-300);
        assert!(
            (r.cardinality - direct).abs() <= tol,
            "{} vs {}",
            r.cardinality,
            direct
        );
    }
}
