//! Property-based end-to-end tests: on arbitrary random workloads, the
//! three algorithms agree with each other and with the oracle, plans are
//! valid cross-product-free bushy trees, and counters obey their
//! invariants.

use joinopt::core::exhaustive;
use joinopt::prelude::*;
use joinopt_cost::workload;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Case {
    n: usize,
    density: f64,
    seed: u64,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (2usize..=8, 0u8..=10, any::<u64>())
        .prop_map(|(n, d, seed)| Case { n, density: f64::from(d) / 10.0, seed })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn algorithms_agree_with_oracle(case in arb_case()) {
        let w = workload::random_workload(case.n, case.density, case.seed);
        let want = exhaustive::optimal_cost(&w.graph, &w.catalog, &Cout).unwrap();
        for alg in [&DpSize as &dyn JoinOrderer, &DpSub, &DpCcp] {
            let r = alg.optimize(&w.graph, &w.catalog, &Cout).unwrap();
            let tol = 1e-9 * want.abs().max(1.0);
            prop_assert!(
                (r.cost - want).abs() <= tol,
                "{}: {} vs oracle {}", alg.name(), r.cost, want
            );
        }
    }

    #[test]
    fn plans_cover_all_relations_without_cross_products(case in arb_case()) {
        let w = workload::random_workload(case.n, case.density, case.seed);
        let r = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        prop_assert_eq!(r.tree.relations(), w.graph.all_relations());
        prop_assert_eq!(r.tree.num_joins(), case.n - 1);
        // Walk the tree: every join must connect its operands.
        fn check(g: &QueryGraph, t: &JoinTree) -> bool {
            match t {
                JoinTree::Scan { .. } => true,
                JoinTree::Join { left, right, .. } => {
                    g.sets_connected(left.relations(), right.relations())
                        && check(g, left)
                        && check(g, right)
                }
            }
        }
        prop_assert!(check(&w.graph, &r.tree));
    }

    #[test]
    fn counter_invariants(case in arb_case()) {
        let w = workload::random_workload(case.n, case.density, case.seed);
        for alg in [&DpSize as &dyn JoinOrderer, &DpSub, &DpCcp] {
            let r = alg.optimize(&w.graph, &w.catalog, &Cout).unwrap();
            let c = r.counters;
            prop_assert_eq!(c.csg_cmp_pairs, 2 * c.ono_lohman, "{}", alg.name());
            // InnerCounter dominates the useful work: for DPccp inner
            // counts unordered pairs, for the others ordered ones.
            if alg.name() == "DPccp" {
                prop_assert_eq!(c.inner, c.ono_lohman);
            } else {
                prop_assert!(c.inner >= c.ono_lohman, "{}", alg.name());
            }
        }
    }

    #[test]
    fn costs_are_monotone_in_cardinalities(case in arb_case()) {
        // Scaling every base cardinality up cannot make the optimum cheaper.
        let w = workload::random_workload(case.n, case.density, case.seed);
        let base = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap().cost;
        let mut bigger = w.catalog.clone();
        for i in 0..case.n {
            bigger.set_cardinality(i, w.catalog.cardinality(i) * 2.0).unwrap();
        }
        let scaled = DpCcp.optimize(&w.graph, &bigger, &Cout).unwrap().cost;
        prop_assert!(scaled >= base - 1e-9 * base.abs().max(1.0));
    }

    #[test]
    fn estimator_consistency_full_set(case in arb_case()) {
        // The optimizer's reported cardinality equals the estimator's
        // direct full-set estimate, independent of the plan found.
        let w = workload::random_workload(case.n, case.density, case.seed);
        let est = CardinalityEstimator::new(&w.graph, &w.catalog).unwrap();
        let direct = est.set_cardinality(w.graph.all_relations());
        let r = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        let tol = 1e-6 * direct.abs().max(1e-300);
        prop_assert!((r.cardinality - direct).abs() <= tol,
            "{} vs {}", r.cardinality, direct);
    }
}
