//! Reproduction of the paper's Figure 3 ("Size of the search space for
//! different graph structures"): every cell of the table, asserted
//! verbatim.
//!
//! The full table (n up to 20) is checked against the closed forms; the
//! cells that are cheap enough to *measure* in a debug test run are also
//! checked against the instrumented algorithms, so formula and
//! implementation vouch for each other.

use joinopt::core::formulas::{dpsize_inner, dpsub_inner};
use joinopt::prelude::*;
use joinopt::qgraph::formulas::ccp_distinct;
use joinopt_cost::workload;

/// One Figure 3 row: (n, #ccp, DPsub, DPsize).
type Row = (u64, u128, u128, u128);

const CHAIN: [Row; 5] = [
    (2, 1, 2, 1),
    (5, 20, 84, 73),
    (10, 165, 3962, 1135),
    (15, 560, 130_798, 5628),
    (20, 1330, 4_193_840, 17_545),
];

const CYCLE: [Row; 5] = [
    (2, 1, 2, 1),
    (5, 40, 140, 120),
    (10, 405, 11_062, 2225),
    (15, 1470, 523_836, 11_760),
    (20, 3610, 22_019_294, 37_900),
];

const STAR: [Row; 5] = [
    (2, 1, 2, 1),
    (5, 32, 130, 110),
    (10, 2304, 38_342, 57_888),
    (15, 114_688, 9_533_170, 57_305_929),
    (20, 4_980_736, 2_323_474_358, 59_892_991_338),
];

const CLIQUE: [Row; 5] = [
    (2, 1, 2, 1),
    (5, 90, 180, 280),
    (10, 28_501, 57_002, 306_991),
    (15, 7_141_686, 14_283_372, 307_173_877),
    (20, 1_742_343_625, 3_484_687_250, 309_338_182_241),
];

fn rows(kind: GraphKind) -> &'static [Row; 5] {
    match kind {
        GraphKind::Chain => &CHAIN,
        GraphKind::Cycle => &CYCLE,
        GraphKind::Star => &STAR,
        GraphKind::Clique => &CLIQUE,
    }
}

#[test]
fn figure3_closed_forms_reproduce_every_cell() {
    for kind in GraphKind::ALL {
        for &(n, ccp, dpsub, dpsize) in rows(kind) {
            assert_eq!(ccp_distinct(kind, n), ccp, "#ccp {kind} n={n}");
            assert_eq!(dpsub_inner(kind, n), dpsub, "DPsub {kind} n={n}");
            assert_eq!(dpsize_inner(kind, n), dpsize, "DPsize {kind} n={n}");
        }
    }
}

#[test]
fn figure3_measured_counters_match_where_feasible() {
    // Limit measurement to cells below ~10⁶ inner iterations so the test
    // stays fast in debug builds; the formulas (asserted above, and
    // cross-validated against measurements in equivalence tests) carry
    // the rest of the table.
    const BUDGET: u128 = 1_000_000;
    for kind in GraphKind::ALL {
        for &(n, ccp, dpsub, dpsize) in rows(kind) {
            let w = workload::family_workload(kind, n as usize, 0);
            if dpsize <= BUDGET {
                let r = DpSize.optimize(&w.graph, &w.catalog, &Cout).unwrap();
                assert_eq!(u128::from(r.counters.inner), dpsize, "DPsize {kind} n={n}");
                assert_eq!(u128::from(r.counters.ono_lohman), ccp, "ccp {kind} n={n}");
            }
            if dpsub <= BUDGET {
                let r = DpSub.optimize(&w.graph, &w.catalog, &Cout).unwrap();
                assert_eq!(u128::from(r.counters.inner), dpsub, "DPsub {kind} n={n}");
                assert_eq!(u128::from(r.counters.ono_lohman), ccp, "ccp {kind} n={n}");
            }
            if ccp <= BUDGET {
                let r = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
                assert_eq!(u128::from(r.counters.inner), ccp, "DPccp {kind} n={n}");
            }
        }
    }
}

#[test]
fn figure3_qualitative_claims() {
    // Section 2.4's observations, as executable assertions over the table.
    for n in [10u64, 15, 20] {
        // 1. Chains/cycles: DPsize ≪ DPsub.
        assert!(dpsize_inner(GraphKind::Chain, n) < dpsub_inner(GraphKind::Chain, n) / 2);
        assert!(dpsize_inner(GraphKind::Cycle, n) < dpsub_inner(GraphKind::Cycle, n) / 2);
        // 2. Stars/cliques: DPsub ≪ DPsize.
        assert!(dpsub_inner(GraphKind::Star, n) < dpsize_inner(GraphKind::Star, n));
        assert!(dpsub_inner(GraphKind::Clique, n) < dpsize_inner(GraphKind::Clique, n));
        // 3. Except for cliques, #ccp is orders of magnitude below both.
        for kind in [GraphKind::Chain, GraphKind::Cycle, GraphKind::Star] {
            assert!(
                ccp_distinct(kind, n) * 10 < dpsub_inner(kind, n).min(dpsize_inner(kind, n)) * 10
                    && ccp_distinct(kind, n) < dpsub_inner(kind, n) / 2,
                "{kind} n={n}"
            );
        }
        // For cliques DPsub is within 2× of the bound (its inner counter
        // is exactly 2 × #ccp there).
        assert_eq!(
            dpsub_inner(GraphKind::Clique, n),
            2 * ccp_distinct(GraphKind::Clique, n)
        );
    }
}
