//! Every file shipped in `workloads/` must parse, optimize, and produce
//! a plan that all exact algorithms agree on — the files double as
//! documentation and as an integration corpus.

use std::path::PathBuf;

use joinopt::core::DpHyp;
use joinopt::prelude::*;
use joinopt::query::{parse, parse_sql, ParsedQuery};

fn workloads_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("workloads")
}

fn load(name: &str) -> ParsedQuery {
    let path = workloads_dir().join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    if name.ends_with(".sql") {
        parse_sql(&text).unwrap_or_else(|e| panic!("{name}: {e}"))
    } else {
        parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"))
    }
}

const ALL_WORKLOADS: [&str; 6] = [
    "tpch_q3_like.sql",
    "tpch_q5_like.sql",
    "star_schema.query",
    "snowflake.query",
    "complex_predicate.query",
    "clique_analytics.query",
];

#[test]
fn every_workload_parses_and_optimizes() {
    for name in ALL_WORKLOADS {
        let q = load(name);
        match q.graph() {
            Some(graph) => {
                let r = Optimizer::new()
                    .optimize(graph, &q.catalog)
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
                assert_eq!(r.tree.num_relations(), q.names().len(), "{name}");
                assert!(r.cost.is_finite() && r.cost > 0.0, "{name}");
            }
            None => {
                let r = DpHyp
                    .optimize(&q.hypergraph, &q.catalog, &Cout)
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
                assert_eq!(r.tree.num_relations(), q.names().len(), "{name}");
            }
        }
    }
}

#[test]
fn exact_algorithms_agree_on_all_simple_workloads() {
    for name in ALL_WORKLOADS {
        let q = load(name);
        let Some(graph) = q.graph() else {
            continue;
        };
        let ccp = DpCcp.optimize(graph, &q.catalog, &Cout).unwrap();
        for alg in [&DpSize as &dyn JoinOrderer, &DpSub] {
            let r = alg.optimize(graph, &q.catalog, &Cout).unwrap();
            let tol = 1e-9 * ccp.cost.abs().max(1.0);
            assert!(
                (r.cost - ccp.cost).abs() <= tol,
                "{name}: {} found {} vs DPccp {}",
                alg.name(),
                r.cost,
                ccp.cost
            );
        }
    }
}

#[test]
fn q5_cycle_shape_is_detected() {
    let q = load("tpch_q5_like.sql");
    let g = q.graph().expect("Q5 predicates are all binary");
    // customer–orders–lineitem–supplier–nation(–customer) plus region:
    // the nation predicates close a cycle.
    assert_eq!(g.num_relations(), 6);
    assert_eq!(g.num_edges(), 6);
    // There is a cycle: more edges than a tree.
    assert!(g.num_edges() > g.num_relations() - 1);
    // The region filter scaled |region| down.
    let region = q.index_of("r").expect("alias r");
    assert!(q.catalog.cardinality(region) < 5.0);
}

#[test]
fn star_schema_optimum_starts_from_selective_dimension() {
    let q = load("star_schema.query");
    let g = q.graph().unwrap();
    let r = DpCcp.optimize(g, &q.catalog, &Cout).unwrap();
    // Star queries admit only plans where the fact table participates
    // from the first join (every predicate touches it).
    let leaves = r.tree.leaf_order();
    let fact = q.index_of("sales").unwrap();
    assert!(
        leaves[0] == fact || leaves[1] == fact,
        "fact table must be in the first join: {leaves:?}"
    );
}

#[test]
fn complex_predicate_workload_requires_dphyp() {
    let q = load("complex_predicate.query");
    assert!(!q.is_simple());
    assert_eq!(q.hypergraph.num_complex_edges(), 2);
    let r = DpHyp.optimize(&q.hypergraph, &q.catalog, &Cout).unwrap();
    // budget may only join once sales ⋈ currency exists.
    let rendered = q.render_tree(&r.tree);
    assert!(rendered.contains("sales"), "{rendered}");
}

#[test]
fn clique_workload_triggers_dpsub_auto_selection() {
    let q = load("clique_analytics.query");
    let g = q.graph().unwrap();
    assert_eq!(Algorithm::select_auto(g), Algorithm::DpSub);
}
