//! Adversarial validation of DPhyp on randomized hypergraphs against the
//! independent brute-force oracle: DPhyp must find exactly the optimal
//! cross-product-free cost whenever one exists, and report
//! `NoPlanWithoutCrossProducts` exactly when the oracle finds none.

use joinopt::core::exhaustive::optimal_cost_hypergraph;
use joinopt::core::{DpCcp, DpHyp, OptimizeError};
use joinopt::prelude::*;
use joinopt::qgraph::hypergraph::Hypergraph;
use joinopt_cost::workload;
use joinopt_relset::XorShift64;

/// A random hypergraph: a random connected simple graph plus `extra`
/// random complex edges, with a matching random catalog.
fn random_hypergraph(n: usize, extra: usize, seed: u64) -> (Hypergraph, Catalog) {
    let w = workload::random_workload(n, 0.25, seed);
    let mut h = Hypergraph::from_query_graph(&w.graph);
    let mut rng = XorShift64::seed_from_u64(seed ^ 0xDEAD_BEEF);
    let mut added = 0;
    let mut attempts = 0;
    while added < extra && attempts < 200 {
        attempts += 1;
        let u_size = rng.gen_range(1..3.min(n - 1) + 1);
        let v_size = rng.gen_range(1..2.min(n - u_size) + 1);
        let mut pool: Vec<usize> = (0..n).collect();
        // Fisher–Yates prefix shuffle to pick disjoint sides.
        for i in 0..(u_size + v_size) {
            let j = rng.gen_range(i..pool.len());
            pool.swap(i, j);
        }
        let u = RelSet::from_indices(pool[..u_size].iter().copied());
        let v = RelSet::from_indices(pool[u_size..u_size + v_size].iter().copied());
        if h.add_edge(u, v).is_ok() {
            added += 1;
        }
    }
    let mut cat = Catalog::with_shape(n, h.num_edges());
    for i in 0..n {
        cat.set_cardinality(i, w.catalog.cardinality(i)).unwrap();
    }
    let mut srng = XorShift64::seed_from_u64(seed ^ 0xFEED);
    for e in 0..h.num_edges() {
        cat.set_selectivity(e, srng.gen_range_f64(0.0001, 1.0))
            .unwrap();
    }
    (h, cat)
}

#[test]
fn dphyp_matches_oracle_on_random_hypergraphs() {
    let mut solved = 0;
    for seed in 0..60 {
        let n = 3 + (seed as usize % 6); // 3..=8 relations
        let extra = 1 + (seed as usize % 3);
        let (h, cat) = random_hypergraph(n, extra, seed);
        if !h.is_connected() {
            continue;
        }
        let oracle = optimal_cost_hypergraph(&h, &cat, &Cout).unwrap();
        match DpHyp.optimize(&h, &cat, &Cout) {
            Ok(r) => {
                let want = oracle.unwrap_or_else(|| {
                    panic!("seed {seed}: DPhyp found a plan the oracle says cannot exist")
                });
                let tol = 1e-9 * want.abs().max(1.0);
                assert!(
                    (r.cost - want).abs() <= tol,
                    "seed {seed}: DPhyp {} vs oracle {want}",
                    r.cost
                );
                solved += 1;
            }
            Err(OptimizeError::NoPlanWithoutCrossProducts) => {
                assert!(
                    oracle.is_none(),
                    "seed {seed}: oracle found cost {oracle:?} but DPhyp found none \
                     (incomplete enumeration!)"
                );
            }
            Err(other) => panic!("seed {seed}: unexpected error {other}"),
        }
    }
    assert!(
        solved >= 20,
        "only {solved} solvable cases — generator too harsh"
    );
}

#[test]
fn dphyp_matches_oracle_under_asymmetric_model() {
    for seed in 100..130 {
        let (h, cat) = random_hypergraph(6, 2, seed);
        if !h.is_connected() {
            continue;
        }
        let oracle = optimal_cost_hypergraph(&h, &cat, &HashJoin).unwrap();
        match DpHyp.optimize(&h, &cat, &HashJoin) {
            Ok(r) => {
                let want = oracle.expect("DPhyp plan implies oracle plan");
                assert!(
                    (r.cost - want).abs() <= 1e-9 * want.abs().max(1.0),
                    "seed {seed}: {} vs {}",
                    r.cost,
                    want
                );
            }
            Err(OptimizeError::NoPlanWithoutCrossProducts) => assert!(oracle.is_none()),
            Err(other) => panic!("seed {seed}: {other}"),
        }
    }
}

#[test]
fn dphyp_equals_dpccp_on_lifted_simple_graphs() {
    for seed in 0..15 {
        let w = workload::random_workload(8, 0.3, seed);
        let h = Hypergraph::from_query_graph(&w.graph);
        let hyp = DpHyp.optimize(&h, &w.catalog, &Cout).unwrap();
        let ccp = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        assert!(
            (hyp.cost - ccp.cost).abs() <= 1e-9 * ccp.cost.abs().max(1.0),
            "seed {seed}"
        );
        assert_eq!(hyp.counters.inner, ccp.counters.inner, "seed {seed}");
        assert_eq!(
            hyp.counters.csg_cmp_pairs, ccp.counters.csg_cmp_pairs,
            "seed {seed}"
        );
    }
}

#[test]
fn dphyp_plans_respect_complex_predicates() {
    // Every join in the produced tree must be backed by a predicate whose
    // sides are fully contained in the respective operands.
    for seed in 200..220 {
        let (h, cat) = random_hypergraph(7, 2, seed);
        if !h.is_connected() {
            continue;
        }
        let Ok(r) = DpHyp.optimize(&h, &cat, &Cout) else {
            continue;
        };
        fn check(h: &Hypergraph, t: &JoinTree) {
            if let JoinTree::Join { left, right, .. } = t {
                assert!(
                    h.connects(left.relations(), right.relations()),
                    "cross product {} × {}",
                    left.relations(),
                    right.relations()
                );
                check(h, left);
                check(h, right);
            }
        }
        check(&h, &r.tree);
        assert_eq!(r.tree.relations(), h.all_relations());
    }
}
