-- Shipping-priority style query: 3-relation chain with a filter on
-- each end (TPC-H Q3 flavored).
SELECT *
FROM customer /*+ rows=150000 */  c,
     orders   /*+ rows=1500000 */ o,
     lineitem /*+ rows=6000000 */ l
WHERE c.custkey = o.custkey   /*+ sel=6.67e-6 */
  AND o.orderkey = l.orderkey /*+ sel=6.67e-7 */
  AND c.mktsegment = 1        /*+ sel=0.2 */
  AND o.orderdate = 19950315  /*+ sel=0.48 */
