-- Local-supplier-volume style query: a 6-relation cycle (TPC-H Q5's
-- famous shape: the region/nation predicates close the loop).
SELECT *
FROM customer /*+ rows=150000 */  c,
     orders   /*+ rows=1500000 */ o,
     lineitem /*+ rows=6000000 */ l,
     supplier /*+ rows=10000 */   s,
     nation   /*+ rows=25 */      n,
     region   /*+ rows=5 */       r
WHERE c.custkey = o.custkey    /*+ sel=6.67e-6 */
  AND o.orderkey = l.orderkey  /*+ sel=6.67e-7 */
  AND l.suppkey = s.suppkey    /*+ sel=1e-4 */
  AND s.nationkey = n.nationkey /*+ sel=0.04 */
  AND c.nationkey = n.nationkey /*+ sel=0.04 */
  AND n.regionkey = r.regionkey /*+ sel=0.2 */
  AND r.name = 2               /*+ sel=0.2 */
